//! Spec-driven T16 decode/encode tables.
//!
//! The same split as the AR32 engine: the spec carries halfword dispatch
//! (priority-ordered patterns plus reserved carve-outs), the Rust side
//! carries field semantics and the encode-time validity checks a pattern
//! cannot express (low-register fields, immediate ranges, branch offset
//! fits). The two-halfword `BL` form is spec'd as a `bl-hi`/`bl-lo` pair
//! of forms the engine stitches together, mirroring
//! [`T16Instr::decode`]'s prefix/suffix pairing and its error cases.

use crate::thumb::{AddSubRhs, HiOp, Imm8Op, T16Alu, T16DecodeError, T16EncodeError, T16Instr};
use crate::{Cond, MemOp, Reg, ShiftKind};

use super::pattern::Pattern;
use super::{EntryKind, IsaSpec, SpecError};

type Ctor = fn(&Pattern, u32) -> T16Instr;

#[derive(Debug)]
enum Action {
    Construct(Ctor),
    Reject(&'static str),
    BlPrefix,
    BlSuffix,
}

#[derive(Debug)]
struct Compiled {
    name: String,
    pattern: Pattern,
    action: Action,
}

/// T16 decode/encode tables compiled from a spec.
#[derive(Debug)]
pub struct T16Tables {
    entries: Vec<Compiled>,
}

fn reg3(p: &Pattern, w: u32, letter: char) -> Reg {
    Reg::new((p.extract(letter, w) & 7) as u8)
}

fn sext(v: u32, bits: u32) -> i32 {
    ((v << (32 - bits)) as i32) >> (32 - bits)
}

fn shift_ctor(p: &Pattern, w: u32, kind: ShiftKind) -> T16Instr {
    let raw = p.extract('i', w) as u8;
    let n = if raw == 0 && kind != ShiftKind::Lsl {
        32
    } else {
        raw
    };
    T16Instr::ShiftImm(kind, reg3(p, w, 'd'), reg3(p, w, 'm'), n)
}

fn ctor_lsl_imm(p: &Pattern, w: u32) -> T16Instr {
    shift_ctor(p, w, ShiftKind::Lsl)
}

fn ctor_lsr_imm(p: &Pattern, w: u32) -> T16Instr {
    shift_ctor(p, w, ShiftKind::Lsr)
}

fn ctor_asr_imm(p: &Pattern, w: u32) -> T16Instr {
    shift_ctor(p, w, ShiftKind::Asr)
}

fn add3(p: &Pattern, w: u32, sub: bool, rhs: AddSubRhs) -> T16Instr {
    T16Instr::AddSub3 {
        sub,
        rd: reg3(p, w, 'd'),
        rn: reg3(p, w, 'n'),
        rhs,
    }
}

fn ctor_add3_reg(p: &Pattern, w: u32) -> T16Instr {
    add3(p, w, false, AddSubRhs::Reg(reg3(p, w, 'm')))
}

fn ctor_sub3_reg(p: &Pattern, w: u32) -> T16Instr {
    add3(p, w, true, AddSubRhs::Reg(reg3(p, w, 'm')))
}

fn ctor_add3_imm3(p: &Pattern, w: u32) -> T16Instr {
    add3(p, w, false, AddSubRhs::Imm3((p.extract('i', w) & 7) as u8))
}

fn ctor_sub3_imm3(p: &Pattern, w: u32) -> T16Instr {
    add3(p, w, true, AddSubRhs::Imm3((p.extract('i', w) & 7) as u8))
}

fn imm8_ctor(p: &Pattern, w: u32, op: Imm8Op) -> T16Instr {
    T16Instr::Imm8(op, reg3(p, w, 'd'), p.extract('i', w) as u8)
}

fn ctor_mov_imm8(p: &Pattern, w: u32) -> T16Instr {
    imm8_ctor(p, w, Imm8Op::Mov)
}

fn ctor_cmp_imm8(p: &Pattern, w: u32) -> T16Instr {
    imm8_ctor(p, w, Imm8Op::Cmp)
}

fn ctor_add_imm8(p: &Pattern, w: u32) -> T16Instr {
    imm8_ctor(p, w, Imm8Op::Add)
}

fn ctor_sub_imm8(p: &Pattern, w: u32) -> T16Instr {
    imm8_ctor(p, w, Imm8Op::Sub)
}

fn alu_from_bits(bits: u32) -> T16Alu {
    match bits & 0xf {
        0 => T16Alu::And,
        1 => T16Alu::Eor,
        2 => T16Alu::Lsl,
        3 => T16Alu::Lsr,
        4 => T16Alu::Asr,
        5 => T16Alu::Adc,
        6 => T16Alu::Sbc,
        7 => T16Alu::Ror,
        8 => T16Alu::Tst,
        9 => T16Alu::Neg,
        10 => T16Alu::Cmp,
        11 => T16Alu::Cmn,
        12 => T16Alu::Orr,
        13 => T16Alu::Mul,
        14 => T16Alu::Bic,
        _ => T16Alu::Mvn,
    }
}

fn ctor_alu(p: &Pattern, w: u32) -> T16Instr {
    T16Instr::Alu(
        alu_from_bits(p.extract('o', w)),
        reg3(p, w, 'd'),
        reg3(p, w, 'm'),
    )
}

fn hi_regs(p: &Pattern, w: u32) -> (Reg, Reg) {
    let rd = Reg::new(((p.extract('h', w) << 3) | p.extract('d', w)) as u8);
    let rm = Reg::new(((p.extract('g', w) << 3) | p.extract('m', w)) as u8);
    (rd, rm)
}

fn hi_ctor(p: &Pattern, w: u32, op: HiOp) -> T16Instr {
    let (rd, rm) = hi_regs(p, w);
    T16Instr::HiOp(op, rd, rm)
}

fn ctor_hi_add(p: &Pattern, w: u32) -> T16Instr {
    hi_ctor(p, w, HiOp::Add)
}

fn ctor_hi_cmp(p: &Pattern, w: u32) -> T16Instr {
    hi_ctor(p, w, HiOp::Cmp)
}

fn ctor_hi_mov(p: &Pattern, w: u32) -> T16Instr {
    hi_ctor(p, w, HiOp::Mov)
}

fn ctor_bx(p: &Pattern, w: u32) -> T16Instr {
    let rm = Reg::new(((p.extract('g', w) << 3) | p.extract('m', w)) as u8);
    T16Instr::Bx(rm)
}

fn mem_reg_ctor(p: &Pattern, w: u32, op: MemOp) -> T16Instr {
    T16Instr::MemReg(op, reg3(p, w, 'd'), reg3(p, w, 'n'), reg3(p, w, 'm'))
}

fn mem_imm_ctor(p: &Pattern, w: u32, op: MemOp) -> T16Instr {
    T16Instr::MemImm(
        op,
        reg3(p, w, 'd'),
        reg3(p, w, 'n'),
        p.extract('i', w) as u8,
    )
}

macro_rules! mem_ctor {
    ($name:ident, $helper:ident, $op:expr) => {
        fn $name(p: &Pattern, w: u32) -> T16Instr {
            $helper(p, w, $op)
        }
    };
}

mem_ctor!(ctor_str_reg, mem_reg_ctor, MemOp::Str);
mem_ctor!(ctor_strh_reg, mem_reg_ctor, MemOp::Strh);
mem_ctor!(ctor_strb_reg, mem_reg_ctor, MemOp::Strb);
mem_ctor!(ctor_ldrsb_reg, mem_reg_ctor, MemOp::Ldrsb);
mem_ctor!(ctor_ldr_reg, mem_reg_ctor, MemOp::Ldr);
mem_ctor!(ctor_ldrh_reg, mem_reg_ctor, MemOp::Ldrh);
mem_ctor!(ctor_ldrb_reg, mem_reg_ctor, MemOp::Ldrb);
mem_ctor!(ctor_ldrsh_reg, mem_reg_ctor, MemOp::Ldrsh);
mem_ctor!(ctor_str_imm, mem_imm_ctor, MemOp::Str);
mem_ctor!(ctor_ldr_imm, mem_imm_ctor, MemOp::Ldr);
mem_ctor!(ctor_strb_imm, mem_imm_ctor, MemOp::Strb);
mem_ctor!(ctor_ldrb_imm, mem_imm_ctor, MemOp::Ldrb);
mem_ctor!(ctor_strh_imm, mem_imm_ctor, MemOp::Strh);
mem_ctor!(ctor_ldrh_imm, mem_imm_ctor, MemOp::Ldrh);

fn sp_ctor(p: &Pattern, w: u32, load: bool) -> T16Instr {
    T16Instr::MemSp {
        load,
        rd: reg3(p, w, 'd'),
        imm8: p.extract('i', w) as u8,
    }
}

fn ctor_str_sp(p: &Pattern, w: u32) -> T16Instr {
    sp_ctor(p, w, false)
}

fn ctor_ldr_sp(p: &Pattern, w: u32) -> T16Instr {
    sp_ctor(p, w, true)
}

fn ctor_swi(p: &Pattern, w: u32) -> T16Instr {
    T16Instr::Swi(p.extract('i', w) as u8)
}

fn ctor_bcond(p: &Pattern, w: u32) -> T16Instr {
    let cond = Cond::from_bits(p.extract('c', w) as u8);
    T16Instr::BCond(cond, sext(p.extract('i', w), 8))
}

fn ctor_b(p: &Pattern, w: u32) -> T16Instr {
    T16Instr::B(sext(p.extract('i', w), 11))
}

/// Every single-halfword form name a T16 spec must define (the `bl-hi`/
/// `bl-lo` pair is handled specially), its constructor, and the field
/// letters the constructor reads.
const FORMS: &[(&str, Ctor, &str)] = &[
    ("lsl-imm", ctor_lsl_imm, "imd"),
    ("lsr-imm", ctor_lsr_imm, "imd"),
    ("asr-imm", ctor_asr_imm, "imd"),
    ("add3-reg", ctor_add3_reg, "mnd"),
    ("sub3-reg", ctor_sub3_reg, "mnd"),
    ("add3-imm3", ctor_add3_imm3, "ind"),
    ("sub3-imm3", ctor_sub3_imm3, "ind"),
    ("mov-imm8", ctor_mov_imm8, "di"),
    ("cmp-imm8", ctor_cmp_imm8, "di"),
    ("add-imm8", ctor_add_imm8, "di"),
    ("sub-imm8", ctor_sub_imm8, "di"),
    ("alu", ctor_alu, "omd"),
    ("hi-add", ctor_hi_add, "hgmd"),
    ("hi-cmp", ctor_hi_cmp, "hgmd"),
    ("hi-mov", ctor_hi_mov, "hgmd"),
    ("bx", ctor_bx, "gm"),
    ("str-reg", ctor_str_reg, "mnd"),
    ("strh-reg", ctor_strh_reg, "mnd"),
    ("strb-reg", ctor_strb_reg, "mnd"),
    ("ldrsb-reg", ctor_ldrsb_reg, "mnd"),
    ("ldr-reg", ctor_ldr_reg, "mnd"),
    ("ldrh-reg", ctor_ldrh_reg, "mnd"),
    ("ldrb-reg", ctor_ldrb_reg, "mnd"),
    ("ldrsh-reg", ctor_ldrsh_reg, "mnd"),
    ("str-imm", ctor_str_imm, "ind"),
    ("ldr-imm", ctor_ldr_imm, "ind"),
    ("strb-imm", ctor_strb_imm, "ind"),
    ("ldrb-imm", ctor_ldrb_imm, "ind"),
    ("strh-imm", ctor_strh_imm, "ind"),
    ("ldrh-imm", ctor_ldrh_imm, "ind"),
    ("str-sp", ctor_str_sp, "di"),
    ("ldr-sp", ctor_ldr_sp, "di"),
    ("swi", ctor_swi, "i"),
    ("bcond", ctor_bcond, "ci"),
    ("b", ctor_b, "i"),
];

/// Maps a reserved carve-out name onto the exact reason string the
/// built-in decoder uses for the same halfwords.
fn reserved_reason(name: &str) -> &'static str {
    match name {
        "malformed-bx" => "malformed BX",
        "pc-relative-load" => "PC-relative load unsupported",
        "add-pc-sp" => "ADD to PC/SP unsupported",
        "misc-format" => "misc format space unsupported",
        "block-transfer" => "block transfer unsupported",
        "undef-cond-branch" => "undefined conditional-branch slot",
        "thumb2-prefix" => "Thumb-2 prefix space",
        _ => "unallocated halfword space",
    }
}

fn low(r: Reg) -> Result<u32, T16EncodeError> {
    if r.index() < 8 {
        Ok(u32::from(r.index()))
    } else {
        Err(T16EncodeError::new("high register in a low-register field"))
    }
}

fn fit_signed(v: i32, bits: u32, reason: &'static str) -> Result<u32, T16EncodeError> {
    let half = 1i32 << (bits - 1);
    if (-half..half).contains(&v) {
        Ok((v as u32) & ((1 << bits) - 1))
    } else {
        Err(T16EncodeError::new(reason))
    }
}

impl T16Tables {
    /// Compiles decode/encode tables from a loaded spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec is not 16-bit, names a form
    /// this engine has no constructor for, omits a field a constructor
    /// reads, or is missing a form the encoder needs.
    pub fn from_spec(spec: &IsaSpec) -> Result<T16Tables, SpecError> {
        let top = super::Pos { line: 1, col: 1 };
        if spec.word_width != 16 {
            return Err(SpecError::new(
                top,
                format!(
                    "T16 tables need word-width 16, spec has {}",
                    spec.word_width
                ),
            ));
        }
        let mut entries = Vec::with_capacity(spec.entries.len());
        for entry in &spec.entries {
            let action = match &entry.kind {
                EntryKind::Form => match entry.name.as_str() {
                    "bl-hi" => Action::BlPrefix,
                    "bl-lo" => Action::BlSuffix,
                    name => {
                        let Some(&(_, ctor, letters)) = FORMS.iter().find(|(n, _, _)| *n == name)
                        else {
                            return Err(SpecError::new(
                                entry.pos,
                                format!("unknown T16 form `{name}`"),
                            ));
                        };
                        for letter in letters.chars() {
                            if !entry.pattern.fields.iter().any(|f| f.letter == letter) {
                                return Err(SpecError::new(
                                    entry.pos,
                                    format!("form `{name}` pattern is missing field `{letter}`"),
                                ));
                            }
                        }
                        Action::Construct(ctor)
                    }
                },
                EntryKind::Reserved { .. } => Action::Reject(reserved_reason(&entry.name)),
            };
            entries.push(Compiled {
                name: entry.name.clone(),
                pattern: entry.pattern.clone(),
                action,
            });
        }
        for name in FORMS.iter().map(|(n, _, _)| *n).chain(["bl-hi", "bl-lo"]) {
            if !entries
                .iter()
                .any(|e| e.name == name && !matches!(e.action, Action::Reject(_)))
            {
                return Err(SpecError::new(
                    top,
                    format!("spec is missing the T16 form `{name}` (encode would be partial)"),
                ));
            }
        }
        Ok(T16Tables { entries })
    }

    /// The tables compiled from the shipped T16 spec (built once).
    #[must_use]
    pub fn builtin() -> &'static T16Tables {
        static TABLES: std::sync::OnceLock<T16Tables> = std::sync::OnceLock::new();
        TABLES.get_or_init(|| match T16Tables::from_spec(super::builtin_t16()) {
            Ok(t) => t,
            Err(err) => unreachable!("shipped t16 spec does not compile: {err}"),
        })
    }

    /// Decodes the instruction at the head of `stream`, returning it and
    /// the number of halfwords consumed (1, or 2 for `BL`) — bit- and
    /// error-identical to [`T16Instr::decode`].
    ///
    /// # Errors
    ///
    /// Returns the same [`T16DecodeError`]s as the built-in decoder,
    /// including the truncated/unpaired `BL` cases.
    pub fn decode(&self, stream: &[u16]) -> Result<(T16Instr, usize), T16DecodeError> {
        let Some(&w) = stream.first() else {
            return Err(T16DecodeError::new(0, "empty stream"));
        };
        let word = u32::from(w);
        for e in &self.entries {
            if !e.pattern.matches(word) {
                continue;
            }
            return match &e.action {
                Action::Construct(ctor) => Ok((ctor(&e.pattern, word), 1)),
                Action::Reject(reason) => Err(T16DecodeError::new(w, reason)),
                Action::BlSuffix => Err(T16DecodeError::new(w, "BL suffix without prefix")),
                Action::BlPrefix => {
                    let Some(&w2) = stream.get(1) else {
                        return Err(T16DecodeError::new(w, "truncated BL"));
                    };
                    let suffix = self.pattern("bl-lo");
                    if !suffix.matches(u32::from(w2)) {
                        return Err(T16DecodeError::new(w, "BL prefix without suffix"));
                    }
                    let hi = e.pattern.extract('i', word);
                    let lo = suffix.extract('i', u32::from(w2));
                    Ok((T16Instr::Bl(sext((hi << 11) | lo, 22)), 2))
                }
            };
        }
        Err(T16DecodeError::new(w, "unallocated halfword space"))
    }

    fn pattern(&self, name: &str) -> &Pattern {
        match self.entries.iter().find(|e| e.name == name) {
            Some(e) => &e.pattern,
            // from_spec proved every form name present.
            None => unreachable!("form `{name}` vanished from compiled tables"),
        }
    }

    /// Appends the instruction's halfword encoding to `out`, applying the
    /// same validity checks (in the same order) as [`T16Instr::encode`].
    ///
    /// # Errors
    ///
    /// Returns the same [`T16EncodeError`]s as the built-in encoder.
    pub fn encode(&self, instr: &T16Instr, out: &mut Vec<u16>) -> Result<(), T16EncodeError> {
        let mut fields: Vec<(char, u32)> = Vec::with_capacity(4);
        let name = match *instr {
            T16Instr::ShiftImm(kind, rd, rm, n) => {
                let name = match kind {
                    ShiftKind::Lsl => "lsl-imm",
                    ShiftKind::Lsr => "lsr-imm",
                    ShiftKind::Asr => "asr-imm",
                    ShiftKind::Ror => return Err(T16EncodeError::new("ROR by immediate")),
                };
                let imm5 = match (kind, n) {
                    (ShiftKind::Lsl, 0..=31) => u32::from(n),
                    (ShiftKind::Lsr | ShiftKind::Asr, 1..=31) => u32::from(n),
                    (ShiftKind::Lsr | ShiftKind::Asr, 32) => 0,
                    _ => return Err(T16EncodeError::new("shift amount out of range")),
                };
                fields.push(('i', imm5));
                fields.push(('m', low(rm)?));
                fields.push(('d', low(rd)?));
                name
            }
            T16Instr::AddSub3 { sub, rd, rn, rhs } => {
                let name = match rhs {
                    AddSubRhs::Reg(rm) => {
                        fields.push(('m', low(rm)?));
                        if sub {
                            "sub3-reg"
                        } else {
                            "add3-reg"
                        }
                    }
                    AddSubRhs::Imm3(n) => {
                        if n > 7 {
                            return Err(T16EncodeError::new("imm3 out of range"));
                        }
                        fields.push(('i', u32::from(n)));
                        if sub {
                            "sub3-imm3"
                        } else {
                            "add3-imm3"
                        }
                    }
                };
                fields.push(('n', low(rn)?));
                fields.push(('d', low(rd)?));
                name
            }
            T16Instr::Imm8(op, rd, n) => {
                fields.push(('d', low(rd)?));
                fields.push(('i', u32::from(n)));
                match op {
                    Imm8Op::Mov => "mov-imm8",
                    Imm8Op::Cmp => "cmp-imm8",
                    Imm8Op::Add => "add-imm8",
                    Imm8Op::Sub => "sub-imm8",
                }
            }
            T16Instr::Alu(op, rd, rm) => {
                fields.push(('o', op as u32));
                fields.push(('m', low(rm)?));
                fields.push(('d', low(rd)?));
                "alu"
            }
            T16Instr::HiOp(op, rd, rm) => {
                fields.push(('h', u32::from(rd.index() >> 3)));
                fields.push(('g', u32::from(rm.index() >> 3)));
                fields.push(('m', u32::from(rm.index() & 7)));
                fields.push(('d', u32::from(rd.index() & 7)));
                match op {
                    HiOp::Add => "hi-add",
                    HiOp::Cmp => "hi-cmp",
                    HiOp::Mov => "hi-mov",
                }
            }
            T16Instr::Bx(rm) => {
                fields.push(('g', u32::from(rm.index() >> 3)));
                fields.push(('m', u32::from(rm.index() & 7)));
                "bx"
            }
            T16Instr::MemReg(op, rd, rn, rm) => {
                fields.push(('m', low(rm)?));
                fields.push(('n', low(rn)?));
                fields.push(('d', low(rd)?));
                match op {
                    MemOp::Str => "str-reg",
                    MemOp::Strh => "strh-reg",
                    MemOp::Strb => "strb-reg",
                    MemOp::Ldrsb => "ldrsb-reg",
                    MemOp::Ldr => "ldr-reg",
                    MemOp::Ldrh => "ldrh-reg",
                    MemOp::Ldrb => "ldrb-reg",
                    MemOp::Ldrsh => "ldrsh-reg",
                }
            }
            T16Instr::MemImm(op, rd, rn, n) => {
                if n > 31 {
                    return Err(T16EncodeError::new("imm5 displacement out of range"));
                }
                let name = match op {
                    MemOp::Str => "str-imm",
                    MemOp::Ldr => "ldr-imm",
                    MemOp::Strb => "strb-imm",
                    MemOp::Ldrb => "ldrb-imm",
                    MemOp::Strh => "strh-imm",
                    MemOp::Ldrh => "ldrh-imm",
                    MemOp::Ldrsb | MemOp::Ldrsh => {
                        return Err(T16EncodeError::new("signed load has no immediate form"))
                    }
                };
                fields.push(('i', u32::from(n)));
                fields.push(('n', low(rn)?));
                fields.push(('d', low(rd)?));
                name
            }
            T16Instr::MemSp { load, rd, imm8 } => {
                fields.push(('d', low(rd)?));
                fields.push(('i', u32::from(imm8)));
                if load {
                    "ldr-sp"
                } else {
                    "str-sp"
                }
            }
            T16Instr::BCond(cond, off) => {
                if cond == Cond::Al || cond.bits() == 0b1111 {
                    return Err(T16EncodeError::new(
                        "conditional branch with AL/NV condition",
                    ));
                }
                fields.push(('c', u32::from(cond.bits())));
                fields.push((
                    'i',
                    fit_signed(off, 8, "conditional branch offset out of range")?,
                ));
                "bcond"
            }
            T16Instr::B(off) => {
                fields.push(('i', fit_signed(off, 11, "branch offset out of range")?));
                "b"
            }
            T16Instr::Swi(n) => {
                fields.push(('i', u32::from(n)));
                "swi"
            }
            T16Instr::Bl(off) => {
                if !(-(1 << 21)..(1 << 21)).contains(&off) {
                    return Err(T16EncodeError::new("BL offset out of range"));
                }
                let hi = ((off >> 11) as u32) & 0x7ff;
                let lo = (off as u32) & 0x7ff;
                out.push(self.pattern("bl-hi").pack(&[('i', hi)]) as u16);
                out.push(self.pattern("bl-lo").pack(&[('i', lo)]) as u16);
                return Ok(());
            }
        };
        out.push(self.pattern(name).pack(&fields) as u16);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every halfword, followed by a valid BL suffix so the `bl-hi` path
    /// is exercised too, decoded through both engines.
    #[test]
    fn exhaustive_halfword_differential() {
        let t = T16Tables::builtin();
        for w in 0..=u16::MAX {
            let stream = [w, 0xf800];
            match (t.decode(&stream), T16Instr::decode(&stream)) {
                (Ok((a, na)), Ok((b, nb))) => {
                    assert_eq!((a.clone(), na), (b, nb), "{w:#06x}");
                    let mut ours = Vec::new();
                    let mut theirs = Vec::new();
                    let enc_a = t.encode(&a, &mut ours);
                    let enc_b = a.encode(&mut theirs);
                    assert_eq!(enc_a, enc_b, "{w:#06x}");
                    assert_eq!(ours, theirs, "{w:#06x}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{w:#06x}"),
                (a, b) => panic!("{w:#06x}: spec {a:?} vs builtin {b:?}"),
            }
        }
    }

    #[test]
    fn bl_edge_cases_match_builtin() {
        let t = T16Tables::builtin();
        // Truncated prefix.
        let s = [0xf123u16];
        assert_eq!(t.decode(&s), T16Instr::decode(&s));
        // Prefix followed by a non-suffix halfword.
        let s = [0xf123u16, 0x1234];
        assert_eq!(t.decode(&s), T16Instr::decode(&s));
        // Standalone suffix.
        let s = [0xf923u16];
        assert_eq!(t.decode(&s), T16Instr::decode(&s));
        // Empty stream.
        assert_eq!(t.decode(&[]), T16Instr::decode(&[]));
        // A real BL round-trips.
        let s = [0xf7ffu16, 0xfffe]; // bl -2
        let (instr, n) = t.decode(&s).unwrap();
        assert_eq!((instr.clone(), n), T16Instr::decode(&s).unwrap());
        assert_eq!(instr, T16Instr::Bl(-2));
        let mut out = Vec::new();
        t.encode(&instr, &mut out).unwrap();
        assert_eq!(out, s);
    }

    #[test]
    fn encode_errors_match_builtin() {
        let t = T16Tables::builtin();
        let bad = [
            T16Instr::ShiftImm(ShiftKind::Ror, Reg::R0, Reg::R1, 3),
            T16Instr::ShiftImm(ShiftKind::Lsl, Reg::R0, Reg::R1, 33),
            T16Instr::ShiftImm(ShiftKind::Lsl, Reg::R9, Reg::R1, 3),
            T16Instr::AddSub3 {
                sub: false,
                rd: Reg::R0,
                rn: Reg::R1,
                rhs: AddSubRhs::Imm3(9),
            },
            T16Instr::MemImm(MemOp::Ldrsh, Reg::R0, Reg::R1, 2),
            T16Instr::MemImm(MemOp::Ldr, Reg::R0, Reg::R1, 33),
            T16Instr::BCond(Cond::Al, 4),
            T16Instr::BCond(Cond::Eq, 500),
            T16Instr::B(5000),
            T16Instr::Bl(1 << 22),
        ];
        for instr in bad {
            let mut a = Vec::new();
            let mut b = Vec::new();
            let ea = t.encode(&instr, &mut a).unwrap_err();
            let eb = instr.encode(&mut b).unwrap_err();
            assert_eq!(ea, eb, "{instr:?}");
        }
    }

    #[test]
    fn missing_form_is_a_build_error() {
        let text =
            super::super::T16_SPEC_TEXT.replace("form swi { pattern \"11011111 iiiiiiii\" }", "");
        let spec = IsaSpec::load(&text).unwrap();
        let err = T16Tables::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("missing the T16 form `swi`"));
    }
}
