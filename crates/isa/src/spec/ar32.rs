//! Spec-driven AR32 decode/encode tables.
//!
//! [`Ar32Tables::from_spec`] compiles a loaded [`IsaSpec`] into a
//! prioritized match table. The spec carries the dispatch — which words
//! belong to which named form — while the Rust constructors bound here by
//! form name carry the field semantics, including the field-value-
//! dependent rejections a mask/value pattern cannot express (`ROR #0`,
//! post-index writeback, compare without S). Reserved carve-outs map by
//! name onto the same typed [`DecodeErrorKind`]s the built-in decoder
//! uses, so a spec-loaded table is bit- and error-identical to
//! [`Instr::decode`]/[`Instr::encode`] for the shipped spec.

use crate::decode::{DecodeError, DecodeErrorKind};
use crate::{AddrOffset, Cond, DpOp, Index, Instr, MemOp, Operand2, Reg, RotImm, Shift, ShiftKind};

use super::pattern::Pattern;
use super::{EntryKind, IsaSpec, SpecError};

type Ctor = fn(&Pattern, u32) -> Result<Instr, DecodeError>;

#[derive(Debug)]
enum Action {
    Construct(Ctor),
    Reject(DecodeErrorKind),
}

#[derive(Debug)]
struct Compiled {
    name: String,
    pattern: Pattern,
    action: Action,
}

/// AR32 decode/encode tables compiled from a spec.
#[derive(Debug)]
pub struct Ar32Tables {
    entries: Vec<Compiled>,
}

fn ccond(p: &Pattern, w: u32) -> Cond {
    Cond::from_bits(p.extract('c', w) as u8)
}

fn creg(p: &Pattern, w: u32, letter: char) -> Reg {
    Reg::new((p.extract(letter, w) & 0xf) as u8)
}

fn shift_imm(word: u32, kind_bits: u32, amount: u32) -> Result<Shift, DecodeError> {
    let kind = ShiftKind::from_bits(kind_bits as u8);
    match (kind, amount) {
        (ShiftKind::Lsl, n) => Ok(Shift::Imm(ShiftKind::Lsl, n as u8)),
        (ShiftKind::Lsr, 0) => Ok(Shift::Imm(ShiftKind::Lsr, 32)),
        (ShiftKind::Asr, 0) => Ok(Shift::Imm(ShiftKind::Asr, 32)),
        (ShiftKind::Ror, 0) => Err(DecodeError::new(word, DecodeErrorKind::Rrx)),
        (k, n) => Ok(Shift::Imm(k, n as u8)),
    }
}

fn index_of(word: u32, p_bit: u32, w_bit: u32) -> Result<Index, DecodeError> {
    match (p_bit != 0, w_bit != 0) {
        (true, false) => Ok(Index::PreNoWb),
        (true, true) => Ok(Index::PreWb),
        (false, false) => Ok(Index::Post),
        (false, true) => Err(DecodeError::new(word, DecodeErrorKind::PostIndexWriteback)),
    }
}

/// Opcode/S extraction plus the compare-without-S rejection, which the
/// built-in decoder applies before looking at the operand (so a PSR
/// transfer wins over an RRX operand in the same word).
fn dp_pre(p: &Pattern, w: u32) -> Result<(DpOp, bool), DecodeError> {
    let op = DpOp::from_bits(p.extract('o', w) as u8);
    let set_flags = p.extract('S', w) != 0;
    if op.is_compare() && !set_flags {
        return Err(DecodeError::new(w, DecodeErrorKind::PsrTransfer));
    }
    Ok((op, set_flags))
}

fn mul_common(p: &Pattern, w: u32, acc: Option<Reg>) -> Result<Instr, DecodeError> {
    Ok(Instr::Mul {
        cond: ccond(p, w),
        set_flags: p.extract('S', w) != 0,
        rd: creg(p, w, 'd'),
        rm: creg(p, w, 'm'),
        rs: creg(p, w, 's'),
        acc,
    })
}

fn ctor_mul(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    mul_common(p, w, None)
}

fn ctor_mla(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    let acc = Some(creg(p, w, 'a'));
    mul_common(p, w, acc)
}

fn dp_common(p: &Pattern, w: u32, op2: Operand2, op: DpOp, set_flags: bool) -> Instr {
    Instr::Dp {
        cond: ccond(p, w),
        op,
        set_flags,
        rd: creg(p, w, 'd'),
        rn: creg(p, w, 'n'),
        op2,
    }
}

fn ctor_dp_rsr(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    let (op, s) = dp_pre(p, w)?;
    let kind = ShiftKind::from_bits(p.extract('t', w) as u8);
    let op2 = Operand2::Reg(creg(p, w, 'm'), Shift::Reg(kind, creg(p, w, 's')));
    Ok(dp_common(p, w, op2, op, s))
}

fn ctor_dp_reg(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    let (op, s) = dp_pre(p, w)?;
    let shift = shift_imm(w, p.extract('t', w), p.extract('i', w))?;
    Ok(dp_common(
        p,
        w,
        Operand2::Reg(creg(p, w, 'm'), shift),
        op,
        s,
    ))
}

fn ctor_dp_imm(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    let (op, s) = dp_pre(p, w)?;
    let imm = RotImm::from_fields(p.extract('i', w) as u8, p.extract('r', w) as u8);
    Ok(dp_common(p, w, Operand2::Imm(imm), op, s))
}

fn mem_common(p: &Pattern, w: u32, op: MemOp, offset: AddrOffset) -> Result<Instr, DecodeError> {
    Ok(Instr::Mem {
        cond: ccond(p, w),
        op,
        rd: creg(p, w, 'd'),
        rn: creg(p, w, 'n'),
        offset,
        index: index_of(w, p.extract('p', w), p.extract('w', w))?,
    })
}

fn mem_half_imm(p: &Pattern, w: u32, op: MemOp) -> Result<Instr, DecodeError> {
    let mag = ((p.extract('h', w) << 4) | p.extract('l', w)) as i32;
    let up = p.extract('u', w) != 0;
    mem_common(p, w, op, AddrOffset::Imm(if up { mag } else { -mag }))
}

fn mem_half_reg(p: &Pattern, w: u32, op: MemOp) -> Result<Instr, DecodeError> {
    let offset = AddrOffset::Reg {
        rm: creg(p, w, 'm'),
        shift: Shift::NONE,
        subtract: p.extract('u', w) == 0,
    };
    mem_common(p, w, op, offset)
}

fn mem_word_imm(p: &Pattern, w: u32, op: MemOp) -> Result<Instr, DecodeError> {
    let mag = p.extract('i', w) as i32;
    let up = p.extract('u', w) != 0;
    mem_common(p, w, op, AddrOffset::Imm(if up { mag } else { -mag }))
}

fn mem_word_reg(p: &Pattern, w: u32, op: MemOp) -> Result<Instr, DecodeError> {
    let shift = shift_imm(w, p.extract('t', w), p.extract('i', w))?;
    let offset = AddrOffset::Reg {
        rm: creg(p, w, 'm'),
        shift,
        subtract: p.extract('u', w) == 0,
    };
    mem_common(p, w, op, offset)
}

macro_rules! mem_ctor {
    ($name:ident, $helper:ident, $op:expr) => {
        fn $name(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
            $helper(p, w, $op)
        }
    };
}

mem_ctor!(ctor_strh_imm, mem_half_imm, MemOp::Strh);
mem_ctor!(ctor_ldrh_imm, mem_half_imm, MemOp::Ldrh);
mem_ctor!(ctor_ldrsb_imm, mem_half_imm, MemOp::Ldrsb);
mem_ctor!(ctor_ldrsh_imm, mem_half_imm, MemOp::Ldrsh);
mem_ctor!(ctor_strh_reg, mem_half_reg, MemOp::Strh);
mem_ctor!(ctor_ldrh_reg, mem_half_reg, MemOp::Ldrh);
mem_ctor!(ctor_ldrsb_reg, mem_half_reg, MemOp::Ldrsb);
mem_ctor!(ctor_ldrsh_reg, mem_half_reg, MemOp::Ldrsh);
mem_ctor!(ctor_str_imm, mem_word_imm, MemOp::Str);
mem_ctor!(ctor_ldr_imm, mem_word_imm, MemOp::Ldr);
mem_ctor!(ctor_strb_imm, mem_word_imm, MemOp::Strb);
mem_ctor!(ctor_ldrb_imm, mem_word_imm, MemOp::Ldrb);
mem_ctor!(ctor_str_reg, mem_word_reg, MemOp::Str);
mem_ctor!(ctor_ldr_reg, mem_word_reg, MemOp::Ldr);
mem_ctor!(ctor_strb_reg, mem_word_reg, MemOp::Strb);
mem_ctor!(ctor_ldrb_reg, mem_word_reg, MemOp::Ldrb);

fn branch_common(p: &Pattern, w: u32, link: bool) -> Result<Instr, DecodeError> {
    let raw = p.extract('i', w);
    // Sign-extend the 24-bit field.
    let offset = ((raw << 8) as i32) >> 8;
    Ok(Instr::Branch {
        cond: ccond(p, w),
        link,
        offset,
    })
}

fn ctor_b(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    branch_common(p, w, false)
}

fn ctor_bl(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    branch_common(p, w, true)
}

fn ctor_swi(p: &Pattern, w: u32) -> Result<Instr, DecodeError> {
    Ok(Instr::Swi {
        cond: ccond(p, w),
        imm: p.extract('i', w),
    })
}

/// Every form name an AR32 spec must define, its constructor, and the
/// field letters the constructor reads.
const FORMS: &[(&str, Ctor, &str)] = &[
    ("mul", ctor_mul, "cSdsm"),
    ("mla", ctor_mla, "cSdasm"),
    ("dp-rsr", ctor_dp_rsr, "coSndstm"),
    ("dp-reg", ctor_dp_reg, "coSnditm"),
    ("dp-imm", ctor_dp_imm, "coSndri"),
    ("strh-imm", ctor_strh_imm, "cpuwndhl"),
    ("ldrh-imm", ctor_ldrh_imm, "cpuwndhl"),
    ("ldrsb-imm", ctor_ldrsb_imm, "cpuwndhl"),
    ("ldrsh-imm", ctor_ldrsh_imm, "cpuwndhl"),
    ("strh-reg", ctor_strh_reg, "cpuwndm"),
    ("ldrh-reg", ctor_ldrh_reg, "cpuwndm"),
    ("ldrsb-reg", ctor_ldrsb_reg, "cpuwndm"),
    ("ldrsh-reg", ctor_ldrsh_reg, "cpuwndm"),
    ("str-imm", ctor_str_imm, "cpuwndi"),
    ("ldr-imm", ctor_ldr_imm, "cpuwndi"),
    ("strb-imm", ctor_strb_imm, "cpuwndi"),
    ("ldrb-imm", ctor_ldrb_imm, "cpuwndi"),
    ("str-reg", ctor_str_reg, "cpuwnditm"),
    ("ldr-reg", ctor_ldr_reg, "cpuwnditm"),
    ("strb-reg", ctor_strb_reg, "cpuwnditm"),
    ("ldrb-reg", ctor_ldrb_reg, "cpuwnditm"),
    ("b", ctor_b, "ci"),
    ("bl", ctor_bl, "ci"),
    ("swi", ctor_swi, "ci"),
];

/// Maps a reserved carve-out name onto the typed rejection the built-in
/// decoder raises for the same words.
fn reserved_kind(name: &str) -> DecodeErrorKind {
    match name {
        "long-multiply" => DecodeErrorKind::LongMultiply,
        "mul-nonzero-rn" => DecodeErrorKind::MulNonzeroRn,
        "signed-store" => DecodeErrorKind::SignedStore,
        "halfword-hi-bits" => DecodeErrorKind::HalfwordHiBits,
        "mem-register-shift" => DecodeErrorKind::RegisterShiftMemOffset,
        _ => DecodeErrorKind::Unsupported,
    }
}

impl Ar32Tables {
    /// Compiles decode/encode tables from a loaded spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the spec is not 32-bit, names a form
    /// this engine has no constructor for, omits a field a constructor
    /// reads, or is missing one of the forms the encoder needs.
    pub fn from_spec(spec: &IsaSpec) -> Result<Ar32Tables, SpecError> {
        let top = super::Pos { line: 1, col: 1 };
        if spec.word_width != 32 {
            return Err(SpecError::new(
                top,
                format!(
                    "AR32 tables need word-width 32, spec has {}",
                    spec.word_width
                ),
            ));
        }
        let mut entries = Vec::with_capacity(spec.entries.len());
        for entry in &spec.entries {
            let action = match &entry.kind {
                EntryKind::Form => {
                    let Some(&(_, ctor, letters)) = FORMS.iter().find(|(n, _, _)| *n == entry.name)
                    else {
                        return Err(SpecError::new(
                            entry.pos,
                            format!("unknown AR32 form `{}`", entry.name),
                        ));
                    };
                    for letter in letters.chars() {
                        if !entry.pattern.fields.iter().any(|f| f.letter == letter) {
                            return Err(SpecError::new(
                                entry.pos,
                                format!(
                                    "form `{}` pattern is missing field `{letter}`",
                                    entry.name
                                ),
                            ));
                        }
                    }
                    Action::Construct(ctor)
                }
                EntryKind::Reserved { .. } => Action::Reject(reserved_kind(&entry.name)),
            };
            entries.push(Compiled {
                name: entry.name.clone(),
                pattern: entry.pattern.clone(),
                action,
            });
        }
        for (name, _, _) in FORMS {
            if !entries
                .iter()
                .any(|e| e.name == *name && matches!(e.action, Action::Construct(_)))
            {
                return Err(SpecError::new(
                    top,
                    format!("spec is missing the AR32 form `{name}` (encode would be partial)"),
                ));
            }
        }
        Ok(Ar32Tables { entries })
    }

    /// The tables compiled from the shipped AR32 spec (built once).
    #[must_use]
    pub fn builtin() -> &'static Ar32Tables {
        static TABLES: std::sync::OnceLock<Ar32Tables> = std::sync::OnceLock::new();
        TABLES.get_or_init(|| match Ar32Tables::from_spec(super::builtin_ar32()) {
            Ok(t) => t,
            Err(err) => unreachable!("shipped ar32 spec does not compile: {err}"),
        })
    }

    /// Decodes a 32-bit word by first-match priority over the spec's
    /// pattern entries.
    ///
    /// # Errors
    ///
    /// Returns the same typed [`DecodeError`]s as [`Instr::decode`]:
    /// reserved carve-outs reject with their mapped kind, unmatched words
    /// with [`DecodeErrorKind::Unsupported`], and constructors raise the
    /// field-value-dependent rejections.
    pub fn decode(&self, word: u32) -> Result<Instr, DecodeError> {
        for e in &self.entries {
            if e.pattern.matches(word) {
                return match &e.action {
                    Action::Construct(ctor) => ctor(&e.pattern, word),
                    Action::Reject(kind) => Err(DecodeError::new(word, *kind)),
                };
            }
        }
        Err(DecodeError::new(word, DecodeErrorKind::Unsupported))
    }

    fn pattern(&self, name: &str) -> &Pattern {
        match self.entries.iter().find(|e| e.name == name) {
            Some(e) => &e.pattern,
            // from_spec proved every FORMS name present.
            None => unreachable!("form `{name}` vanished from compiled tables"),
        }
    }

    /// Encodes an instruction by packing the matching form's fields —
    /// bit-identical to [`Instr::encode`].
    #[must_use]
    pub fn encode(&self, instr: &Instr) -> u32 {
        let mut fields: Vec<(char, u32)> = Vec::with_capacity(9);
        fields.push(('c', u32::from(instr.cond().bits())));
        let name = match *instr {
            Instr::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
                ..
            } => {
                fields.push(('o', u32::from(op.bits())));
                fields.push(('S', u32::from(set_flags)));
                fields.push(('n', u32::from(rn.index())));
                fields.push(('d', u32::from(rd.index())));
                match op2 {
                    Operand2::Imm(imm) => {
                        fields.push(('r', u32::from(imm.rot())));
                        fields.push(('i', u32::from(imm.imm8())));
                        "dp-imm"
                    }
                    Operand2::Reg(rm, Shift::Imm(kind, amount)) => {
                        fields.push(('i', shift_amount_field(amount)));
                        fields.push(('t', u32::from(kind.bits())));
                        fields.push(('m', u32::from(rm.index())));
                        "dp-reg"
                    }
                    Operand2::Reg(rm, Shift::Reg(kind, rs)) => {
                        fields.push(('s', u32::from(rs.index())));
                        fields.push(('t', u32::from(kind.bits())));
                        fields.push(('m', u32::from(rm.index())));
                        "dp-rsr"
                    }
                }
            }
            Instr::Mul {
                set_flags,
                rd,
                rm,
                rs,
                acc,
                ..
            } => {
                fields.push(('S', u32::from(set_flags)));
                fields.push(('d', u32::from(rd.index())));
                fields.push(('s', u32::from(rs.index())));
                fields.push(('m', u32::from(rm.index())));
                match acc {
                    Some(rn) => {
                        fields.push(('a', u32::from(rn.index())));
                        "mla"
                    }
                    None => "mul",
                }
            }
            Instr::Mem {
                op,
                rd,
                rn,
                offset,
                index,
                ..
            } => {
                let (p, w) = match index {
                    Index::PreNoWb => (1u32, 0u32),
                    Index::PreWb => (1, 1),
                    Index::Post => (0, 0),
                };
                fields.push(('p', p));
                fields.push(('w', w));
                fields.push(('n', u32::from(rn.index())));
                fields.push(('d', u32::from(rd.index())));
                if op.is_halfword_form() {
                    match offset {
                        AddrOffset::Imm(d) => {
                            let mag = d.unsigned_abs();
                            fields.push(('u', u32::from(d >= 0)));
                            fields.push(('h', mag >> 4));
                            fields.push(('l', mag & 0xf));
                            match op {
                                MemOp::Strh => "strh-imm",
                                MemOp::Ldrh => "ldrh-imm",
                                MemOp::Ldrsb => "ldrsb-imm",
                                _ => "ldrsh-imm",
                            }
                        }
                        AddrOffset::Reg { rm, subtract, .. } => {
                            fields.push(('u', u32::from(!subtract)));
                            fields.push(('m', u32::from(rm.index())));
                            match op {
                                MemOp::Strh => "strh-reg",
                                MemOp::Ldrh => "ldrh-reg",
                                MemOp::Ldrsb => "ldrsb-reg",
                                _ => "ldrsh-reg",
                            }
                        }
                    }
                } else {
                    match offset {
                        AddrOffset::Imm(d) => {
                            fields.push(('u', u32::from(d >= 0)));
                            fields.push(('i', d.unsigned_abs()));
                            match op {
                                MemOp::Str => "str-imm",
                                MemOp::Ldr => "ldr-imm",
                                MemOp::Strb => "strb-imm",
                                _ => "ldrb-imm",
                            }
                        }
                        AddrOffset::Reg {
                            rm,
                            shift,
                            subtract,
                        } => {
                            fields.push(('u', u32::from(!subtract)));
                            let (kind, amount) = match shift {
                                Shift::Imm(kind, amount) => (kind, amount),
                                // Register-shift offsets are invalid for
                                // memory forms; mirror the built-in
                                // encoder's debug contract by treating the
                                // shift fields as LSL #0.
                                Shift::Reg(kind, _) => (kind, 0),
                            };
                            fields.push(('i', shift_amount_field(amount)));
                            fields.push(('t', u32::from(kind.bits())));
                            fields.push(('m', u32::from(rm.index())));
                            match op {
                                MemOp::Str => "str-reg",
                                MemOp::Ldr => "ldr-reg",
                                MemOp::Strb => "strb-reg",
                                _ => "ldrb-reg",
                            }
                        }
                    }
                }
            }
            Instr::Branch { link, offset, .. } => {
                fields.push(('i', (offset as u32) & 0x00ff_ffff));
                if link {
                    "bl"
                } else {
                    "b"
                }
            }
            Instr::Swi { imm, .. } => {
                fields.push(('i', imm));
                "swi"
            }
        };
        self.pattern(name).pack(&fields)
    }
}

/// LSR/ASR #32 encode with a zero amount field.
fn shift_amount_field(amount: u8) -> u32 {
    if amount == 32 {
        0
    } else {
        u32::from(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_words_match_builtin() {
        let t = Ar32Tables::builtin();
        for word in [
            0xe281_0004u32, // add r0, r1, #4
            0xe1a0_2003,    // mov r2, r3
            0xe000_0291,    // mul r0, r1, r2
            0xea00_0002,    // b +2
            0xebff_fffe,    // bl -2
            0xe591_0008,    // ldr r0, [r1, #8]
            0xe501_0004,    // str r0, [r1, #-4]
            0xef00_0011,    // swi #17
            0xe351_0000,    // cmp r1, #0
        ] {
            let via_spec = t.decode(word).unwrap();
            assert_eq!(via_spec, Instr::decode(word).unwrap(), "{word:#010x}");
            assert_eq!(t.encode(&via_spec), word, "{word:#010x}");
        }
    }

    #[test]
    fn rejections_match_builtin() {
        let t = Ar32Tables::builtin();
        for word in [
            0xe8bd_8000u32, // LDM (block transfer)
            0xee00_0000,    // coprocessor
            0xe10f_0000,    // MRS (compare without S)
            0xe1a0_0062,    // RRX shifter form
            0xe080_0291,    // UMULL
            0xe000_1291,    // MUL with nonzero Rn
            0xe1c1_02d4,    // signed store (LDRSB pattern with L=0... S=1 L=0)
        ] {
            let spec_err = t.decode(word).unwrap_err();
            let builtin_err = Instr::decode(word).unwrap_err();
            assert_eq!(spec_err, builtin_err, "{word:#010x}");
        }
    }

    #[test]
    fn exhaustive_strided_differential() {
        let t = Ar32Tables::builtin();
        // A multiplicative stride walks a well-spread sample of the word
        // space deterministically.
        let mut word: u32 = 0x9e37_79b9;
        for _ in 0..200_000 {
            word = word.wrapping_mul(0x0019_660d).wrapping_add(0x3c6e_f35f);
            match (t.decode(word), Instr::decode(word)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{word:#010x}");
                    assert_eq!(t.encode(&a), a.encode(), "{word:#010x}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{word:#010x}"),
                (a, b) => panic!("{word:#010x}: spec {a:?} vs builtin {b:?}"),
            }
        }
    }

    #[test]
    fn missing_form_is_a_build_error() {
        let text = super::super::AR32_SPEC_TEXT.replace(
            "form swi { pattern \"cccc 1111 iiii iiii iiii iiii iiii iiii\" }",
            "",
        );
        let spec = IsaSpec::load(&text).unwrap();
        let err = Ar32Tables::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("missing the AR32 form `swi`"));
    }

    #[test]
    fn unknown_form_is_a_build_error() {
        let text = super::super::AR32_SPEC_TEXT.replace("form swi", "form swj");
        let spec = IsaSpec::load(&text).unwrap();
        let err = Ar32Tables::from_spec(&spec).unwrap_err();
        assert!(err.to_string().contains("unknown AR32 form `swj`"));
    }
}
