//! Program images: a text segment of instructions plus a data segment.

use std::fmt;

use crate::Instr;

/// Base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0000_8000;
/// Base address of the data segment.
pub const DATA_BASE: u32 = 0x0010_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = 0x0020_0000;

/// A complete AR32 program image: instructions, initialized data and entry
/// point. This is what the kernel compiler emits and what both the profiler
/// and the ARM→FITS translator consume.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The instructions, laid out contiguously from [`TEXT_BASE`].
    pub text: Vec<Instr>,
    /// The initialized data image, laid out from [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry point, as an index into `text`.
    pub entry: usize,
    /// Optional symbol table: (text index, name) pairs for disassembly.
    pub symbols: Vec<(usize, String)>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> Program {
        Program::default()
    }

    /// Code size in bytes (4 bytes per AR32 instruction).
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.text.len() * 4
    }

    /// The address of the instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds of the text segment.
    #[must_use]
    pub fn addr_of(&self, index: usize) -> u32 {
        assert!(index <= self.text.len(), "text index {index} out of range");
        TEXT_BASE + (index as u32) * 4
    }

    /// The text index of an address, if it falls in the text segment and is
    /// instruction-aligned.
    #[must_use]
    pub fn index_of(&self, addr: u32) -> Option<usize> {
        if addr < TEXT_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        let index = ((addr - TEXT_BASE) / 4) as usize;
        (index < self.text.len()).then_some(index)
    }

    /// The branch-target text index of the branch at `index`, if that
    /// instruction is a PC-relative branch. AR32 branch offsets are relative
    /// to `PC + 8`, i.e. two instructions past the branch.
    #[must_use]
    pub fn branch_target(&self, index: usize) -> Option<usize> {
        match self.text.get(index) {
            Some(Instr::Branch { offset, .. }) => {
                let target = index as i64 + 2 + i64::from(*offset);
                usize::try_from(target)
                    .ok()
                    .filter(|t| *t < self.text.len())
            }
            _ => None,
        }
    }

    /// Renders a disassembly listing with addresses and symbols.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.text.iter().enumerate() {
            for (sym_idx, name) in &self.symbols {
                if *sym_idx == i {
                    out.push_str(&format!("{name}:\n"));
                }
            }
            out.push_str(&format!("  {:#010x}:  {instr}\n", self.addr_of(i)));
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} instructions ({} bytes text, {} bytes data)",
            self.text.len(),
            self.code_bytes(),
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DpOp, Operand2, Reg};

    fn sample() -> Program {
        Program {
            text: vec![
                Instr::mov(Reg::R0, Operand2::imm(1).unwrap()),
                Instr::b(-1),
                Instr::dp(DpOp::Add, Reg::R0, Reg::R0, Operand2::imm(1).unwrap()),
            ],
            data: vec![1, 2, 3],
            entry: 0,
            symbols: vec![(0, "main".to_string())],
        }
    }

    #[test]
    fn addressing() {
        let p = sample();
        assert_eq!(p.addr_of(0), TEXT_BASE);
        assert_eq!(p.addr_of(2), TEXT_BASE + 8);
        assert_eq!(p.index_of(TEXT_BASE + 4), Some(1));
        assert_eq!(p.index_of(TEXT_BASE + 5), None);
        assert_eq!(p.index_of(TEXT_BASE - 4), None);
        assert_eq!(p.index_of(TEXT_BASE + 400), None);
        assert_eq!(p.code_bytes(), 12);
    }

    #[test]
    fn branch_targets() {
        let p = sample();
        // Branch at index 1 with offset -1 targets index 1 + 2 - 1 = 2.
        assert_eq!(p.branch_target(1), Some(2));
        assert_eq!(p.branch_target(0), None);
    }

    #[test]
    fn disassembly_includes_symbols() {
        let text = sample().disassemble();
        assert!(text.starts_with("main:\n"));
        assert!(text.contains("mov r0, #1"));
    }
}
