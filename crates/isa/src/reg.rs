use std::fmt;

/// An AR32 general-purpose register, `r0` through `r15`.
///
/// The calling/layout conventions mirror ARM's: `r13` is the stack pointer
/// ([`Reg::SP`]), `r14` the link register ([`Reg::LR`]) and `r15` the program
/// counter ([`Reg::PC`]). `r12` ([`Reg::IP`]) is reserved by the kernel
/// compiler as the intra-procedure scratch register, which the ARM→FITS
/// translator is then free to use for 1-to-n expansion sequences.
///
/// ```
/// use fits_isa::Reg;
/// assert_eq!(Reg::SP.index(), 13);
/// assert_eq!(Reg::new(3).to_string(), "r3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Register `r0` (first argument / return value).
    pub const R0: Reg = Reg(0);
    /// Register `r1`.
    pub const R1: Reg = Reg(1);
    /// Register `r2`.
    pub const R2: Reg = Reg(2);
    /// Register `r3`.
    pub const R3: Reg = Reg(3);
    /// Register `r4`.
    pub const R4: Reg = Reg(4);
    /// Register `r5`.
    pub const R5: Reg = Reg(5);
    /// Register `r6`.
    pub const R6: Reg = Reg(6);
    /// Register `r7`.
    pub const R7: Reg = Reg(7);
    /// Register `r8`.
    pub const R8: Reg = Reg(8);
    /// Register `r9`.
    pub const R9: Reg = Reg(9);
    /// Register `r10`.
    pub const R10: Reg = Reg(10);
    /// Register `r11`.
    pub const R11: Reg = Reg(11);
    /// Register `r12`, the intra-procedure scratch register (`ip`).
    pub const IP: Reg = Reg(12);
    /// Register `r13`, the stack pointer.
    pub const SP: Reg = Reg(13);
    /// Register `r14`, the link register.
    pub const LR: Reg = Reg(14);
    /// Register `r15`, the program counter.
    pub const PC: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index {index} out of range");
        Reg(index)
    }

    /// The register's index, `0..=15`.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Iterates over all sixteen registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }

    /// Whether this is the program counter.
    #[must_use]
    pub fn is_pc(self) -> bool {
        self.0 == 15
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_match_indices() {
        assert_eq!(Reg::IP.index(), 12);
        assert_eq!(Reg::SP.index(), 13);
        assert_eq!(Reg::LR.index(), 14);
        assert_eq!(Reg::PC.index(), 15);
        assert!(Reg::PC.is_pc());
        assert!(!Reg::LR.is_pc());
    }

    #[test]
    fn display_uses_arm_names() {
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(Reg::new(12).to_string(), "r12");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::LR.to_string(), "lr");
        assert_eq!(Reg::PC.to_string(), "pc");
    }

    #[test]
    fn all_yields_sixteen() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 16);
        assert_eq!(regs[5], Reg::R5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(16);
    }
}
