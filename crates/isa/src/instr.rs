use std::fmt;

use crate::{AddrOffset, Cond, DpOp, Index, MemOp, Operand2, Reg, Shift};

/// A broad instruction category, used by the profiler and the FITS format
/// allocator (the paper's four categories: operate, memory, branch, trap —
/// Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InstrClass {
    /// Data-processing and multiply instructions.
    Operate,
    /// Loads and stores.
    Memory,
    /// Branches (including branch-and-link and register jumps).
    Branch,
    /// Software interrupts / traps.
    Trap,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstrClass::Operate => "operate",
            InstrClass::Memory => "memory",
            InstrClass::Branch => "branch",
            InstrClass::Trap => "trap",
        };
        f.write_str(s)
    }
}

/// One AR32 instruction.
///
/// Every variant carries its condition code. Branch offsets are stored the
/// way the hardware sees them: a signed *word* offset relative to `PC + 8`
/// (two instructions ahead of the branch), exactly as in ARM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A data-processing instruction (`ADD`, `CMP`, `MOV`, …).
    Dp {
        /// Condition code.
        cond: Cond,
        /// Operation.
        op: DpOp,
        /// Whether to update the flags (`S` bit). Compare ops always do.
        set_flags: bool,
        /// Destination register (ignored for compare ops).
        rd: Reg,
        /// First source register (ignored for MOV/MVN).
        rn: Reg,
        /// Flexible second operand.
        op2: Operand2,
    },
    /// Multiply / multiply-accumulate: `rd = rm * rs (+ rn)`.
    Mul {
        /// Condition code.
        cond: Cond,
        /// Whether to update N and Z.
        set_flags: bool,
        /// Destination register.
        rd: Reg,
        /// Multiplicand.
        rm: Reg,
        /// Multiplier.
        rs: Reg,
        /// Accumulator register (`Some` makes this an `MLA`).
        acc: Option<Reg>,
    },
    /// A load or store.
    Mem {
        /// Condition code.
        cond: Cond,
        /// Operation (size/direction/extension).
        op: MemOp,
        /// Data register (destination for loads, source for stores).
        rd: Reg,
        /// Base address register.
        rn: Reg,
        /// Offset.
        offset: AddrOffset,
        /// Indexing / writeback mode.
        index: Index,
    },
    /// A PC-relative branch. `offset` is in words relative to `PC + 8`.
    Branch {
        /// Condition code.
        cond: Cond,
        /// Whether to write the return address to `lr` (`BL`).
        link: bool,
        /// Signed word offset from `PC + 8` (24-bit range).
        offset: i32,
    },
    /// A software interrupt (trap) with a 24-bit comment field.
    Swi {
        /// Condition code.
        cond: Cond,
        /// 24-bit trap number.
        imm: u32,
    },
}

impl Instr {
    /// Builds an unconditional, non-flag-setting data-processing instruction.
    #[must_use]
    pub fn dp(op: DpOp, rd: Reg, rn: Reg, op2: Operand2) -> Instr {
        Instr::Dp {
            cond: Cond::Al,
            op,
            set_flags: op.is_compare(),
            rd,
            rn,
            op2,
        }
    }

    /// Builds an unconditional `MOV rd, op2`.
    #[must_use]
    pub fn mov(rd: Reg, op2: Operand2) -> Instr {
        Instr::dp(DpOp::Mov, rd, Reg::R0, op2)
    }

    /// Builds an unconditional `CMP rn, op2`.
    #[must_use]
    pub fn cmp(rn: Reg, op2: Operand2) -> Instr {
        Instr::dp(DpOp::Cmp, Reg::R0, rn, op2)
    }

    /// Builds an unconditional `MUL rd, rm, rs`.
    #[must_use]
    pub fn mul(rd: Reg, rm: Reg, rs: Reg) -> Instr {
        Instr::Mul {
            cond: Cond::Al,
            set_flags: false,
            rd,
            rm,
            rs,
            acc: None,
        }
    }

    /// Builds an unconditional load/store with a pre-indexed immediate
    /// displacement and no writeback.
    #[must_use]
    pub fn mem(op: MemOp, rd: Reg, rn: Reg, disp: i32) -> Instr {
        Instr::Mem {
            cond: Cond::Al,
            op,
            rd,
            rn,
            offset: AddrOffset::Imm(disp),
            index: Index::PreNoWb,
        }
    }

    /// Builds an unconditional branch with the given word offset from
    /// `PC + 8`.
    #[must_use]
    pub fn b(offset: i32) -> Instr {
        Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset,
        }
    }

    /// The instruction's condition code.
    #[must_use]
    pub fn cond(&self) -> Cond {
        match *self {
            Instr::Dp { cond, .. }
            | Instr::Mul { cond, .. }
            | Instr::Mem { cond, .. }
            | Instr::Branch { cond, .. }
            | Instr::Swi { cond, .. } => cond,
        }
    }

    /// Returns a copy with the condition replaced.
    #[must_use]
    pub fn with_cond(mut self, new: Cond) -> Instr {
        match &mut self {
            Instr::Dp { cond, .. }
            | Instr::Mul { cond, .. }
            | Instr::Mem { cond, .. }
            | Instr::Branch { cond, .. }
            | Instr::Swi { cond, .. } => *cond = new,
        }
        self
    }

    /// The broad category this instruction falls in.
    #[must_use]
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Dp { .. } | Instr::Mul { .. } => InstrClass::Operate,
            Instr::Mem { .. } => InstrClass::Memory,
            // Writing the PC with a data-processing op is still classified
            // as Operate here; `is_control_flow` captures the jump aspect.
            Instr::Branch { .. } => InstrClass::Branch,
            Instr::Swi { .. } => InstrClass::Trap,
        }
    }

    /// Whether executing this instruction may redirect the PC.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        match self {
            Instr::Branch { .. } | Instr::Swi { .. } => true,
            Instr::Dp { rd, op, .. } => rd.is_pc() && !op.is_compare(),
            Instr::Mem { op, rd, .. } => op.is_load() && rd.is_pc(),
            Instr::Mul { .. } => false,
        }
    }

    /// Registers this instruction reads.
    #[must_use]
    pub fn reads(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(3);
        match self {
            Instr::Dp { op, rn, op2, .. } => {
                if !op.ignores_rn() {
                    out.push(*rn);
                }
                out.extend(op2.reads());
            }
            Instr::Mul { rm, rs, acc, .. } => {
                out.push(*rm);
                out.push(*rs);
                if let Some(rn) = acc {
                    out.push(*rn);
                }
            }
            Instr::Mem {
                op, rd, rn, offset, ..
            } => {
                out.push(*rn);
                if let AddrOffset::Reg { rm, .. } = offset {
                    out.push(*rm);
                }
                if !op.is_load() {
                    out.push(*rd);
                }
            }
            Instr::Branch { .. } | Instr::Swi { .. } => {}
        }
        out
    }

    /// Registers this instruction writes.
    #[must_use]
    pub fn writes(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        match self {
            Instr::Dp { op, rd, .. } => {
                if !op.is_compare() {
                    out.push(*rd);
                }
            }
            Instr::Mul { rd, .. } => out.push(*rd),
            Instr::Mem {
                op, rd, rn, index, ..
            } => {
                if op.is_load() {
                    out.push(*rd);
                }
                if index.writes_base() {
                    out.push(*rn);
                }
            }
            Instr::Branch { link, .. } => {
                if *link {
                    out.push(Reg::LR);
                }
            }
            Instr::Swi { .. } => {}
        }
        out
    }

    /// Whether this instruction updates the condition flags.
    #[must_use]
    pub fn sets_flags(&self) -> bool {
        match self {
            Instr::Dp { set_flags, .. } | Instr::Mul { set_flags, .. } => *set_flags,
            _ => false,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Dp {
                cond,
                op,
                set_flags,
                rd,
                rn,
                op2,
            } => {
                let s = if *set_flags && !op.is_compare() {
                    "s"
                } else {
                    ""
                };
                if op.is_compare() {
                    write!(f, "{op}{cond} {rn}, {op2}")
                } else if op.ignores_rn() {
                    write!(f, "{op}{cond}{s} {rd}, {op2}")
                } else {
                    write!(f, "{op}{cond}{s} {rd}, {rn}, {op2}")
                }
            }
            Instr::Mul {
                cond,
                set_flags,
                rd,
                rm,
                rs,
                acc,
            } => {
                let s = if *set_flags { "s" } else { "" };
                match acc {
                    Some(rn) => write!(f, "mla{cond}{s} {rd}, {rm}, {rs}, {rn}"),
                    None => write!(f, "mul{cond}{s} {rd}, {rm}, {rs}"),
                }
            }
            Instr::Mem {
                cond,
                op,
                rd,
                rn,
                offset,
                index,
            } => {
                write!(f, "{op}{cond} {rd}, [{rn}")?;
                let off = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    match offset {
                        AddrOffset::Imm(0) => Ok(()),
                        AddrOffset::Imm(d) => write!(f, ", #{d}"),
                        AddrOffset::Reg {
                            rm,
                            shift,
                            subtract,
                        } => {
                            let sign = if *subtract { "-" } else { "" };
                            match shift {
                                &Shift::NONE => write!(f, ", {sign}{rm}"),
                                s => write!(f, ", {sign}{rm}{s}"),
                            }
                        }
                    }
                };
                match index {
                    Index::PreNoWb => {
                        off(f)?;
                        write!(f, "]")
                    }
                    Index::PreWb => {
                        off(f)?;
                        write!(f, "]!")
                    }
                    Index::Post => {
                        write!(f, "]")?;
                        off(f)
                    }
                }
            }
            Instr::Branch { cond, link, offset } => {
                let l = if *link { "l" } else { "" };
                write!(f, "b{l}{cond} {:+}", offset * 4)
            }
            Instr::Swi { cond, imm } => write!(f, "swi{cond} #{imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShiftKind;

    #[test]
    fn classification() {
        assert_eq!(
            Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::reg(Reg::R2)).class(),
            InstrClass::Operate
        );
        assert_eq!(
            Instr::mem(MemOp::Ldr, Reg::R0, Reg::R1, 4).class(),
            InstrClass::Memory
        );
        assert_eq!(Instr::b(-2).class(), InstrClass::Branch);
        assert_eq!(
            Instr::Swi {
                cond: Cond::Al,
                imm: 0
            }
            .class(),
            InstrClass::Trap
        );
    }

    #[test]
    fn control_flow_detection() {
        assert!(Instr::b(0).is_control_flow());
        assert!(Instr::mov(Reg::PC, Operand2::reg(Reg::LR)).is_control_flow());
        assert!(!Instr::mov(Reg::R0, Operand2::reg(Reg::LR)).is_control_flow());
        assert!(!Instr::cmp(Reg::PC, Operand2::imm(0).unwrap()).is_control_flow());
        assert!(Instr::mem(MemOp::Ldr, Reg::PC, Reg::SP, 0).is_control_flow());
        assert!(!Instr::mem(MemOp::Str, Reg::PC, Reg::SP, 0).is_control_flow());
    }

    #[test]
    fn read_write_sets() {
        let add = Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::reg(Reg::R2));
        assert_eq!(add.reads(), vec![Reg::R1, Reg::R2]);
        assert_eq!(add.writes(), vec![Reg::R0]);

        let cmp = Instr::cmp(Reg::R3, Operand2::imm(1).unwrap());
        assert_eq!(cmp.reads(), vec![Reg::R3]);
        assert!(cmp.writes().is_empty());
        assert!(cmp.sets_flags());

        let store = Instr::mem(MemOp::Str, Reg::R4, Reg::R5, 8);
        assert_eq!(store.reads(), vec![Reg::R5, Reg::R4]);
        assert!(store.writes().is_empty());

        let post = Instr::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: AddrOffset::Imm(4),
            index: Index::Post,
        };
        assert_eq!(post.writes(), vec![Reg::R0, Reg::R1]);

        let bl = Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: 10,
        };
        assert_eq!(bl.writes(), vec![Reg::LR]);

        let mla = Instr::Mul {
            cond: Cond::Al,
            set_flags: false,
            rd: Reg::R0,
            rm: Reg::R1,
            rs: Reg::R2,
            acc: Some(Reg::R3),
        };
        assert_eq!(mla.reads(), vec![Reg::R1, Reg::R2, Reg::R3]);
    }

    #[test]
    fn display_assembly() {
        assert_eq!(
            Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(4).unwrap()).to_string(),
            "add r0, r1, #4"
        );
        assert_eq!(
            Instr::mov(Reg::R2, Operand2::reg(Reg::R3)).to_string(),
            "mov r2, r3"
        );
        assert_eq!(
            Instr::cmp(Reg::R1, Operand2::imm(0).unwrap()).to_string(),
            "cmp r1, #0"
        );
        assert_eq!(
            Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::reg(Reg::R2))
                .with_cond(Cond::Ne)
                .to_string(),
            "addne r0, r1, r2"
        );
        assert_eq!(
            Instr::mem(MemOp::Ldrb, Reg::R0, Reg::R1, 3).to_string(),
            "ldrb r0, [r1, #3]"
        );
        let idx = Instr::Mem {
            cond: Cond::Al,
            op: MemOp::Ldr,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: AddrOffset::Reg {
                rm: Reg::R2,
                shift: Shift::Imm(ShiftKind::Lsl, 2),
                subtract: false,
            },
            index: Index::PreNoWb,
        };
        assert_eq!(idx.to_string(), "ldr r0, [r1, r2, lsl #2]");
        assert_eq!(Instr::b(-2).to_string(), "b -8");
    }
}
