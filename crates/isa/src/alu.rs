//! Flag-exact ALU semantics shared by the AR32 executor and the synthesized
//! FITS executor.
//!
//! FITS maps its 16-bit opcodes onto the *same* datapath as the native ISA
//! (the paper's programmable-decoder design), so both executors must agree
//! bit-for-bit on results and condition flags. Centralizing the semantics
//! here is what makes the differential tests meaningful.

use crate::{DpOp, Operand2, RotImm, Shift, ShiftKind};

/// The four condition flags (the CPSR's NZCV nibble).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Negative: bit 31 of the result.
    pub n: bool,
    /// Zero: result was zero.
    pub z: bool,
    /// Carry (or NOT-borrow for subtraction; shifter carry for logical ops).
    pub c: bool,
    /// Signed overflow.
    pub v: bool,
}

/// The result of evaluating a data-processing operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DpResult {
    /// The 32-bit result (meaningless for compare ops except via flags).
    pub value: u32,
    /// The flags the operation would set if its `S` bit is on.
    pub flags: Flags,
}

/// Applies a barrel-shifter operation.
///
/// `amount` is the *runtime* amount: for register-specified shifts ARM uses
/// the low byte of the register, so amounts of 32 and above are meaningful
/// and handled per the architecture (e.g. `LSL #32` yields 0 with C = old
/// bit 0). Returns the shifted value and the shifter carry-out.
#[must_use]
pub fn barrel_shift(kind: ShiftKind, value: u32, amount: u32, carry_in: bool) -> (u32, bool) {
    match kind {
        ShiftKind::Lsl => match amount {
            0 => (value, carry_in),
            1..=31 => (value << amount, (value >> (32 - amount)) & 1 != 0),
            32 => (0, value & 1 != 0),
            _ => (0, false),
        },
        ShiftKind::Lsr => match amount {
            0 => (value, carry_in),
            1..=31 => (value >> amount, (value >> (amount - 1)) & 1 != 0),
            32 => (0, value >> 31 != 0),
            _ => (0, false),
        },
        ShiftKind::Asr => match amount {
            0 => (value, carry_in),
            1..=31 => (
                ((value as i32) >> amount) as u32,
                (value >> (amount - 1)) & 1 != 0,
            ),
            _ => {
                let fill = if value >> 31 != 0 { u32::MAX } else { 0 };
                (fill, value >> 31 != 0)
            }
        },
        ShiftKind::Ror => {
            if amount == 0 {
                (value, carry_in)
            } else {
                let eff = amount % 32;
                let rotated = value.rotate_right(eff);
                // ROR by a multiple of 32 leaves the value; C = bit 31.
                (rotated, rotated >> 31 != 0)
            }
        }
    }
}

/// Evaluates the shifter operand (`Operand2`) given the register file.
///
/// `read_reg` must return the current value of a register (including the
/// executor's view of the PC if the operand names it). Returns the operand
/// value and shifter carry-out.
pub fn shifter_operand(
    op2: &Operand2,
    carry_in: bool,
    mut read_reg: impl FnMut(crate::Reg) -> u32,
) -> (u32, bool) {
    match op2 {
        Operand2::Imm(imm) => (imm.value(), imm.carry_out(carry_in)),
        Operand2::Reg(rm, shift) => {
            let base = read_reg(*rm);
            match shift {
                Shift::Imm(kind, n) => {
                    // Encoded amount 0 means 32 for LSR/ASR.
                    let amount = match (kind, *n) {
                        (ShiftKind::Lsr | ShiftKind::Asr, 32) => 32,
                        (_, n) => u32::from(n),
                    };
                    barrel_shift(*kind, base, amount, carry_in)
                }
                Shift::Reg(kind, rs) => {
                    let amount = read_reg(*rs) & 0xff;
                    if amount == 0 {
                        (base, carry_in)
                    } else {
                        barrel_shift(*kind, base, amount, carry_in)
                    }
                }
            }
        }
    }
}

fn add_with_carry(a: u32, b: u32, carry: bool) -> (u32, bool, bool) {
    let (s1, c1) = a.overflowing_add(b);
    let (sum, c2) = s1.overflowing_add(u32::from(carry));
    let carry_out = c1 || c2;
    let overflow = ((a ^ sum) & (b ^ sum)) >> 31 != 0;
    (sum, carry_out, overflow)
}

/// Evaluates a data-processing operation on already-shifted operands.
///
/// `a` is the `rn` value, `b` the shifter-operand value, `shifter_carry` the
/// shifter carry-out, `flags_in` the incoming flags (needed by ADC/SBC/RSC
/// and to preserve V on logical ops).
#[must_use]
pub fn dp_eval(op: DpOp, a: u32, b: u32, shifter_carry: bool, flags_in: Flags) -> DpResult {
    let logical = |value: u32| DpResult {
        value,
        flags: Flags {
            n: value >> 31 != 0,
            z: value == 0,
            c: shifter_carry,
            v: flags_in.v,
        },
    };
    let arith = |value: u32, c: bool, v: bool| DpResult {
        value,
        flags: Flags {
            n: value >> 31 != 0,
            z: value == 0,
            c,
            v,
        },
    };
    match op {
        DpOp::And | DpOp::Tst => logical(a & b),
        DpOp::Eor | DpOp::Teq => logical(a ^ b),
        DpOp::Orr => logical(a | b),
        DpOp::Bic => logical(a & !b),
        DpOp::Mov => logical(b),
        DpOp::Mvn => logical(!b),
        DpOp::Add | DpOp::Cmn => {
            let (s, c, v) = add_with_carry(a, b, false);
            arith(s, c, v)
        }
        DpOp::Adc => {
            let (s, c, v) = add_with_carry(a, b, flags_in.c);
            arith(s, c, v)
        }
        DpOp::Sub | DpOp::Cmp => {
            let (s, c, v) = add_with_carry(a, !b, true);
            arith(s, c, v)
        }
        DpOp::Sbc => {
            let (s, c, v) = add_with_carry(a, !b, flags_in.c);
            arith(s, c, v)
        }
        DpOp::Rsb => {
            let (s, c, v) = add_with_carry(b, !a, true);
            arith(s, c, v)
        }
        DpOp::Rsc => {
            let (s, c, v) = add_with_carry(b, !a, flags_in.c);
            arith(s, c, v)
        }
    }
}

/// Flags produced by a flag-setting multiply (`MULS`/`MLAS`): N and Z from
/// the result, C and V unchanged (ARMv4 leaves C meaningless; we preserve).
#[must_use]
pub fn mul_flags(result: u32, flags_in: Flags) -> Flags {
    Flags {
        n: result >> 31 != 0,
        z: result == 0,
        c: flags_in.c,
        v: flags_in.v,
    }
}

/// Convenience used by constant materialization: the value denoted by a
/// rotated immediate.
#[must_use]
pub fn rot_imm_value(imm: RotImm) -> u32 {
    imm.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    const F0: Flags = Flags {
        n: false,
        z: false,
        c: false,
        v: false,
    };

    #[test]
    fn add_flags() {
        let r = dp_eval(DpOp::Add, 1, 2, false, F0);
        assert_eq!(r.value, 3);
        assert!(!r.flags.n && !r.flags.z && !r.flags.c && !r.flags.v);

        // Unsigned wrap sets C.
        let r = dp_eval(DpOp::Add, u32::MAX, 1, false, F0);
        assert_eq!(r.value, 0);
        assert!(r.flags.z && r.flags.c && !r.flags.v);

        // Signed overflow sets V.
        let r = dp_eval(DpOp::Add, 0x7fff_ffff, 1, false, F0);
        assert_eq!(r.value, 0x8000_0000);
        assert!(r.flags.n && r.flags.v && !r.flags.c);
    }

    #[test]
    fn sub_borrow_semantics() {
        // 5 - 3: no borrow -> C set (ARM convention).
        let r = dp_eval(DpOp::Sub, 5, 3, false, F0);
        assert_eq!(r.value, 2);
        assert!(r.flags.c && !r.flags.n);

        // 3 - 5: borrow -> C clear, negative.
        let r = dp_eval(DpOp::Sub, 3, 5, false, F0);
        assert_eq!(r.value, (-2i32) as u32);
        assert!(!r.flags.c && r.flags.n);

        // x - x: zero, C set.
        let r = dp_eval(DpOp::Cmp, 9, 9, false, F0);
        assert!(r.flags.z && r.flags.c);
    }

    #[test]
    fn adc_sbc_chain() {
        // 64-bit add: low words wrap, carry feeds the high add.
        let lo = dp_eval(DpOp::Add, 0xffff_ffff, 2, false, F0);
        assert!(lo.flags.c);
        let hi = dp_eval(DpOp::Adc, 1, 0, false, lo.flags);
        assert_eq!(hi.value, 2);

        // SBC with carry set behaves as plain SUB.
        let carry_set = Flags { c: true, ..F0 };
        assert_eq!(dp_eval(DpOp::Sbc, 10, 4, false, carry_set).value, 6);
        // SBC with carry clear subtracts one more.
        assert_eq!(dp_eval(DpOp::Sbc, 10, 4, false, F0).value, 5);
    }

    #[test]
    fn rsb_reverses() {
        let r = dp_eval(DpOp::Rsb, 3, 10, false, F0);
        assert_eq!(r.value, 7);
        let r = dp_eval(DpOp::Rsc, 3, 10, false, Flags { c: true, ..F0 });
        assert_eq!(r.value, 7);
    }

    #[test]
    fn logical_ops_preserve_v_and_take_shifter_carry() {
        let vin = Flags { v: true, ..F0 };
        let r = dp_eval(DpOp::And, 0b1100, 0b1010, true, vin);
        assert_eq!(r.value, 0b1000);
        assert!(r.flags.c, "C comes from the shifter");
        assert!(r.flags.v, "V preserved by logical ops");
        assert_eq!(dp_eval(DpOp::Mvn, 0, 0, false, F0).value, u32::MAX);
        assert_eq!(dp_eval(DpOp::Bic, 0xff, 0x0f, false, F0).value, 0xf0);
    }

    #[test]
    fn barrel_shift_edge_cases() {
        assert_eq!(barrel_shift(ShiftKind::Lsl, 1, 0, true), (1, true));
        assert_eq!(
            barrel_shift(ShiftKind::Lsl, 1, 31, false),
            (0x8000_0000, false)
        );
        assert_eq!(barrel_shift(ShiftKind::Lsl, 3, 32, false), (0, true));
        assert_eq!(barrel_shift(ShiftKind::Lsl, 3, 33, true), (0, false));
        assert_eq!(
            barrel_shift(ShiftKind::Lsr, 0x8000_0000, 31, false),
            (1, false)
        );
        assert_eq!(
            barrel_shift(ShiftKind::Lsr, 0x8000_0000, 32, false),
            (0, true)
        );
        assert_eq!(
            barrel_shift(ShiftKind::Asr, 0x8000_0000, 4, false),
            (0xf800_0000, false)
        );
        assert_eq!(
            barrel_shift(ShiftKind::Asr, 0x8000_0000, 40, false),
            (u32::MAX, true)
        );
        assert_eq!(
            barrel_shift(ShiftKind::Asr, 0x7fff_ffff, 40, true),
            (0, false)
        );
        assert_eq!(
            barrel_shift(ShiftKind::Ror, 0x0000_00f0, 4, false),
            (0x0000_000f, false)
        );
        assert_eq!(
            barrel_shift(ShiftKind::Ror, 0x0000_000f, 4, false),
            (0xf000_0000, true)
        );
    }

    #[test]
    fn shifter_operand_register_amount_zero_keeps_carry() {
        let read = |r: Reg| if r == Reg::R1 { 0xabcd } else { 0 };
        let op2 = Operand2::Reg(Reg::R1, Shift::Reg(ShiftKind::Lsr, Reg::R2));
        let (v, c) = shifter_operand(&op2, true, read);
        assert_eq!(v, 0xabcd);
        assert!(c);
    }

    #[test]
    fn mul_flags_touch_only_nz() {
        let fin = Flags {
            c: true,
            v: true,
            ..F0
        };
        let f = mul_flags(0, fin);
        assert!(f.z && !f.n && f.c && f.v);
        let f = mul_flags(0x8000_0000, fin);
        assert!(f.n && !f.z);
    }
}
