//! AR32 instruction decoding.

use std::fmt;

use crate::{AddrOffset, Cond, DpOp, Index, Instr, MemOp, Operand2, Reg, RotImm, Shift, ShiftKind};

/// Why a 32-bit word was rejected: every reserved-pattern path names the
/// violated field or instruction class, so spec-level diagnostics (and the
/// data-driven decode tables in [`crate::spec`]) can report *which* rule a
/// word tripped instead of a catch-all string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeErrorKind {
    /// Long multiply (`UMULL`/`SMULL`/…) — bits 24..22 nonzero in the
    /// multiply pattern space.
    LongMultiply,
    /// `MUL` (A=0) with a nonzero Rn field (bits 15..12 must read 0).
    MulNonzeroRn,
    /// A store in the signed halfword/byte transfer space (`S=1, L=0`).
    SignedStore,
    /// Halfword register-offset form with nonzero bits 11..8.
    HalfwordHiBits,
    /// The `RRX` shifter form (`ROR #0`), which AR32 does not support.
    Rrx,
    /// Register-shift operand with bit 7 set (multiply/halfword space).
    RegisterShiftBit7,
    /// Single data transfer with a register-shift (bit 4 set) offset.
    RegisterShiftMemOffset,
    /// Post-indexed addressing with the writeback bit set (T-form).
    PostIndexWriteback,
    /// A compare opcode without the S bit — the PSR transfer space.
    PsrTransfer,
    /// An instruction class AR32 does not define (coprocessor, block
    /// transfer, …).
    Unsupported,
}

impl DecodeErrorKind {
    /// Human-readable description of the violated rule.
    #[must_use]
    pub fn message(self) -> &'static str {
        match self {
            DecodeErrorKind::LongMultiply => "long multiply not supported",
            DecodeErrorKind::MulNonzeroRn => "MUL with nonzero Rn field",
            DecodeErrorKind::SignedStore => "signed store form",
            DecodeErrorKind::HalfwordHiBits => "halfword reg offset hi bits",
            DecodeErrorKind::Rrx => "RRX is not supported",
            DecodeErrorKind::RegisterShiftBit7 => "bit 7 set in register-shift form",
            DecodeErrorKind::RegisterShiftMemOffset => "register-shift memory offset",
            DecodeErrorKind::PostIndexWriteback => "post-indexed with W set (T-form)",
            DecodeErrorKind::PsrTransfer => "PSR transfer (compare without S)",
            DecodeErrorKind::Unsupported => "unsupported instruction class",
        }
    }
}

/// Error returned when a 32-bit word is not a valid AR32 instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    word: u32,
    kind: DecodeErrorKind,
}

impl DecodeError {
    pub(crate) fn new(word: u32, kind: DecodeErrorKind) -> DecodeError {
        DecodeError { word, kind }
    }

    /// The offending machine word.
    #[must_use]
    pub fn word(&self) -> u32 {
        self.word
    }

    /// The violated rule.
    #[must_use]
    pub fn kind(&self) -> DecodeErrorKind {
        self.kind
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot decode {:#010x}: {}",
            self.word,
            self.kind.message()
        )
    }
}

impl std::error::Error for DecodeError {}

fn reg(word: u32, shift: u32) -> Reg {
    Reg::new(((word >> shift) & 0xf) as u8)
}

fn decode_shift_imm(word: u32) -> Result<Shift, DecodeError> {
    let amount = ((word >> 7) & 0x1f) as u8;
    let kind = ShiftKind::from_bits(((word >> 5) & 3) as u8);
    let shift = match (kind, amount) {
        (ShiftKind::Lsl, n) => Shift::Imm(ShiftKind::Lsl, n),
        (ShiftKind::Lsr, 0) => Shift::Imm(ShiftKind::Lsr, 32),
        (ShiftKind::Asr, 0) => Shift::Imm(ShiftKind::Asr, 32),
        (ShiftKind::Ror, 0) => return Err(DecodeError::new(word, DecodeErrorKind::Rrx)),
        (k, n) => Shift::Imm(k, n),
    };
    Ok(shift)
}

fn decode_op2(word: u32) -> Result<Operand2, DecodeError> {
    if word & (1 << 25) != 0 {
        let rot = ((word >> 8) & 0xf) as u8;
        let imm8 = (word & 0xff) as u8;
        Ok(Operand2::Imm(RotImm::from_fields(imm8, rot)))
    } else {
        let rm = reg(word, 0);
        if word & (1 << 4) != 0 {
            if word & (1 << 7) != 0 {
                return Err(DecodeError::new(word, DecodeErrorKind::RegisterShiftBit7));
            }
            let rs = reg(word, 8);
            let kind = ShiftKind::from_bits(((word >> 5) & 3) as u8);
            Ok(Operand2::Reg(rm, Shift::Reg(kind, rs)))
        } else {
            Ok(Operand2::Reg(rm, decode_shift_imm(word)?))
        }
    }
}

fn decode_index(word: u32) -> Result<Index, DecodeError> {
    let p = word & (1 << 24) != 0;
    let w = word & (1 << 21) != 0;
    match (p, w) {
        (true, false) => Ok(Index::PreNoWb),
        (true, true) => Ok(Index::PreWb),
        (false, false) => Ok(Index::Post),
        (false, true) => Err(DecodeError::new(word, DecodeErrorKind::PostIndexWriteback)),
    }
}

impl Instr {
    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the word does not correspond to an AR32
    /// instruction (unsupported ARM instruction classes — coprocessor, block
    /// transfer, RRX shifter forms — or malformed fields).
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let cond = Cond::from_bits((word >> 28) as u8);
        match (word >> 25) & 0b111 {
            0b000 => {
                let bit4 = word & (1 << 4) != 0;
                let bit7 = word & (1 << 7) != 0;
                if bit4 && bit7 {
                    // Multiply or halfword-form transfer.
                    let sh = (word >> 5) & 3;
                    if sh == 0 {
                        // Bits 7..4 == 1001: multiply family.
                        if (word >> 22) & 0b11_1111 != 0 {
                            return Err(DecodeError::new(word, DecodeErrorKind::LongMultiply));
                        }
                        let acc = if word & (1 << 21) != 0 {
                            Some(reg(word, 12))
                        } else {
                            if (word >> 12) & 0xf != 0 {
                                return Err(DecodeError::new(word, DecodeErrorKind::MulNonzeroRn));
                            }
                            None
                        };
                        Ok(Instr::Mul {
                            cond,
                            set_flags: word & (1 << 20) != 0,
                            rd: reg(word, 16),
                            rm: reg(word, 0),
                            rs: reg(word, 8),
                            acc,
                        })
                    } else {
                        let load = word & (1 << 20) != 0;
                        let op = match (load, sh) {
                            (true, 0b01) => MemOp::Ldrh,
                            (false, 0b01) => MemOp::Strh,
                            (true, 0b10) => MemOp::Ldrsb,
                            (true, 0b11) => MemOp::Ldrsh,
                            _ => return Err(DecodeError::new(word, DecodeErrorKind::SignedStore)),
                        };
                        let up = word & (1 << 23) != 0;
                        let offset = if word & (1 << 22) != 0 {
                            let mag = (((word >> 8) & 0xf) << 4 | (word & 0xf)) as i32;
                            AddrOffset::Imm(if up { mag } else { -mag })
                        } else {
                            if (word >> 8) & 0xf != 0 {
                                return Err(DecodeError::new(
                                    word,
                                    DecodeErrorKind::HalfwordHiBits,
                                ));
                            }
                            AddrOffset::Reg {
                                rm: reg(word, 0),
                                shift: Shift::NONE,
                                subtract: !up,
                            }
                        };
                        Ok(Instr::Mem {
                            cond,
                            op,
                            rd: reg(word, 12),
                            rn: reg(word, 16),
                            offset,
                            index: decode_index(word)?,
                        })
                    }
                } else {
                    Self::decode_dp(word, cond)
                }
            }
            0b001 => Self::decode_dp(word, cond),
            0b010 | 0b011 => {
                let load = word & (1 << 20) != 0;
                let byte = word & (1 << 22) != 0;
                let op = match (load, byte) {
                    (true, false) => MemOp::Ldr,
                    (false, false) => MemOp::Str,
                    (true, true) => MemOp::Ldrb,
                    (false, true) => MemOp::Strb,
                };
                let up = word & (1 << 23) != 0;
                let offset = if word & (1 << 25) != 0 {
                    if word & (1 << 4) != 0 {
                        return Err(DecodeError::new(
                            word,
                            DecodeErrorKind::RegisterShiftMemOffset,
                        ));
                    }
                    AddrOffset::Reg {
                        rm: reg(word, 0),
                        shift: decode_shift_imm(word)?,
                        subtract: !up,
                    }
                } else {
                    let mag = (word & 0xfff) as i32;
                    AddrOffset::Imm(if up { mag } else { -mag })
                };
                Ok(Instr::Mem {
                    cond,
                    op,
                    rd: reg(word, 12),
                    rn: reg(word, 16),
                    offset,
                    index: decode_index(word)?,
                })
            }
            0b101 => {
                let raw = word & 0x00ff_ffff;
                // Sign-extend the 24-bit field.
                let offset = ((raw << 8) as i32) >> 8;
                Ok(Instr::Branch {
                    cond,
                    link: word & (1 << 24) != 0,
                    offset,
                })
            }
            0b111 if (word >> 24) & 0xf == 0b1111 => Ok(Instr::Swi {
                cond,
                imm: word & 0x00ff_ffff,
            }),
            _ => Err(DecodeError::new(word, DecodeErrorKind::Unsupported)),
        }
    }

    fn decode_dp(word: u32, cond: Cond) -> Result<Instr, DecodeError> {
        let op = DpOp::from_bits(((word >> 21) & 0xf) as u8);
        let set_flags = word & (1 << 20) != 0;
        if op.is_compare() && !set_flags {
            return Err(DecodeError::new(word, DecodeErrorKind::PsrTransfer));
        }
        Ok(Instr::Dp {
            cond,
            op,
            set_flags,
            rd: reg(word, 12),
            rn: reg(word, 16),
            op2: decode_op2(word)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, DpOp};

    #[test]
    fn decode_known_words() {
        assert_eq!(
            Instr::decode(0xe281_0004).unwrap(),
            Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(4).unwrap())
        );
        assert_eq!(
            Instr::decode(0xe1a0_2003).unwrap(),
            Instr::mov(Reg::R2, Operand2::reg(Reg::R3))
        );
        assert_eq!(Instr::decode(0xea00_0002).unwrap(), Instr::b(2));
        assert_eq!(
            Instr::decode(0xebff_fffe).unwrap(),
            Instr::Branch {
                cond: Cond::Al,
                link: true,
                offset: -2
            }
        );
        assert_eq!(
            Instr::decode(0xe000_0291).unwrap(),
            Instr::mul(Reg::R0, Reg::R1, Reg::R2)
        );
    }

    #[test]
    fn rejects_unsupported_classes() {
        // Block data transfer (LDM/STM): bits 27..25 = 100.
        assert!(Instr::decode(0xe8bd_8000).is_err());
        // Coprocessor op.
        assert!(Instr::decode(0xee00_0000).is_err());
        // MRS (compare without S).
        assert!(Instr::decode(0xe10f_0000).is_err());
        // RRX shifter form (ROR #0 on a DP register operand).
        assert!(Instr::decode(0xe1a0_0062).is_err());
        // Long multiply (UMULL).
        assert!(Instr::decode(0xe080_0291).is_err());
    }

    #[test]
    fn lsr32_round_trips_via_zero_amount() {
        let i = Instr::mov(
            Reg::R0,
            Operand2::Reg(Reg::R1, Shift::Imm(ShiftKind::Lsr, 32)),
        );
        let w = i.encode();
        assert_eq!((w >> 7) & 0x1f, 0, "LSR #32 encodes amount 0");
        assert_eq!(Instr::decode(w).unwrap(), i);
    }

    #[test]
    fn negative_displacement_round_trips() {
        let i = Instr::mem(MemOp::Ldrh, Reg::R0, Reg::R1, -40);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
        let i = Instr::mem(MemOp::Str, Reg::R3, Reg::SP, -4092);
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }
}
