//! AR32 instruction encoding, following the classic ARM 32-bit layouts.

use crate::{AddrOffset, Index, Instr, MemOp, Operand2, Shift};

fn encode_shift_fields(shift: Shift) -> u32 {
    match shift {
        Shift::Imm(kind, amount) => {
            debug_assert!(shift.is_valid(), "invalid shift {shift:?}");
            // LSR/ASR #32 are encoded with a zero amount field.
            let field = if amount == 32 { 0 } else { u32::from(amount) };
            (field << 7) | (u32::from(kind.bits()) << 5)
        }
        Shift::Reg(kind, rs) => {
            (u32::from(rs.index()) << 8) | (u32::from(kind.bits()) << 5) | (1 << 4)
        }
    }
}

impl Instr {
    /// Encodes the instruction to its 32-bit machine word.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a field is out of range — e.g. a branch
    /// offset beyond 24 bits or an invalid displacement. The kernel compiler
    /// and the translator only construct in-range instructions; the encoder
    /// asserts rather than silently truncating.
    #[must_use]
    pub fn encode(&self) -> u32 {
        let cond = u32::from(self.cond().bits()) << 28;
        match *self {
            Instr::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
                ..
            } => {
                let s = u32::from(set_flags) << 20;
                let base = cond
                    | (u32::from(op.bits()) << 21)
                    | s
                    | (u32::from(rn.index()) << 16)
                    | (u32::from(rd.index()) << 12);
                match op2 {
                    Operand2::Imm(imm) => {
                        base | (1 << 25) | (u32::from(imm.rot()) << 8) | u32::from(imm.imm8())
                    }
                    Operand2::Reg(rm, shift) => {
                        base | encode_shift_fields(shift) | u32::from(rm.index())
                    }
                }
            }
            Instr::Mul {
                set_flags,
                rd,
                rm,
                rs,
                acc,
                ..
            } => {
                let a = u32::from(acc.is_some()) << 21;
                let rn = acc.map_or(0, |r| u32::from(r.index())) << 12;
                cond | a
                    | (u32::from(set_flags) << 20)
                    | (u32::from(rd.index()) << 16)
                    | rn
                    | (u32::from(rs.index()) << 8)
                    | (0b1001 << 4)
                    | u32::from(rm.index())
            }
            Instr::Mem {
                op,
                rd,
                rn,
                offset,
                index,
                ..
            } => {
                debug_assert!(
                    offset.is_valid_for(op),
                    "offset {offset:?} invalid for {op}"
                );
                let (p, w) = match index {
                    Index::PreNoWb => (1u32, 0u32),
                    Index::PreWb => (1, 1),
                    Index::Post => (0, 0),
                };
                let l = u32::from(op.is_load());
                let regs = (u32::from(rn.index()) << 16) | (u32::from(rd.index()) << 12);
                if op.is_halfword_form() {
                    // Halfword / signed-byte transfer form.
                    let (s, h) = match op {
                        MemOp::Ldrh | MemOp::Strh => (0u32, 1u32),
                        MemOp::Ldrsb => (1, 0),
                        MemOp::Ldrsh => (1, 1),
                        _ => unreachable!(),
                    };
                    let (u, i, off_hi, off_lo) = match offset {
                        AddrOffset::Imm(d) => {
                            let mag = d.unsigned_abs();
                            (u32::from(d >= 0), 1u32, mag >> 4, mag & 0xf)
                        }
                        AddrOffset::Reg { rm, subtract, .. } => {
                            (u32::from(!subtract), 0, 0, u32::from(rm.index()))
                        }
                    };
                    cond | (p << 24)
                        | (u << 23)
                        | (i << 22)
                        | (w << 21)
                        | (l << 20)
                        | regs
                        | (off_hi << 8)
                        | (1 << 7)
                        | (s << 6)
                        | (h << 5)
                        | (1 << 4)
                        | off_lo
                } else {
                    // Single data transfer (word / unsigned byte).
                    let b = u32::from(matches!(op, MemOp::Ldrb | MemOp::Strb));
                    let (u, i, off) = match offset {
                        AddrOffset::Imm(d) => (u32::from(d >= 0), 0u32, d.unsigned_abs()),
                        AddrOffset::Reg {
                            rm,
                            shift,
                            subtract,
                        } => (
                            u32::from(!subtract),
                            1,
                            encode_shift_fields(shift) | u32::from(rm.index()),
                        ),
                    };
                    cond | (0b01 << 26)
                        | (i << 25)
                        | (p << 24)
                        | (u << 23)
                        | (b << 22)
                        | (w << 21)
                        | (l << 20)
                        | regs
                        | off
                }
            }
            Instr::Branch { link, offset, .. } => {
                debug_assert!(
                    (-(1 << 23)..(1 << 23)).contains(&offset),
                    "branch offset {offset} exceeds 24 bits"
                );
                cond | (0b101 << 25) | (u32::from(link) << 24) | ((offset as u32) & 0x00ff_ffff)
            }
            Instr::Swi { imm, .. } => {
                debug_assert!(imm < (1 << 24), "swi number {imm} exceeds 24 bits");
                cond | (0b1111 << 24) | imm
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, DpOp, Reg, RotImm};

    #[test]
    fn known_encodings() {
        // add r0, r1, #4  ->  cond=AL(0xE), I=1, op=ADD(0100), rn=1, rd=0.
        let add = Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(4).unwrap());
        assert_eq!(add.encode(), 0xe281_0004);

        // mov r2, r3 -> 0xe1a02003
        let mov = Instr::mov(Reg::R2, Operand2::reg(Reg::R3));
        assert_eq!(mov.encode(), 0xe1a0_2003);

        // cmp r1, #0 -> 0xe3510000
        let cmp = Instr::cmp(Reg::R1, Operand2::imm(0).unwrap());
        assert_eq!(cmp.encode(), 0xe351_0000);

        // ldr r0, [r1, #8] -> 0xe5910008
        let ldr = Instr::mem(MemOp::Ldr, Reg::R0, Reg::R1, 8);
        assert_eq!(ldr.encode(), 0xe591_0008);

        // str r0, [r1, #-4] -> 0xe5010004 (U=0)
        let str_ = Instr::mem(MemOp::Str, Reg::R0, Reg::R1, -4);
        assert_eq!(str_.encode(), 0xe501_0004);

        // b +8 (offset field 2) -> 0xea000002
        assert_eq!(Instr::b(2).encode(), 0xea00_0002);

        // bl backwards -> offset sign bits fill the 24-bit field.
        let bl = Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: -2,
        };
        assert_eq!(bl.encode(), 0xebff_fffe);

        // mul r0, r1, r2 -> 0xe0000291
        assert_eq!(Instr::mul(Reg::R0, Reg::R1, Reg::R2).encode(), 0xe000_0291);

        // swi #17 -> 0xef000011
        let swi = Instr::Swi {
            cond: Cond::Al,
            imm: 17,
        };
        assert_eq!(swi.encode(), 0xef00_0011);
    }

    #[test]
    fn rotated_immediate_fields() {
        let imm = RotImm::encode(0xff00).unwrap();
        let add = Instr::dp(DpOp::Add, Reg::R0, Reg::R0, Operand2::Imm(imm));
        let word = add.encode();
        assert_eq!(word & 0xff, u32::from(imm.imm8()));
        assert_eq!((word >> 8) & 0xf, u32::from(imm.rot()));
    }

    #[test]
    fn conditional_encodes_in_top_nibble() {
        let i = Instr::b(0).with_cond(Cond::Ne);
        assert_eq!(i.encode() >> 28, 1);
    }
}
