//! # fits-isa — the AR32 and T16 instruction sets
//!
//! This crate defines the two *fixed* instruction sets used by the PowerFITS
//! reproduction:
//!
//! * **AR32** — a 32-bit ARM-flavoured RISC (condition codes, the barrel
//!   shifter ["operand2"], rotated 8-bit immediates, load/store with
//!   displacement, `MUL`/`MLA`, `SWI`). It plays the role of the native ARM
//!   ISA the paper compiles MiBench to. Encodings follow the classic ARM
//!   32-bit layouts so encode/decode round-trips are meaningful.
//! * **T16** — a Thumb-like 16-bit subset (8 visible registers, 2-address
//!   operations, 8-bit immediates) used only for the code-size baseline of
//!   the paper's Figure 5.
//!
//! The synthesized FITS instruction set itself is *not* defined here — it is
//! produced per-application by [`fits-core`]'s synthesis pass. This crate
//! supplies the shared vocabulary (registers, ALU flag semantics, the
//! internal operation set) both executors are built on.
//!
//! ## Example
//!
//! ```
//! use fits_isa::{Instr, DpOp, Operand2, Reg, Cond};
//!
//! // ADD r0, r1, #42
//! let add = Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(42).unwrap());
//! let word = add.encode();
//! let back = Instr::decode(word).unwrap();
//! assert_eq!(add, back);
//! assert_eq!(back.to_string(), "add r0, r1, #42");
//! assert_eq!(back.cond(), Cond::Al);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod alu;
mod cond;
mod decode;
mod encode;
mod instr;
mod operand;
pub mod program;
mod reg;
pub mod spec;
pub mod thumb;

pub use cond::Cond;
pub use decode::{DecodeError, DecodeErrorKind};
pub use instr::{Instr, InstrClass};
pub use operand::{AddrOffset, DpOp, Index, MemOp, Operand2, RotImm, Shift, ShiftKind};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::Reg;
