use std::fmt;

use crate::Reg;

/// The sixteen ARM data-processing opcodes, in their 4-bit encoding order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum DpOp {
    /// Bitwise AND: `rd = rn & op2`.
    And = 0,
    /// Bitwise exclusive OR: `rd = rn ^ op2`.
    Eor = 1,
    /// Subtract: `rd = rn - op2`.
    Sub = 2,
    /// Reverse subtract: `rd = op2 - rn`.
    Rsb = 3,
    /// Add: `rd = rn + op2`.
    Add = 4,
    /// Add with carry: `rd = rn + op2 + C`.
    Adc = 5,
    /// Subtract with carry: `rd = rn - op2 - !C`.
    Sbc = 6,
    /// Reverse subtract with carry: `rd = op2 - rn - !C`.
    Rsc = 7,
    /// Test bits (AND, flags only).
    Tst = 8,
    /// Test equivalence (EOR, flags only).
    Teq = 9,
    /// Compare (SUB, flags only).
    Cmp = 10,
    /// Compare negative (ADD, flags only).
    Cmn = 11,
    /// Bitwise OR: `rd = rn | op2`.
    Orr = 12,
    /// Move: `rd = op2` (`rn` ignored).
    Mov = 13,
    /// Bit clear: `rd = rn & !op2`.
    Bic = 14,
    /// Move NOT: `rd = !op2` (`rn` ignored).
    Mvn = 15,
}

impl DpOp {
    /// All sixteen opcodes in encoding order.
    pub const ALL: [DpOp; 16] = [
        DpOp::And,
        DpOp::Eor,
        DpOp::Sub,
        DpOp::Rsb,
        DpOp::Add,
        DpOp::Adc,
        DpOp::Sbc,
        DpOp::Rsc,
        DpOp::Tst,
        DpOp::Teq,
        DpOp::Cmp,
        DpOp::Cmn,
        DpOp::Orr,
        DpOp::Mov,
        DpOp::Bic,
        DpOp::Mvn,
    ];

    /// Decodes a 4-bit opcode field.
    #[must_use]
    pub fn from_bits(bits: u8) -> DpOp {
        DpOp::ALL[usize::from(bits & 0xf)]
    }

    /// The 4-bit encoding.
    #[must_use]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Whether the op writes only flags (TST/TEQ/CMP/CMN): no destination.
    #[must_use]
    pub fn is_compare(self) -> bool {
        matches!(self, DpOp::Tst | DpOp::Teq | DpOp::Cmp | DpOp::Cmn)
    }

    /// Whether the op ignores its first source register (MOV/MVN).
    #[must_use]
    pub fn ignores_rn(self) -> bool {
        matches!(self, DpOp::Mov | DpOp::Mvn)
    }

    /// Whether the op is arithmetic (sets C/V from the adder) as opposed to
    /// logical (sets C from the shifter, leaves V).
    #[must_use]
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            DpOp::Sub
                | DpOp::Rsb
                | DpOp::Add
                | DpOp::Adc
                | DpOp::Sbc
                | DpOp::Rsc
                | DpOp::Cmp
                | DpOp::Cmn
        )
    }
}

impl fmt::Display for DpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DpOp::And => "and",
            DpOp::Eor => "eor",
            DpOp::Sub => "sub",
            DpOp::Rsb => "rsb",
            DpOp::Add => "add",
            DpOp::Adc => "adc",
            DpOp::Sbc => "sbc",
            DpOp::Rsc => "rsc",
            DpOp::Tst => "tst",
            DpOp::Teq => "teq",
            DpOp::Cmp => "cmp",
            DpOp::Cmn => "cmn",
            DpOp::Orr => "orr",
            DpOp::Mov => "mov",
            DpOp::Bic => "bic",
            DpOp::Mvn => "mvn",
        };
        f.write_str(s)
    }
}

/// A barrel-shifter operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl = 0,
    /// Logical shift right.
    Lsr = 1,
    /// Arithmetic shift right.
    Asr = 2,
    /// Rotate right.
    Ror = 3,
}

impl ShiftKind {
    /// Decodes the 2-bit shift-type field.
    #[must_use]
    pub fn from_bits(bits: u8) -> ShiftKind {
        match bits & 3 {
            0 => ShiftKind::Lsl,
            1 => ShiftKind::Lsr,
            2 => ShiftKind::Asr,
            _ => ShiftKind::Ror,
        }
    }

    /// The 2-bit encoding.
    #[must_use]
    pub fn bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for ShiftKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShiftKind::Lsl => "lsl",
            ShiftKind::Lsr => "lsr",
            ShiftKind::Asr => "asr",
            ShiftKind::Ror => "ror",
        };
        f.write_str(s)
    }
}

/// A barrel-shifter specification applied to a register operand.
///
/// Immediate amounts follow the ARM canonical ranges: `LSL` takes `0..=31`
/// (where 0 means "no shift"), `LSR`/`ASR` take `1..=32` (32 is encoded as a
/// zero amount field), and `ROR` takes `1..=31` (`ROR #0` would encode `RRX`,
/// which AR32 does not provide).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Shift {
    /// Shift by a constant amount.
    Imm(ShiftKind, u8),
    /// Shift by the low byte of a register.
    Reg(ShiftKind, Reg),
}

impl Shift {
    /// No shift at all (`LSL #0`).
    pub const NONE: Shift = Shift::Imm(ShiftKind::Lsl, 0);

    /// Validates the immediate amount ranges described on the type.
    #[must_use]
    pub fn is_valid(self) -> bool {
        match self {
            Shift::Imm(ShiftKind::Lsl, n) => n <= 31,
            Shift::Imm(ShiftKind::Lsr | ShiftKind::Asr, n) => (1..=32).contains(&n),
            Shift::Imm(ShiftKind::Ror, n) => (1..=31).contains(&n),
            Shift::Reg(..) => true,
        }
    }
}

impl fmt::Display for Shift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shift::Imm(ShiftKind::Lsl, 0) => Ok(()),
            Shift::Imm(kind, n) => write!(f, ", {kind} #{n}"),
            Shift::Reg(kind, r) => write!(f, ", {kind} {r}"),
        }
    }
}

/// An ARM "rotated immediate": an 8-bit value rotated right by `2 * rot`.
///
/// This is the only immediate form data-processing instructions accept, and
/// its limited expressiveness is exactly what the kernel compiler's constant
/// materializer and the FITS immediate-dictionary synthesis have to work
/// around.
///
/// ```
/// use fits_isa::RotImm;
/// assert_eq!(RotImm::encode(0xff00).unwrap().value(), 0xff00);
/// assert!(RotImm::encode(0x1234_5678).is_none());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RotImm {
    imm8: u8,
    rot: u8,
}

impl RotImm {
    /// Builds from raw fields. `rot` is the 4-bit rotation count (the value
    /// is rotated right by `2 * rot`).
    ///
    /// # Panics
    ///
    /// Panics if `rot > 15`.
    #[must_use]
    pub fn from_fields(imm8: u8, rot: u8) -> RotImm {
        assert!(rot < 16, "rotation field {rot} out of range");
        RotImm { imm8, rot }
    }

    /// Tries to encode an arbitrary 32-bit constant, choosing the smallest
    /// rotation that works (the canonical ARM assembler behaviour). Returns
    /// `None` if the constant is not expressible.
    #[must_use]
    pub fn encode(value: u32) -> Option<RotImm> {
        for rot in 0..16u8 {
            let rotated = value.rotate_left(u32::from(rot) * 2);
            if rotated <= 0xff {
                return Some(RotImm {
                    imm8: rotated as u8,
                    rot,
                });
            }
        }
        None
    }

    /// The 32-bit value this immediate denotes.
    #[must_use]
    pub fn value(self) -> u32 {
        u32::from(self.imm8).rotate_right(u32::from(self.rot) * 2)
    }

    /// The raw 8-bit immediate field.
    #[must_use]
    pub fn imm8(self) -> u8 {
        self.imm8
    }

    /// The raw 4-bit rotation field.
    #[must_use]
    pub fn rot(self) -> u8 {
        self.rot
    }

    /// Shifter carry-out for this immediate given the incoming carry: ARM
    /// leaves C unchanged when the rotation is zero, otherwise C becomes
    /// bit 31 of the value.
    #[must_use]
    pub fn carry_out(self, carry_in: bool) -> bool {
        if self.rot == 0 {
            carry_in
        } else {
            self.value() >> 31 != 0
        }
    }
}

/// The flexible second operand of a data-processing instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand2 {
    /// A rotated 8-bit immediate.
    Imm(RotImm),
    /// A register, optionally passed through the barrel shifter.
    Reg(Reg, Shift),
}

impl Operand2 {
    /// Convenience: encode a constant, if expressible.
    #[must_use]
    pub fn imm(value: u32) -> Option<Operand2> {
        RotImm::encode(value).map(Operand2::Imm)
    }

    /// Convenience: a plain (unshifted) register operand.
    #[must_use]
    pub fn reg(r: Reg) -> Operand2 {
        Operand2::Reg(r, Shift::NONE)
    }

    /// The registers this operand reads.
    pub fn reads(&self) -> impl Iterator<Item = Reg> + '_ {
        let (a, b) = match self {
            Operand2::Imm(_) => (None, None),
            Operand2::Reg(r, Shift::Reg(_, rs)) => (Some(*r), Some(*rs)),
            Operand2::Reg(r, _) => (Some(*r), None),
        };
        a.into_iter().chain(b)
    }
}

impl fmt::Display for Operand2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand2::Imm(imm) => write!(f, "#{}", imm.value()),
            Operand2::Reg(r, shift) => write!(f, "{r}{shift}"),
        }
    }
}

/// A load/store operation kind (size, direction and extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemOp {
    /// Load 32-bit word.
    Ldr,
    /// Store 32-bit word.
    Str,
    /// Load byte, zero-extended.
    Ldrb,
    /// Store byte.
    Strb,
    /// Load halfword, zero-extended.
    Ldrh,
    /// Store halfword.
    Strh,
    /// Load byte, sign-extended.
    Ldrsb,
    /// Load halfword, sign-extended.
    Ldrsh,
}

impl MemOp {
    /// Whether this operation reads memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        !matches!(self, MemOp::Str | MemOp::Strb | MemOp::Strh)
    }

    /// Access width in bytes.
    #[must_use]
    pub fn size(self) -> u32 {
        match self {
            MemOp::Ldr | MemOp::Str => 4,
            MemOp::Ldrh | MemOp::Strh | MemOp::Ldrsh => 2,
            MemOp::Ldrb | MemOp::Strb | MemOp::Ldrsb => 1,
        }
    }

    /// Whether this op uses the ARM halfword/signed transfer encoding
    /// (as opposed to the single-data-transfer word/byte encoding).
    #[must_use]
    pub fn is_halfword_form(self) -> bool {
        matches!(
            self,
            MemOp::Ldrh | MemOp::Strh | MemOp::Ldrsb | MemOp::Ldrsh
        )
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemOp::Ldr => "ldr",
            MemOp::Str => "str",
            MemOp::Ldrb => "ldrb",
            MemOp::Strb => "strb",
            MemOp::Ldrh => "ldrh",
            MemOp::Strh => "strh",
            MemOp::Ldrsb => "ldrsb",
            MemOp::Ldrsh => "ldrsh",
        };
        f.write_str(s)
    }
}

/// The offset part of a load/store address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddrOffset {
    /// A signed immediate displacement. Word/byte transfers accept
    /// `-4095..=4095`; halfword-form transfers accept `-255..=255`.
    Imm(i32),
    /// A register offset, added or subtracted, optionally shifted
    /// (immediate shifts only; halfword-form transfers take no shift).
    Reg {
        /// The offset register.
        rm: Reg,
        /// Shift applied to `rm` (must be an immediate shift).
        shift: Shift,
        /// `true` to subtract the offset instead of adding it.
        subtract: bool,
    },
}

impl AddrOffset {
    /// A zero displacement.
    pub const ZERO: AddrOffset = AddrOffset::Imm(0);

    /// Checks the displacement/shift limits for the given operation.
    #[must_use]
    pub fn is_valid_for(self, op: MemOp) -> bool {
        match self {
            AddrOffset::Imm(d) => {
                let limit = if op.is_halfword_form() { 255 } else { 4095 };
                (-limit..=limit).contains(&d)
            }
            AddrOffset::Reg { shift, .. } => {
                if op.is_halfword_form() {
                    shift == Shift::NONE
                } else {
                    matches!(shift, Shift::Imm(..)) && shift.is_valid()
                }
            }
        }
    }
}

/// The indexing mode of a load/store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Index {
    /// Offset applied before the access; base unchanged.
    PreNoWb,
    /// Offset applied before the access; base updated (`!` writeback).
    PreWb,
    /// Base used as-is; offset applied to the base after the access.
    Post,
}

impl Index {
    /// Whether the base register is written back.
    #[must_use]
    pub fn writes_base(self) -> bool {
        !matches!(self, Index::PreNoWb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpop_bits_round_trip() {
        for op in DpOp::ALL {
            assert_eq!(DpOp::from_bits(op.bits()), op);
        }
    }

    #[test]
    fn compare_ops() {
        assert!(DpOp::Cmp.is_compare());
        assert!(DpOp::Tst.is_compare());
        assert!(!DpOp::Add.is_compare());
        assert!(DpOp::Mov.ignores_rn());
        assert!(!DpOp::Add.ignores_rn());
        assert!(DpOp::Add.is_arithmetic());
        assert!(!DpOp::Orr.is_arithmetic());
    }

    #[test]
    fn rot_imm_encodes_classic_values() {
        for v in [0u32, 1, 0xff, 0x100, 0xff00, 0xff00_0000, 0xf000_000f, 104] {
            let imm = RotImm::encode(v).unwrap_or_else(|| panic!("{v:#x} should encode"));
            assert_eq!(imm.value(), v, "{v:#x}");
        }
        assert!(RotImm::encode(0x101).is_none());
        assert!(RotImm::encode(0x1234_5678).is_none());
        assert!(RotImm::encode(0xffff_ffff).is_none());
    }

    #[test]
    fn rot_imm_prefers_smallest_rotation() {
        // 0xff is expressible with rot 0; ensure we pick it (canonical form).
        let imm = RotImm::encode(0xff).unwrap();
        assert_eq!(imm.rot(), 0);
        assert_eq!(imm.imm8(), 0xff);
    }

    #[test]
    fn rot_imm_carry_out() {
        let no_rot = RotImm::encode(0x80).unwrap();
        assert_eq!(no_rot.rot(), 0);
        assert!(no_rot.carry_out(true));
        assert!(!no_rot.carry_out(false));
        let high = RotImm::encode(0x8000_0000).unwrap();
        assert_ne!(high.rot(), 0);
        assert!(high.carry_out(false));
    }

    #[test]
    fn shift_validity() {
        assert!(Shift::Imm(ShiftKind::Lsl, 0).is_valid());
        assert!(Shift::Imm(ShiftKind::Lsl, 31).is_valid());
        assert!(!Shift::Imm(ShiftKind::Lsl, 32).is_valid());
        assert!(Shift::Imm(ShiftKind::Lsr, 32).is_valid());
        assert!(!Shift::Imm(ShiftKind::Lsr, 0).is_valid());
        assert!(!Shift::Imm(ShiftKind::Ror, 0).is_valid());
        assert!(Shift::Reg(ShiftKind::Asr, Reg::R3).is_valid());
    }

    #[test]
    fn addr_offset_limits() {
        assert!(AddrOffset::Imm(4095).is_valid_for(MemOp::Ldr));
        assert!(!AddrOffset::Imm(4096).is_valid_for(MemOp::Ldr));
        assert!(AddrOffset::Imm(-255).is_valid_for(MemOp::Ldrh));
        assert!(!AddrOffset::Imm(300).is_valid_for(MemOp::Ldrsh));
        let reg_off = AddrOffset::Reg {
            rm: Reg::R2,
            shift: Shift::Imm(ShiftKind::Lsl, 2),
            subtract: false,
        };
        assert!(reg_off.is_valid_for(MemOp::Ldr));
        assert!(!reg_off.is_valid_for(MemOp::Ldrh));
        let by_reg = AddrOffset::Reg {
            rm: Reg::R2,
            shift: Shift::Reg(ShiftKind::Lsl, Reg::R3),
            subtract: false,
        };
        assert!(!by_reg.is_valid_for(MemOp::Ldr));
    }

    #[test]
    fn operand2_reads() {
        let imm = Operand2::imm(4).unwrap();
        assert_eq!(imm.reads().count(), 0);
        let reg = Operand2::reg(Reg::R1);
        assert_eq!(reg.reads().collect::<Vec<_>>(), vec![Reg::R1]);
        let shifted = Operand2::Reg(Reg::R1, Shift::Reg(ShiftKind::Lsl, Reg::R2));
        assert_eq!(shifted.reads().collect::<Vec<_>>(), vec![Reg::R1, Reg::R2]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Operand2::imm(42).unwrap().to_string(), "#42");
        assert_eq!(Operand2::reg(Reg::R7).to_string(), "r7");
        assert_eq!(
            Operand2::Reg(Reg::R1, Shift::Imm(ShiftKind::Lsr, 3)).to_string(),
            "r1, lsr #3"
        );
    }
}
