//! # fits-rng — a small deterministic PRNG
//!
//! Workload generation and randomized tests need a seeded, reproducible
//! random stream that is identical across machines and Rust versions. This
//! crate provides one with no external dependencies: a [`StdRng`] built on
//! SplitMix64 seeding and the xoshiro256** generator, with the familiar
//! `gen` / `gen_range` surface.
//!
//! The stream is part of the repository's test fixtures: changing the
//! algorithm changes every generated kernel input, so treat the generator
//! as frozen.
//!
//! ```
//! use fits_rng::StdRng;
//! let mut r = StdRng::seed_from_u64(7);
//! let a: u32 = r.gen();
//! let b = r.gen_range(0..10u32);
//! assert!(b < 10);
//! let mut r2 = StdRng::seed_from_u64(7);
//! let a2: u32 = r2.gen();
//! assert_eq!(a, a2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::ops::{Range, RangeInclusive};

/// A seeded deterministic generator (xoshiro256**).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator from a 64-bit seed. Equal seeds give equal
    /// streams, on every platform.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of a primitive type.
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform in `[0, bound)` without modulo bias (Lemire's method on the
    /// widened product).
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range called with an empty range");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            // Rejection is only ever needed in the biased low fringe.
            if low < bound && low < bound.wrapping_neg() % bound {
                continue;
            }
            return (m >> 64) as u64;
        }
    }
}

/// Types [`StdRng::gen`] can produce.
pub trait Random {
    /// Draws one uniformly random value.
    fn random(r: &mut StdRng) -> Self;
}

macro_rules! impl_random {
    ($($t:ty),+) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn random(r: &mut StdRng) -> $t {
                r.next_u64() as $t
            }
        }
    )+};
}

impl_random!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random(r: &mut StdRng) -> bool {
        r.next_u64() & 1 == 1
    }
}

/// Ranges [`StdRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniformly random element.
    fn sample(self, r: &mut StdRng) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, r: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = r.bounded(span);
                (self.start as i128 + i128::from(off)) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(self, r: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width inclusive range: every value is fair game.
                    return r.next_u64() as $t;
                }
                let off = r.bounded(span as u64);
                (start as i128 + i128::from(off)) as $t
            }
        }
    )+};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, r: &mut StdRng) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        // 53 uniform mantissa bits in [0, 1).
        let unit = (r.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = r.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0..=2usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn gen_covers_primitives() {
        let mut r = StdRng::seed_from_u64(5);
        let _: u8 = r.gen();
        let _: u32 = r.gen();
        let _: i32 = r.gen();
        let _: bool = r.gen();
        let _: usize = r.gen();
    }
}
