//! Execution of FITS binaries: implements `fits-sim`'s [`InstrSet`] on top
//! of the programmable decoder (stage 5 of the Figure-1 flow).
//!
//! Instructions are pre-decoded at load time through the [`DecoderConfig`]
//! — the software analogue of the FITS hardware's configured decode tables.
//! Each 16-bit instruction expands to the same internal micro-operation the
//! native executor uses ([`fits_isa::Instr`]), so both ISAs run on literally
//! the same datapath implementation; the only additions are wide dictionary
//! immediates (which cannot be expressed as rotated ARM immediates) and the
//! linking indirect jump.

use fits_isa::alu::{dp_eval, Flags};
use fits_isa::{Cond, DpOp, Instr, InstrClass, MemOp, Operand2, Reg, Shift, ShiftKind, TEXT_BASE};
use fits_sim::{ExecCtx, InstrSet, MemAccess, SimError, StepOutcome};

use crate::decoder::{DecoderConfig, Layout, MicroOp};
use crate::translate::{unpack, FitsProgram};

/// A pre-decoded FITS instruction.
#[derive(Clone, Copy, Debug)]
pub enum FitsOp {
    /// Expressible directly as an internal AR32 operation.
    Plain(Instr),
    /// Data-processing with a full-width dictionary immediate. The carry
    /// behaviour of flag-setting logical forms matches an unrotated ARM
    /// immediate (C preserved); the translator guarantees no other form is
    /// emitted.
    WideImm {
        /// Operation.
        op: DpOp,
        /// Update flags.
        set_flags: bool,
        /// Destination (ignored for compares).
        rd: Reg,
        /// First operand (same as `rd` for two-address forms).
        rn: Reg,
        /// The 32-bit immediate.
        imm: u32,
    },
    /// Memory access with a full-width dictionary displacement.
    WideMem {
        /// Access kind.
        op: MemOp,
        /// Data register.
        rd: Reg,
        /// Base register.
        rb: Reg,
        /// Signed displacement.
        disp: i32,
    },
    /// Linking indirect jump (`jalr`).
    Jalr(Reg),
}

/// The FITS instruction set: a pre-decoded binary plus its configuration.
#[derive(Clone, Debug)]
pub struct FitsSet {
    ops: Vec<FitsOp>,
    /// Per-op static metadata, parallel to `ops` (built once at load).
    metas: Vec<fits_sim::OpMeta>,
    /// Packed instruction words (two 16-bit instructions per 32-bit word)
    /// for fetch/toggle accounting.
    words: Vec<u32>,
    data: Vec<u8>,
    entry: usize,
}

/// Decoding failure when loading a FITS binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FitsDecodeError {
    /// Index of the undecodable instruction.
    pub index: usize,
    /// The offending word.
    pub word: u16,
    /// Description.
    pub what: String,
}

impl std::fmt::Display for FitsDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot decode FITS word {:#06x} at {}: {}",
            self.word, self.index, self.what
        )
    }
}

impl std::error::Error for FitsDecodeError {}

fn sign_extend(v: u16, w: u8) -> i32 {
    let shift = 32 - u32::from(w);
    ((u32::from(v) << shift) as i32) >> shift
}

fn decode_one(config: &DecoderConfig, word: u16, index: usize) -> Result<FitsOp, FitsDecodeError> {
    let entry = config.match_word(word).ok_or_else(|| FitsDecodeError {
        index,
        word,
        what: "no opcode prefix matches".to_string(),
    })?;
    let r = config.regs.field_bits;
    let f = unpack(entry, word, r);
    let reg = |i: usize| config.regs.phys(f[i]);
    let err = |what: &str| FitsDecodeError {
        index,
        word,
        what: what.to_string(),
    };
    let dict = |values: &[u32], idx: u16| -> Result<u32, FitsDecodeError> {
        values
            .get(idx as usize)
            .copied()
            .ok_or_else(|| err("dictionary index out of range"))
    };

    let op = match (entry.micro, entry.layout) {
        (MicroOp::Dp3 { op, set_flags }, Layout::R3) => FitsOp::Plain(Instr::Dp {
            cond: Cond::Al,
            op,
            set_flags,
            rd: reg(0),
            rn: reg(1),
            op2: Operand2::reg(reg(2)),
        }),
        // Figure 2's Operate format with OPRD as an immediate: 3-address
        // with a short literal or a dictionary value.
        (MicroOp::Dp3 { op, set_flags }, Layout::RRImm { .. }) => {
            let value = u32::from(f[2]);
            match Operand2::imm(value) {
                Some(op2) => FitsOp::Plain(Instr::Dp {
                    cond: Cond::Al,
                    op,
                    set_flags,
                    rd: reg(0),
                    rn: reg(1),
                    op2,
                }),
                None => FitsOp::WideImm {
                    op,
                    set_flags,
                    rd: reg(0),
                    rn: reg(1),
                    imm: value,
                },
            }
        }
        (MicroOp::Dp3 { op, set_flags }, Layout::RRDict { .. }) => FitsOp::WideImm {
            op,
            set_flags,
            rd: reg(0),
            rn: reg(1),
            imm: dict(&config.dicts.operate, f[2])?,
        },
        (MicroOp::Dp2Reg { op, set_flags }, Layout::R2) => FitsOp::Plain(Instr::Dp {
            cond: Cond::Al,
            op,
            set_flags,
            rd: reg(0),
            rn: reg(0),
            op2: Operand2::reg(reg(1)),
        }),
        (MicroOp::Dp2Imm { op, set_flags }, Layout::R2Imm { .. }) => {
            let value = u32::from(f[1]);
            match Operand2::imm(value) {
                Some(op2) => FitsOp::Plain(Instr::Dp {
                    cond: Cond::Al,
                    op,
                    set_flags,
                    rd: reg(0),
                    rn: reg(0),
                    op2,
                }),
                None => FitsOp::WideImm {
                    op,
                    set_flags,
                    rd: reg(0),
                    rn: reg(0),
                    imm: value,
                },
            }
        }
        (MicroOp::Dp2Imm { op, set_flags }, Layout::R2Dict { .. }) => FitsOp::WideImm {
            op,
            set_flags,
            rd: reg(0),
            rn: reg(0),
            imm: dict(&config.dicts.operate, f[1])?,
        },
        (MicroOp::ShiftImm { kind, set_flags }, Layout::RRImm { .. }) => {
            let amount = f[2] as u8;
            FitsOp::Plain(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                set_flags,
                rd: reg(0),
                rn: reg(0),
                op2: Operand2::Reg(reg(1), shift_of(kind, amount).map_err(&err)?),
            })
        }
        (MicroOp::ShiftImm { kind, set_flags }, Layout::RRDict { .. }) => {
            let amount = dict(&config.dicts.shift, f[2])? as u8;
            FitsOp::Plain(Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                set_flags,
                rd: reg(0),
                rn: reg(0),
                op2: Operand2::Reg(reg(1), shift_of(kind, amount).map_err(&err)?),
            })
        }
        (MicroOp::ShiftReg { kind, set_flags }, Layout::R2) => FitsOp::Plain(Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            set_flags,
            rd: reg(0),
            rn: reg(0),
            op2: Operand2::Reg(reg(0), Shift::Reg(kind, reg(1))),
        }),
        (MicroOp::CmpReg { op }, Layout::R2) => FitsOp::Plain(Instr::Dp {
            cond: Cond::Al,
            op,
            set_flags: true,
            rd: Reg::R0,
            rn: reg(0),
            op2: Operand2::reg(reg(1)),
        }),
        (MicroOp::CmpImm { op }, Layout::R2Imm { .. }) => {
            let value = u32::from(f[1]);
            match Operand2::imm(value) {
                Some(op2) => FitsOp::Plain(Instr::Dp {
                    cond: Cond::Al,
                    op,
                    set_flags: true,
                    rd: Reg::R0,
                    rn: reg(0),
                    op2,
                }),
                None => FitsOp::WideImm {
                    op,
                    set_flags: true,
                    rd: Reg::R0,
                    rn: reg(0),
                    imm: value,
                },
            }
        }
        (MicroOp::CmpImm { op }, Layout::R2Dict { .. }) => FitsOp::WideImm {
            op,
            set_flags: true,
            rd: Reg::R0,
            rn: reg(0),
            imm: dict(&config.dicts.operate, f[1])?,
        },
        (MicroOp::Mul3, Layout::R3) => FitsOp::Plain(Instr::Mul {
            cond: Cond::Al,
            set_flags: false,
            rd: reg(0),
            rm: reg(1),
            rs: reg(2),
            acc: None,
        }),
        (MicroOp::Mem { op }, Layout::MemImm { w }) => {
            let disp = match op.size() {
                1 => sign_extend(f[2], w.max(1)),
                s => (u32::from(f[2]) * s) as i32,
            };
            FitsOp::Plain(Instr::mem(op, reg(0), reg(1), disp))
        }
        (MicroOp::Mem { op }, Layout::MemDict { .. }) => FitsOp::WideMem {
            op,
            rd: reg(0),
            rb: reg(1),
            disp: dict(&config.dicts.mem_disp, f[2])? as i32,
        },
        (MicroOp::Branch { cond, link }, Layout::Br { w }) => FitsOp::Plain(Instr::Branch {
            cond,
            link,
            offset: sign_extend(f[0], w),
        }),
        (MicroOp::BranchReg { link: false }, Layout::R1) => {
            FitsOp::Plain(Instr::mov(Reg::PC, Operand2::reg(reg(0))))
        }
        (MicroOp::BranchReg { link: true }, Layout::R1) => FitsOp::Jalr(reg(0)),
        (MicroOp::PredMovImm { cond }, Layout::R2Imm { .. }) => {
            let op2 = Operand2::imm(u32::from(f[1])).ok_or_else(|| err("predicated imm"))?;
            FitsOp::Plain(Instr::Dp {
                cond,
                op: DpOp::Mov,
                set_flags: false,
                rd: reg(0),
                rn: reg(0),
                op2,
            })
        }
        (MicroOp::PredMovReg { cond }, Layout::R2) => FitsOp::Plain(Instr::Dp {
            cond,
            op: DpOp::Mov,
            set_flags: false,
            rd: reg(0),
            rn: reg(0),
            op2: Operand2::reg(reg(1)),
        }),
        (MicroOp::LoadTarget, Layout::R2Dict { .. }) => FitsOp::WideImm {
            op: DpOp::Mov,
            set_flags: false,
            rd: reg(0),
            rn: reg(0),
            imm: dict(&config.dicts.target, f[1])?,
        },
        (MicroOp::Swi, Layout::Trap { .. }) => FitsOp::Plain(Instr::Swi {
            cond: Cond::Al,
            imm: u32::from(f[0]),
        }),
        (micro, layout) => {
            return Err(err(&format!(
                "inconsistent micro/layout pair {micro:?} / {layout:?}"
            )))
        }
    };
    Ok(op)
}

fn shift_of(kind: ShiftKind, amount: u8) -> Result<Shift, &'static str> {
    let s = match (kind, amount) {
        (_, 0) => Shift::NONE,
        (ShiftKind::Lsl, 1..=31) => Shift::Imm(ShiftKind::Lsl, amount),
        (ShiftKind::Lsr | ShiftKind::Asr, 1..=32) => Shift::Imm(kind, amount),
        (ShiftKind::Ror, 1..=31) => Shift::Imm(ShiftKind::Ror, amount),
        _ => return Err("shift amount out of range"),
    };
    Ok(s)
}

/// Decodes one 16-bit FITS instruction word under a decoder configuration.
///
/// The public face of the programmable decoder, used by static analyses
/// (`fits-verify`) that inspect a binary without loading it into a machine.
///
/// # Errors
///
/// Returns [`FitsDecodeError`] when no opcode prefix matches, a dictionary
/// index is out of range, or the micro-op/layout pair is inconsistent.
pub fn decode_word(
    config: &DecoderConfig,
    word: u16,
    index: usize,
) -> Result<FitsOp, FitsDecodeError> {
    decode_one(config, word, index)
}

/// Register/flag metadata for a decoded FITS instruction, independent of
/// any loaded binary (the per-op part of [`InstrSet::describe`]).
#[must_use]
pub fn op_meta(op: &FitsOp) -> fits_sim::OpMeta {
    match op {
        FitsOp::Plain(i) => fits_sim::instr_meta(i),
        FitsOp::WideImm {
            op,
            set_flags,
            rd,
            rn,
            ..
        } => {
            let compare = op.is_compare();
            fits_sim::OpMeta::new(
                InstrClass::Operate,
                [(!op.ignores_rn()).then_some(*rn), None, None],
                [(!compare).then_some(*rd), None],
                *set_flags || compare,
                matches!(op, DpOp::Adc | DpOp::Sbc | DpOp::Rsc),
                false,
            )
        }
        FitsOp::WideMem { op, rd, rb, .. } => fits_sim::OpMeta::new(
            InstrClass::Memory,
            [Some(*rb), (!op.is_load()).then_some(*rd), None],
            [op.is_load().then_some(*rd), None],
            false,
            false,
            false,
        ),
        FitsOp::Jalr(ra) => fits_sim::OpMeta::new(
            InstrClass::Branch,
            [Some(*ra), None, None],
            [Some(Reg::LR), None],
            false,
            false,
            false,
        ),
    }
}

impl FitsSet {
    /// Pre-decodes a FITS binary.
    ///
    /// # Errors
    ///
    /// Returns [`FitsDecodeError`] if any word fails to decode under the
    /// binary's configuration (a translator/synthesis bug).
    pub fn load(program: &FitsProgram) -> Result<FitsSet, FitsDecodeError> {
        let mut ops = Vec::with_capacity(program.instrs.len());
        for (i, &word) in program.instrs.iter().enumerate() {
            ops.push(decode_one(&program.config, word, i)?);
        }
        // Pack pairs of 16-bit instructions into fetch words.
        let mut words = Vec::with_capacity(program.instrs.len() / 2 + 1);
        for pair in program.instrs.chunks(2) {
            let lo = u32::from(pair[0]);
            let hi = pair.get(1).map_or(0, |w| u32::from(*w));
            words.push(lo | (hi << 16));
        }
        Ok(FitsSet {
            metas: ops.iter().map(op_meta).collect(),
            ops,
            words,
            data: program.data.clone(),
            entry: program.entry,
        })
    }

    fn index_of(&self, pc: u32) -> Result<usize, SimError> {
        if pc < TEXT_BASE || !pc.is_multiple_of(2) {
            return Err(SimError::BadPc { pc });
        }
        let index = ((pc - TEXT_BASE) / 2) as usize;
        if index >= self.ops.len() {
            return Err(SimError::BadPc { pc });
        }
        Ok(index)
    }
}

impl InstrSet for FitsSet {
    type Op = FitsOp;

    fn entry_pc(&self) -> u32 {
        TEXT_BASE + (self.entry as u32) * 2
    }

    fn op_size(&self) -> u32 {
        2
    }

    fn initial_data(&self) -> &[u8] {
        &self.data
    }

    fn op_at(&self, pc: u32) -> Result<&FitsOp, SimError> {
        Ok(&self.ops[self.index_of(pc)?])
    }

    fn fetch_word(&self, word_addr: u32) -> u32 {
        if word_addr < TEXT_BASE || !word_addr.is_multiple_of(4) {
            return 0;
        }
        let idx = ((word_addr - TEXT_BASE) / 4) as usize;
        self.words.get(idx).copied().unwrap_or(0)
    }

    fn describe(&self, op: &FitsOp) -> fits_sim::OpMeta {
        op_meta(op)
    }

    fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn control_flow(&self, pc: u32, op: &FitsOp) -> fits_sim::OpControl {
        match op {
            // Plain micro-ops share the AR32 classifier at the 16-bit op
            // size (covers direct branches, `mov pc, r` and traps).
            FitsOp::Plain(i) => fits_sim::instr_control_flow(i, pc, 2),
            FitsOp::Jalr(_) => fits_sim::OpControl::Indirect,
            FitsOp::WideImm { .. } | FitsOp::WideMem { .. } => fits_sim::OpControl::Sequential,
        }
    }

    fn op_with_meta(&self, pc: u32) -> Result<(&FitsOp, &fits_sim::OpMeta), SimError> {
        let index = self.index_of(pc)?;
        Ok((&self.ops[index], &self.metas[index]))
    }

    fn execute(&self, op: &FitsOp, ctx: &mut ExecCtx<'_>) -> Result<StepOutcome, SimError> {
        match op {
            FitsOp::Plain(i) => fits_sim::execute_instr(i, ctx, 2),
            FitsOp::WideImm {
                op,
                set_flags,
                rd,
                rn,
                imm,
            } => {
                let a = if op.ignores_rn() {
                    0
                } else {
                    ctx.read_reg(*rn)
                };
                // Wide immediates behave like unrotated ARM immediates: the
                // shifter carry-out equals the carry-in.
                let r = dp_eval(*op, a, *imm, ctx.cpu.flags.c, ctx.cpu.flags);
                if *set_flags {
                    ctx.cpu.flags = r.flags;
                }
                if !op.is_compare() {
                    ctx.write_reg(*rd, r.value);
                }
                Ok(StepOutcome {
                    executed: true,
                    next_pc: ctx.pc.wrapping_add(2),
                    mem: None,
                    exit: None,
                    emit: None,
                    branch: None,
                    is_mul: false,
                })
            }
            FitsOp::WideMem { op, rd, rb, disp } => {
                let addr = ctx.read_reg(*rb).wrapping_add(*disp as u32);
                let size = op.size();
                let signed = matches!(op, MemOp::Ldrsb | MemOp::Ldrsh);
                let data = if op.is_load() {
                    let v = ctx.load(addr, size, signed)?;
                    ctx.write_reg(*rd, v);
                    v
                } else {
                    let v = ctx.read_reg(*rd);
                    ctx.store(addr, size, v)?;
                    v
                };
                Ok(StepOutcome {
                    executed: true,
                    next_pc: ctx.pc.wrapping_add(2),
                    mem: Some(MemAccess {
                        addr,
                        size,
                        is_load: op.is_load(),
                        data,
                    }),
                    exit: None,
                    emit: None,
                    branch: None,
                    is_mul: false,
                })
            }
            FitsOp::Jalr(ra) => {
                let target = ctx.read_reg(*ra);
                if !target.is_multiple_of(2) {
                    return Err(SimError::BadPc { pc: target });
                }
                ctx.write_reg(Reg::LR, ctx.pc.wrapping_add(2));
                Ok(StepOutcome {
                    executed: true,
                    next_pc: target,
                    mem: None,
                    exit: None,
                    emit: None,
                    branch: Some(fits_sim::BranchOutcome {
                        taken: true,
                        backward: target < ctx.pc,
                    }),
                    is_mul: false,
                })
            }
        }
    }
}

/// Convenience: decode flags used by tests.
#[must_use]
pub fn flags_of(ctx: &ExecCtx<'_>) -> Flags {
    ctx.cpu.flags
}

/// Renders a disassembly of a FITS binary under its own configuration:
/// address, raw halfword, opcode prefix and the decoded micro-operation.
///
/// # Errors
///
/// Fails if any word does not decode (a corrupt binary/config pair).
pub fn disassemble(program: &FitsProgram) -> Result<String, FitsDecodeError> {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, &word) in program.instrs.iter().enumerate() {
        let op = decode_one(&program.config, word, i)?;
        let entry = program.config.match_word(word).expect("decoded above");
        let pc = TEXT_BASE + (i as u32) * 2;
        let prefix = entry.code >> (16 - u16::from(entry.len));
        let marker = if i == program.entry { ">" } else { " " };
        let _ = writeln!(
            out,
            "{marker} {pc:#010x}: {word:04x}  [{prefix:0w$b}] {op:?}",
            w = entry.len as usize
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use crate::synth::{synthesize, SynthOptions};
    use crate::translate::translate;
    use fits_kernels::kernels::{Kernel, Scale};
    use fits_sim::Machine;

    fn run_fits(k: Kernel) -> (fits_sim::RunOutput, fits_sim::RunOutput) {
        let program = k.compile(Scale::test()).unwrap();
        let p = profile(&program).unwrap();
        let s = synthesize(&p, &SynthOptions::default());
        let t = translate(&program, &s.config).unwrap();
        let set = FitsSet::load(&t.fits).unwrap();
        let mut m = Machine::new(set);
        let fits_run = m.run().unwrap();
        (p.run.unwrap(), fits_run)
    }

    #[test]
    fn crc32_fits_binary_matches_arm() {
        let (arm, fits) = run_fits(Kernel::Crc32);
        assert_eq!(arm.exit_code, fits.exit_code);
        assert_eq!(arm.emitted, fits.emitted);
    }

    #[test]
    fn bitcount_fits_binary_matches_arm() {
        let (arm, fits) = run_fits(Kernel::Bitcount);
        assert_eq!(arm.exit_code, fits.exit_code);
        assert_eq!(arm.emitted, fits.emitted);
    }

    #[test]
    fn qsort_fits_binary_matches_arm() {
        let (arm, fits) = run_fits(Kernel::Qsort);
        assert_eq!(arm.exit_code, fits.exit_code);
        assert_eq!(arm.emitted, fits.emitted);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(0b1000, 4), -8);
        assert_eq!(sign_extend(0x3ff, 10), -1);
        assert_eq!(sign_extend(0x1ff, 10), 511);
    }
}
