//! Instruction-set synthesis (stage 2 of the Figure-1 flow).
//!
//! Builds a [`DecoderConfig`] from a [`Profile`] in three tiers (§3.3):
//!
//! * **BIS** — operations present across all applications (moves, add,
//!   compares, the branches the program uses, loads/stores, traps).
//! * **SIS** — the glue that keeps the set complete: constant construction
//!   (`movi`/`ori`/`lsli`), dictionary moves, indirect jumps with and
//!   without link (far calls go through the target dictionary).
//! * **AIS** — application-specific upgrades chosen by a greedy
//!   utilization-driven optimizer: 3-operand forms for operations whose
//!   uses aren't 2-address compatible, wider literal/displacement fields,
//!   dictionary immediates, predicated moves.
//!
//! The encoding is a **prefix-free variable-length opcode space**: an
//! opcode paired with `b` operand bits occupies `2^b` units of the 2^16
//! instruction space (the Kraft budget). The optimizer greedily spends that
//! budget where the profile says dynamic 1-to-1 coverage is bought
//! cheapest; canonical prefix codes are then assigned, optionally
//! Gray-reordered within each length class to reduce expected fetch-word
//! toggling (the encoding optimization §3.1 alludes to).

use std::collections::{BTreeMap, HashMap};

use fits_isa::{Cond, DpOp, MemOp, ShiftKind};

use crate::decoder::{DecoderConfig, Dictionaries, Layout, MicroOp, OpcodeEntry, RegMap, Tier};
use crate::profile::{signed_bits, unsigned_bits, OpKey, Profile};

/// Synthesis options (the ablation knobs).
#[derive(Clone, Debug)]
pub struct SynthOptions {
    /// Gray-reorder opcode values within each length class to reduce
    /// expected fetch toggling.
    pub toggle_aware: bool,
    /// Register-field width: 4 (full window) or 3 (8-register window; used
    /// by the ablation study — programs touching more registers will show
    /// mapping failures).
    pub reg_bits: u8,
    /// Fraction of the 2^16 opcode space the optimizer may spend (1.0 =
    /// whole space). Lower budgets model sharing the space across several
    /// resident applications.
    pub space_budget: f64,
    /// Maximum dictionary index width the optimizer may request.
    pub max_dict_bits: u8,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            toggle_aware: true,
            reg_bits: 4,
            space_budget: 1.0,
            max_dict_bits: 6,
        }
    }
}

/// Entries reserved in the operate dictionary for values discovered during
/// translation (far-branch targets, overflow constants).
pub const RESERVED_DICT_SLOTS: usize = 8;

/// A selected opcode before code assignment.
#[derive(Clone, Debug)]
struct Selected {
    micro: MicroOp,
    layout: Layout,
    tier: Tier,
    /// Dynamic weight (for toggle-aware ordering).
    weight: u64,
}

/// Discriminates layout kinds so a micro-op can hold at most one literal
/// and one dictionary variant simultaneously.
fn layout_kind(l: Layout) -> u8 {
    match l {
        Layout::R3 => 0,
        Layout::R2 => 1,
        Layout::R2Imm { .. } => 2,
        Layout::R2Dict { .. } => 3,
        Layout::RRImm { .. } => 4,
        Layout::RRDict { .. } => 5,
        Layout::MemImm { .. } => 6,
        Layout::MemDict { .. } => 7,
        Layout::Br { .. } => 8,
        Layout::R1 => 9,
        Layout::Trap { .. } => 10,
    }
}

type SelKey = (MicroOp, u8);

/// The synthesis result.
#[derive(Clone, Debug)]
pub struct Synthesis {
    /// The programmable-decoder configuration.
    pub config: DecoderConfig,
    /// Human-readable synthesis report.
    pub report: SynthReport,
}

/// Diagnostics from the synthesis run.
#[derive(Clone, Debug, Default)]
pub struct SynthReport {
    /// Opcode-space units used, of 65536.
    pub space_used: u64,
    /// Number of AIS upgrades applied.
    pub upgrades: usize,
    /// Predicted average FITS instructions per ARM instruction.
    pub predicted_expansion: f64,
}

// ---------------------------------------------------------------------------
// Coverage precomputation
// ---------------------------------------------------------------------------

/// Per-family coverage tables used by the cost model.
#[derive(Clone, Debug, Default)]
struct FamilyData {
    dyn_: u64,
    /// 2-address compatibility rate (1.0 where not applicable).
    eq_rate: f64,
    /// Literal-field coverage per width 0..=16.
    lit_cov: [f64; 17],
    /// Dictionary coverage per index width 0..=16.
    dict_cov: [f64; 17],
}

fn rank_map(values: &[(u32, crate::profile::Stat)]) -> HashMap<u32, usize> {
    values
        .iter()
        .enumerate()
        .map(|(i, (v, _))| (*v, i))
        .collect()
}

fn build_family_data(profile: &Profile, opts: &SynthOptions) -> BTreeMap<OpKey, FamilyData> {
    // Global category dictionaries, by dynamic weight.
    let mut operate_all = crate::profile::ValueHist::default();
    for hist in profile.operate_imms.values() {
        for (v, s) in hist.by_dynamic_weight() {
            for _ in 0..s.stat {
                // merge preserving both weights
            }
            operate_all.record_weighted(v, s);
        }
    }
    let operate_rank = rank_map(&operate_all.by_dynamic_weight());
    let mut mem_all = crate::profile::ValueHist::default();
    for hist in profile.mem_disps.values() {
        for (v, s) in hist.by_dynamic_weight() {
            mem_all.record_weighted(v, s);
        }
    }
    let mem_rank = rank_map(&mem_all.by_dynamic_weight());
    let mut shift_all = crate::profile::ValueHist::default();
    for hist in profile.shift_amounts.values() {
        for (v, s) in hist.by_dynamic_weight() {
            shift_all.record_weighted(v, s);
        }
    }
    let shift_rank = rank_map(&shift_all.by_dynamic_weight());

    let mut out = BTreeMap::new();
    for (key, stat) in &profile.families {
        let mut fd = FamilyData {
            dyn_: stat.dyn_,
            eq_rate: 1.0,
            ..FamilyData::default()
        };
        match key {
            OpKey::DpReg(op, _) => {
                fd.eq_rate = if op.ignores_rn() {
                    1.0
                } else {
                    profile.two_address_rate(*key)
                };
            }
            OpKey::DpImm(op, _) => {
                fd.eq_rate = if op.ignores_rn() {
                    1.0
                } else {
                    profile.two_address_rate(*key)
                };
                if let Some(hist) = profile.operate_imms.get(key) {
                    let total = hist.total_dyn().max(1) as f64;
                    for w in 0..=16u8 {
                        fd.lit_cov[w as usize] =
                            hist.dyn_where(|v| w > 0 && unsigned_bits(v) <= w) as f64 / total;
                        let cap = 1usize << w.min(opts.max_dict_bits);
                        let cap = cap.saturating_sub(if w >= 4 { RESERVED_DICT_SLOTS } else { 0 });
                        fd.dict_cov[w as usize] = hist
                            .dyn_where(|v| operate_rank.get(&v).is_some_and(|r| *r < cap))
                            as f64
                            / total;
                    }
                }
            }
            OpKey::CmpImm(_) => {
                if let Some(hist) = profile.operate_imms.get(key) {
                    let total = hist.total_dyn().max(1) as f64;
                    for w in 0..=16u8 {
                        fd.lit_cov[w as usize] =
                            hist.dyn_where(|v| w > 0 && unsigned_bits(v) <= w) as f64 / total;
                        let cap = 1usize << w.min(opts.max_dict_bits);
                        let cap = cap.saturating_sub(if w >= 4 { RESERVED_DICT_SLOTS } else { 0 });
                        fd.dict_cov[w as usize] = hist
                            .dyn_where(|v| operate_rank.get(&v).is_some_and(|r| *r < cap))
                            as f64
                            / total;
                    }
                }
            }
            OpKey::Mem(op) => {
                if let Some(hist) = profile.mem_disps.get(op) {
                    let total = hist.total_dyn().max(1) as f64;
                    let scale = disp_scale(*op);
                    for w in 0..=16u8 {
                        fd.lit_cov[w as usize] =
                            hist.dyn_where(|raw| mem_lit_fits(raw as i32, w, scale)) as f64 / total;
                        let cap = 1usize << w.min(opts.max_dict_bits);
                        fd.dict_cov[w as usize] =
                            hist.dyn_where(|v| mem_rank.get(&v).is_some_and(|r| *r < cap)) as f64
                                / total;
                    }
                }
            }
            OpKey::Branch(cond, link) => {
                if let Some(hist) = profile.branch_disps.get(&(*cond, *link)) {
                    let total = hist.total_dyn().max(1) as f64;
                    for w in 0..=16u8 {
                        // ARM word offsets become FITS instruction offsets
                        // with some inflation; leave 30% margin.
                        fd.lit_cov[w as usize] = hist.dyn_where(|raw| {
                            let inflated = (f64::from(raw as i32) * 1.3).abs().ceil() as i64;
                            w > 1 && inflated < (1i64 << (w - 1)) - 2
                        }) as f64
                            / total;
                    }
                }
            }
            OpKey::ShiftImm(kind, _) => {
                if let Some(hist) = profile.shift_amounts.get(kind) {
                    let total = hist.total_dyn().max(1) as f64;
                    for w in 0..=16u8 {
                        fd.lit_cov[w as usize] =
                            hist.dyn_where(|v| w > 0 && unsigned_bits(v) <= w) as f64 / total;
                        let cap = 1usize << w.min(opts.max_dict_bits);
                        fd.dict_cov[w as usize] =
                            hist.dyn_where(|v| shift_rank.get(&v).is_some_and(|r| *r < cap)) as f64
                                / total;
                    }
                }
            }
            OpKey::ShiftReg(..) => {
                fd.eq_rate = profile.two_address_rate(*key);
            }
            _ => {}
        }
        out.insert(*key, fd);
    }
    out
}

/// Field scaling for memory displacements: word/halfword fields are scaled
/// and unsigned; byte fields are signed and unscaled (matching the access
/// patterns compiled code produces).
fn disp_scale(op: MemOp) -> u32 {
    match op.size() {
        4 => 4,
        2 => 2,
        _ => 1,
    }
}

/// Whether a raw displacement fits a `w`-bit literal field under the
/// scaling rules above.
pub(crate) fn mem_lit_fits(disp: i32, w: u8, scale: u32) -> bool {
    if scale == 1 {
        w > 0 && signed_bits(disp) <= w
    } else {
        disp >= 0
            && (disp as u32).is_multiple_of(scale)
            && w > 0
            && unsigned_bits(disp as u32 / scale) <= w
    }
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// Average cost in FITS instructions to build an uncovered 32-bit constant
/// with the SIS `movi`/`lsli`/`ori` chain (empirical midpoint).
const CONST_BUILD_COST: f64 = 4.0;

fn selection_widths(
    sel: &BTreeMap<SelKey, Selected>,
    micro_pred: impl Fn(&MicroOp) -> bool,
) -> (Option<u8>, Option<u8>, bool, bool) {
    // (literal width, dict width, has 3-op, has 2-op-reg) for entries whose
    // micro satisfies the predicate.
    let mut lit = None;
    let mut dict = None;
    let mut has3 = false;
    let mut has2 = false;
    for s in sel.values() {
        if !micro_pred(&s.micro) {
            continue;
        }
        match s.layout {
            Layout::R2Imm { w } | Layout::RRImm { w } | Layout::MemImm { w } | Layout::Br { w } => {
                lit = Some(lit.map_or(w, |c: u8| c.max(w)));
            }
            Layout::R2Dict { w } | Layout::RRDict { w } | Layout::MemDict { w } => {
                dict = Some(dict.map_or(w, |c: u8| c.max(w)));
            }
            Layout::R3 => has3 = true,
            Layout::R2 => has2 = true,
            _ => {}
        }
    }
    (lit, dict, has3, has2)
}

/// Expected FITS instructions per dynamic use of `key` under `sel`.
fn family_cost(key: OpKey, fd: &FamilyData, sel: &BTreeMap<SelKey, Selected>) -> f64 {
    match key {
        OpKey::DpReg(op, sf) => {
            let (_, _, has3, has2) = selection_widths(
                sel,
                |m| matches!(m, MicroOp::Dp3{op: o, set_flags: s} | MicroOp::Dp2Reg{op: o, set_flags: s} if *o == op && *s == sf),
            );
            if has3 {
                1.0
            } else if has2 {
                2.0 - fd.eq_rate
            } else {
                3.0
            }
        }
        OpKey::DpImm(op, sf) => {
            let (lit, dict, _, _) = selection_widths(
                sel,
                |m| matches!(m, MicroOp::Dp2Imm{op: o, set_flags: s} if *o == op && *s == sf),
            );
            let (lit3, dict3, _, _) = selection_widths(
                sel,
                |m| matches!(m, MicroOp::Dp3{op: o, set_flags: s} if *o == op && *s == sf),
            );
            let lit_cov = lit.map_or(0.0, |w| fd.lit_cov[w as usize]);
            let dict_cov = dict.map_or(0.0, |w| fd.dict_cov[w as usize]);
            // 3-address immediate forms cover regardless of rd == rn.
            let cov3 = lit3
                .map_or(0.0, |w| fd.lit_cov[w as usize])
                .max(dict3.map_or(0.0, |w| fd.dict_cov[w as usize]));
            let covered2 = lit_cov.max(dict_cov);
            let eq = fd.eq_rate;
            // Best case per use: 3-addr hit (1), else 2-addr hit with
            // rd == rn (1), else 2-addr hit plus mov (2), else build.
            let one = cov3.max(covered2 * eq);
            let two = (covered2 - one).max(0.0);
            let rest = (1.0 - one - two).max(0.0);
            one + 2.0 * two + rest * (CONST_BUILD_COST + 1.0)
        }
        OpKey::CmpImm(op) => {
            let (lit, dict, _, has2) = selection_widths(
                sel,
                |m| matches!(m, MicroOp::CmpImm { op: o } | MicroOp::CmpReg { op: o } if *o == op),
            );
            let _ = has2;
            let lit_cov = lit.map_or(0.0, |w| fd.lit_cov[w as usize]);
            let dict_cov = dict.map_or(0.0, |w| fd.dict_cov[w as usize]);
            let covered = lit_cov.max(dict_cov);
            covered + (1.0 - covered) * (CONST_BUILD_COST + 1.0)
        }
        OpKey::Mem(op) => {
            let (lit, dict, _, _) =
                selection_widths(sel, |m| matches!(m, MicroOp::Mem { op: o } if *o == op));
            let lit_cov = lit.map_or(0.0, |w| fd.lit_cov[w as usize]);
            let dict_cov = dict.map_or(0.0, |w| fd.dict_cov[w as usize]);
            let covered = lit_cov.max(dict_cov);
            covered + (1.0 - covered) * 3.0
        }
        OpKey::Branch(cond, link) => {
            let (lit, _, _, _) = selection_widths(
                sel,
                |m| matches!(m, MicroOp::Branch { cond: c, link: l } if *c == cond && *l == link),
            );
            let cov = lit.map_or(0.0, |w| fd.lit_cov[w as usize]);
            cov + (1.0 - cov) * 2.0
        }
        OpKey::ShiftImm(kind, sf) => {
            let (lit, dict, _, _) = selection_widths(
                sel,
                |m| matches!(m, MicroOp::ShiftImm { kind: k, set_flags: s } if *k == kind && *s == sf),
            );
            let lit_cov = lit.map_or(0.0, |w| fd.lit_cov[w as usize]);
            let dict_cov = dict.map_or(0.0, |w| fd.dict_cov[w as usize]);
            let covered = lit_cov.max(dict_cov);
            covered + (1.0 - covered) * 3.0
        }
        OpKey::ShiftReg(..) => 2.0 - fd.eq_rate,
        OpKey::PredMov(cond, imm) => {
            let present = sel.values().any(|s| match (&s.micro, imm) {
                (MicroOp::PredMovImm { cond: c }, true) => *c == cond,
                (MicroOp::PredMovReg { cond: c }, false) => *c == cond,
                _ => false,
            });
            if present {
                1.0
            } else {
                2.0
            }
        }
        OpKey::Mul | OpKey::BranchReg | OpKey::Swi | OpKey::CmpReg(_) => 1.0,
    }
}

fn total_cost(families: &BTreeMap<OpKey, FamilyData>, sel: &BTreeMap<SelKey, Selected>) -> f64 {
    families
        .iter()
        .map(|(k, fd)| fd.dyn_ as f64 * family_cost(*k, fd, sel))
        .sum()
}

fn space_of(sel: &BTreeMap<SelKey, Selected>, r: u8) -> u64 {
    sel.values().map(|s| 1u64 << s.layout.operand_bits(r)).sum()
}

// ---------------------------------------------------------------------------
// Synthesis proper
// ---------------------------------------------------------------------------

fn insert(
    sel: &mut BTreeMap<SelKey, Selected>,
    micro: MicroOp,
    layout: Layout,
    tier: Tier,
    weight: u64,
) {
    let key = (micro, layout_kind(layout));
    let entry = Selected {
        micro,
        layout,
        tier,
        weight,
    };
    match sel.get(&key) {
        Some(existing) if layout.operand_bits(4) <= existing.layout.operand_bits(4) => {}
        _ => {
            sel.insert(key, entry);
        }
    }
}

/// Runs instruction-set synthesis.
#[must_use]
pub fn synthesize(profile: &Profile, opts: &SynthOptions) -> Synthesis {
    let r = opts.reg_bits;
    let families = build_family_data(profile, opts);
    let budget = (65536.0 * opts.space_budget) as u64;
    let mut sel: BTreeMap<SelKey, Selected> = BTreeMap::new();
    let weight = |k: &OpKey| profile.families.get(k).map_or(0, |s| s.dyn_);

    // ---- BIS: universal base operations -------------------------------
    insert(
        &mut sel,
        MicroOp::Dp2Reg {
            op: DpOp::Mov,
            set_flags: false,
        },
        Layout::R2,
        Tier::Bis,
        profile.dyn_total / 8,
    );
    insert(
        &mut sel,
        MicroOp::Dp2Reg {
            op: DpOp::Add,
            set_flags: false,
        },
        Layout::R2,
        Tier::Bis,
        0,
    );
    insert(&mut sel, MicroOp::Swi, Layout::Trap { w: 4 }, Tier::Bis, 1);
    // Every DP operation the program uses gets at least a 2-address form.
    for key in profile.families.keys() {
        match key {
            OpKey::DpReg(op, sf) | OpKey::DpImm(op, sf) => insert(
                &mut sel,
                MicroOp::Dp2Reg {
                    op: *op,
                    set_flags: *sf,
                },
                Layout::R2,
                Tier::Bis,
                weight(key),
            ),
            OpKey::CmpReg(op) | OpKey::CmpImm(op) => insert(
                &mut sel,
                MicroOp::CmpReg { op: *op },
                Layout::R2,
                Tier::Bis,
                weight(key),
            ),
            OpKey::Mul => insert(&mut sel, MicroOp::Mul3, Layout::R3, Tier::Bis, weight(key)),
            OpKey::Mem(op) => insert(
                &mut sel,
                MicroOp::Mem { op: *op },
                Layout::MemImm { w: 0 },
                Tier::Bis,
                weight(key),
            ),
            OpKey::Branch(cond, link) => {
                insert(
                    &mut sel,
                    MicroOp::Branch {
                        cond: *cond,
                        link: *link,
                    },
                    Layout::Br { w: 4 },
                    Tier::Bis,
                    weight(key),
                );
                // The far-branch fallback needs the inverse condition.
                if *cond != Cond::Al && !link {
                    insert(
                        &mut sel,
                        MicroOp::Branch {
                            cond: cond.inverse(),
                            link: false,
                        },
                        Layout::Br { w: 4 },
                        Tier::Bis,
                        0,
                    );
                }
            }
            OpKey::ShiftImm(kind, sf) => {
                insert(
                    &mut sel,
                    MicroOp::ShiftImm {
                        kind: *kind,
                        set_flags: *sf,
                    },
                    Layout::RRDict { w: 3 },
                    Tier::Bis,
                    weight(key),
                );
                // Completeness fallback for amounts the dictionary cannot
                // hold: the register-amount form.
                insert(
                    &mut sel,
                    MicroOp::ShiftReg {
                        kind: *kind,
                        set_flags: *sf,
                    },
                    Layout::R2,
                    Tier::Sis,
                    0,
                );
            }
            OpKey::ShiftReg(kind, sf) => insert(
                &mut sel,
                MicroOp::ShiftReg {
                    kind: *kind,
                    set_flags: *sf,
                },
                Layout::R2,
                Tier::Bis,
                weight(key),
            ),
            _ => {}
        }
    }
    // An unconditional branch is always required (far-branch glue).
    insert(
        &mut sel,
        MicroOp::Branch {
            cond: Cond::Al,
            link: false,
        },
        Layout::Br { w: 4 },
        Tier::Bis,
        0,
    );
    // Predicated instructions fall back to a branch-around with the
    // inverted condition; make sure both directions exist.
    for cond in &profile.pred_conds {
        for c in [*cond, cond.inverse()] {
            if c != Cond::Al && c != Cond::Nv {
                insert(
                    &mut sel,
                    MicroOp::Branch {
                        cond: c,
                        link: false,
                    },
                    Layout::Br { w: 4 },
                    Tier::Sis,
                    0,
                );
            }
        }
    }
    // Every shift kind used anywhere gets both fallbacks: the
    // register-amount form and a dictionary-amount form (shifted operands
    // on non-move ops expand through these, and the scratch register can
    // only hold one of {amount, shifted value} at a time).
    for kind in &profile.shift_kinds {
        insert(
            &mut sel,
            MicroOp::ShiftReg {
                kind: *kind,
                set_flags: false,
            },
            Layout::R2,
            Tier::Sis,
            0,
        );
        insert(
            &mut sel,
            MicroOp::ShiftImm {
                kind: *kind,
                set_flags: false,
            },
            Layout::RRDict { w: 3 },
            Tier::Sis,
            0,
        );
    }

    // ---- SIS: completeness glue ----------------------------------------
    insert(
        &mut sel,
        MicroOp::Dp2Imm {
            op: DpOp::Mov,
            set_flags: false,
        },
        Layout::R2Imm { w: 4 },
        Tier::Sis,
        0,
    );
    insert(
        &mut sel,
        MicroOp::Dp2Imm {
            op: DpOp::Orr,
            set_flags: false,
        },
        Layout::R2Imm { w: 4 },
        Tier::Sis,
        0,
    );
    insert(
        &mut sel,
        MicroOp::ShiftImm {
            kind: ShiftKind::Lsl,
            set_flags: false,
        },
        Layout::RRImm { w: 4 },
        Tier::Sis,
        0,
    );
    // Dictionary move: loads any 32-bit configuration constant.
    insert(
        &mut sel,
        MicroOp::Dp2Imm {
            op: DpOp::Mov,
            set_flags: false,
        },
        Layout::R2Dict { w: 5 },
        Tier::Sis,
        0,
    );
    insert(
        &mut sel,
        MicroOp::LoadTarget,
        Layout::R2Dict { w: 4 },
        Tier::Sis,
        0,
    );
    insert(
        &mut sel,
        MicroOp::BranchReg { link: false },
        Layout::R1,
        Tier::Sis,
        0,
    );
    insert(
        &mut sel,
        MicroOp::BranchReg { link: true },
        Layout::R1,
        Tier::Sis,
        0,
    );

    // ---- AIS: greedy utilization-driven upgrades ------------------------
    let mut candidates: Vec<(MicroOp, Layout)> = Vec::new();
    for key in profile.families.keys() {
        match key {
            OpKey::DpReg(op, sf) => {
                candidates.push((
                    MicroOp::Dp3 {
                        op: *op,
                        set_flags: *sf,
                    },
                    Layout::R3,
                ));
            }
            OpKey::DpImm(op, sf) => {
                for w in [3u8, 4, 5, 6, 8] {
                    candidates.push((
                        MicroOp::Dp2Imm {
                            op: *op,
                            set_flags: *sf,
                        },
                        Layout::R2Imm { w },
                    ));
                }
                for w in [3u8, 4, 5, 6] {
                    candidates.push((
                        MicroOp::Dp2Imm {
                            op: *op,
                            set_flags: *sf,
                        },
                        Layout::R2Dict {
                            w: w.min(opts.max_dict_bits),
                        },
                    ));
                }
                // Figure 2's Operate format: 3-address with an immediate
                // OPRD (literal or dictionary index).
                for w in [2u8, 3, 4] {
                    candidates.push((
                        MicroOp::Dp3 {
                            op: *op,
                            set_flags: *sf,
                        },
                        Layout::RRImm { w },
                    ));
                    candidates.push((
                        MicroOp::Dp3 {
                            op: *op,
                            set_flags: *sf,
                        },
                        Layout::RRDict {
                            w: w.min(opts.max_dict_bits),
                        },
                    ));
                }
            }
            OpKey::CmpImm(op) => {
                for w in [3u8, 4, 5, 6, 8] {
                    candidates.push((MicroOp::CmpImm { op: *op }, Layout::R2Imm { w }));
                }
                for w in [3u8, 4, 5] {
                    candidates.push((
                        MicroOp::CmpImm { op: *op },
                        Layout::R2Dict {
                            w: w.min(opts.max_dict_bits),
                        },
                    ));
                }
            }
            OpKey::Mem(op) => {
                for w in [2u8, 3, 4, 5, 6] {
                    candidates.push((MicroOp::Mem { op: *op }, Layout::MemImm { w }));
                }
                for w in [2u8, 3, 4] {
                    candidates.push((
                        MicroOp::Mem { op: *op },
                        Layout::MemDict {
                            w: w.min(opts.max_dict_bits),
                        },
                    ));
                }
            }
            OpKey::Branch(cond, link) => {
                for w in [6u8, 8, 10, 11, 12, 13] {
                    candidates.push((
                        MicroOp::Branch {
                            cond: *cond,
                            link: *link,
                        },
                        Layout::Br { w },
                    ));
                }
            }
            OpKey::ShiftImm(kind, sf) => {
                candidates.push((
                    MicroOp::ShiftImm {
                        kind: *kind,
                        set_flags: *sf,
                    },
                    Layout::RRImm { w: 5 },
                ));
            }
            OpKey::PredMov(cond, imm) => {
                if *imm {
                    candidates.push((MicroOp::PredMovImm { cond: *cond }, Layout::R2Imm { w: 4 }));
                } else {
                    candidates.push((MicroOp::PredMovReg { cond: *cond }, Layout::R2));
                }
            }
            _ => {}
        }
    }

    let mut upgrades = 0usize;
    loop {
        let base_cost = total_cost(&families, &sel);
        let base_space = space_of(&sel, r);
        let mut best: Option<(f64, usize)> = None;
        for (i, (micro, layout)) in candidates.iter().enumerate() {
            let key = (*micro, layout_kind(*layout));
            // Skip no-op "upgrades" (narrower or equal to current).
            if let Some(cur) = sel.get(&key) {
                if layout.operand_bits(r) <= cur.layout.operand_bits(r) {
                    continue;
                }
            }
            let mut trial = sel.clone();
            trial.insert(
                key,
                Selected {
                    micro: *micro,
                    layout: *layout,
                    tier: Tier::Ais,
                    weight: 0,
                },
            );
            let space = space_of(&trial, r);
            if space > budget {
                continue;
            }
            let gain = base_cost - total_cost(&families, &trial);
            if gain <= 0.0 {
                continue;
            }
            let dspace = (space - base_space.min(space)).max(1) as f64;
            let ratio = gain / dspace;
            if best.is_none_or(|(b, _)| ratio > b) {
                best = Some((ratio, i));
            }
        }
        let Some((_, i)) = best else { break };
        let (micro, layout) = candidates[i];
        let fam_weight = profile
            .families
            .iter()
            .filter(|(k, _)| family_matches(k, &micro))
            .map(|(_, s)| s.dyn_)
            .sum();
        sel.insert(
            (micro, layout_kind(layout)),
            Selected {
                micro,
                layout,
                tier: Tier::Ais,
                weight: fam_weight,
            },
        );
        upgrades += 1;
        if upgrades > 200 {
            break; // safety valve
        }
    }

    // ---- Build dictionaries ---------------------------------------------
    let dict_width = |kind_pred: &dyn Fn(&Selected) -> bool| -> u8 {
        sel.values()
            .filter(|s| kind_pred(s))
            .map(|s| match s.layout {
                Layout::R2Dict { w } | Layout::RRDict { w } | Layout::MemDict { w } => w,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    };
    let op_dict_w = dict_width(&|s| {
        matches!(s.layout, Layout::R2Dict { .. })
            && matches!(s.micro, MicroOp::Dp2Imm { .. } | MicroOp::CmpImm { .. })
    });
    let mem_dict_w = dict_width(&|s| matches!(s.layout, Layout::MemDict { .. }));
    let shift_dict_w = dict_width(&|s| matches!(s.layout, Layout::RRDict { .. }));

    let mut operate_all = crate::profile::ValueHist::default();
    for hist in profile.operate_imms.values() {
        for (v, s) in hist.by_dynamic_weight() {
            operate_all.record_weighted(v, s);
        }
    }
    let op_cap = (1usize << op_dict_w).saturating_sub(RESERVED_DICT_SLOTS);
    let operate: Vec<u32> = operate_all
        .by_dynamic_weight()
        .into_iter()
        .take(op_cap)
        .map(|(v, _)| v)
        .collect();

    let mut mem_all = crate::profile::ValueHist::default();
    for hist in profile.mem_disps.values() {
        for (v, s) in hist.by_dynamic_weight() {
            mem_all.record_weighted(v, s);
        }
    }
    let mem_disp: Vec<u32> = mem_all
        .by_dynamic_weight()
        .into_iter()
        .take(1 << mem_dict_w)
        .map(|(v, _)| v)
        .collect();

    let mut shift_all = crate::profile::ValueHist::default();
    for hist in profile.shift_amounts.values() {
        for (v, s) in hist.by_dynamic_weight() {
            shift_all.record_weighted(v, s);
        }
    }
    let shift: Vec<u32> = shift_all
        .by_dynamic_weight()
        .into_iter()
        .take(1 << shift_dict_w)
        .map(|(v, _)| v)
        .collect();

    // ---- Canonical (optionally Gray-reordered) code assignment ----------
    let mut entries: Vec<Selected> = sel.into_values().collect();
    let ops = assign_codes(&mut entries, r, opts.toggle_aware);

    let regs = if r == 4 {
        RegMap::full()
    } else {
        // 8-register window: map the most-used physical registers.
        let mut used: Vec<u8> = (0..16u8)
            .filter(|i| profile.regs_used & (1 << i) != 0)
            .collect();
        used.truncate(1 << r);
        while used.len() < (1 << r) {
            used.push(0);
        }
        RegMap {
            field_bits: r,
            map: used,
        }
    };

    let config = DecoderConfig {
        ops,
        regs,
        dicts: Dictionaries {
            operate,
            mem_disp,
            shift,
            target: Vec::new(),
        },
    };
    let space_used = config.ops.iter().map(|e| 1u64 << (16 - e.len)).sum();
    let predicted = {
        let sel_again: BTreeMap<SelKey, Selected> = config
            .ops
            .iter()
            .map(|e| {
                (
                    (e.micro, layout_kind(e.layout)),
                    Selected {
                        micro: e.micro,
                        layout: e.layout,
                        tier: e.tier,
                        weight: 0,
                    },
                )
            })
            .collect();
        total_cost(&families, &sel_again) / profile.dyn_total.max(1) as f64
    };

    Synthesis {
        config,
        report: SynthReport {
            space_used,
            upgrades,
            predicted_expansion: predicted,
        },
    }
}

fn family_matches(key: &OpKey, micro: &MicroOp) -> bool {
    matches!(
        (key, micro),
        (OpKey::DpReg(a, s1), MicroOp::Dp3 { op: b, set_flags: s2 }) if a == b && s1 == s2
    ) || matches!(
        (key, micro),
        (OpKey::DpImm(a, s1), MicroOp::Dp2Imm { op: b, set_flags: s2 }) if a == b && s1 == s2
    ) || matches!(
        (key, micro),
        (OpKey::CmpImm(a), MicroOp::CmpImm { op: b }) if a == b
    ) || matches!(
        (key, micro),
        (OpKey::Mem(a), MicroOp::Mem { op: b }) if a == b
    ) || matches!(
        (key, micro),
        (OpKey::Branch(c1, l1), MicroOp::Branch { cond: c2, link: l2 }) if c1 == c2 && l1 == l2
    ) || matches!(
        (key, micro),
        (OpKey::ShiftImm(k1, s1), MicroOp::ShiftImm { kind: k2, set_flags: s2 }) if k1 == k2 && s1 == s2
    ) || matches!(
        (key, micro),
        (OpKey::PredMov(c1, true), MicroOp::PredMovImm { cond: c2 }) if c1 == c2
    ) || matches!(
        (key, micro),
        (OpKey::PredMov(c1, false), MicroOp::PredMovReg { cond: c2 }) if c1 == c2
    )
}

/// Assigns canonical prefix codes. Entries are sorted by code length
/// (shorter = more operand bits first); within a length class, the
/// assignment order is dynamic weight, and when `toggle_aware` is set the
/// class's code values are visited in binary-reflected Gray order so that
/// frequently co-occurring opcodes differ in few bits.
fn assign_codes(entries: &mut [Selected], r: u8, toggle_aware: bool) -> Vec<OpcodeEntry> {
    entries.sort_by(|a, b| {
        let la = 16 - a.layout.operand_bits(r);
        let lb = 16 - b.layout.operand_bits(r);
        la.cmp(&lb).then(b.weight.cmp(&a.weight))
    });
    let mut out = Vec::with_capacity(entries.len());
    let mut counter: u32 = 0;
    let mut prev_len: u8 = 0;
    let mut i = 0usize;
    while i < entries.len() {
        let len = 16 - entries[i].layout.operand_bits(r);
        // Scale the counter up to this length.
        counter <<= len - prev_len;
        prev_len = len;
        // The whole class of this length:
        let mut j = i;
        while j < entries.len() && 16 - entries[j].layout.operand_bits(r) == len {
            j += 1;
        }
        let class = &entries[i..j];
        let n = (j - i) as u32;
        // Candidate code values for this class: counter..counter+n. In
        // toggle-aware mode visit them in Gray order of the local index
        // (clamped into range by sorting the produced values' gray image).
        let mut values: Vec<u32> = (0..n).map(|k| counter + k).collect();
        if toggle_aware {
            values.sort_by_key(|v| {
                // Order by gray-coded low bits: adjacent assignments differ
                // in fewer bits on average.

                v ^ (v >> 1)
            });
        }
        for (k, e) in class.iter().enumerate() {
            let code_val = values[k];
            debug_assert!(len <= 16);
            out.push(OpcodeEntry {
                code: (code_val as u16) << (16 - u16::from(len)),
                len,
                micro: e.micro,
                layout: e.layout,
                tier: e.tier,
            });
        }
        counter += n;
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use fits_kernels::kernels::{Kernel, Scale};

    fn crc_profile() -> Profile {
        let program = Kernel::Crc32.compile(Scale::test()).unwrap();
        profile(&program).unwrap()
    }

    #[test]
    fn synthesis_produces_prefix_free_config() {
        let p = crc_profile();
        let s = synthesize(&p, &SynthOptions::default());
        assert!(s.config.is_prefix_free(), "{}", s.config);
        assert!(s.report.space_used <= 65536);
        assert!(!s.config.ops.is_empty());
    }

    #[test]
    fn tiers_are_all_present() {
        let p = crc_profile();
        let s = synthesize(&p, &SynthOptions::default());
        assert!(s.config.tier_ops(Tier::Bis).count() > 0);
        assert!(s.config.tier_ops(Tier::Sis).count() > 0);
        assert!(s.config.tier_ops(Tier::Ais).count() > 0, "{}", s.config);
    }

    #[test]
    fn predicted_expansion_is_near_one() {
        let p = crc_profile();
        let s = synthesize(&p, &SynthOptions::default());
        assert!(
            s.report.predicted_expansion < 1.3,
            "predicted expansion {}",
            s.report.predicted_expansion
        );
        assert!(s.report.predicted_expansion >= 1.0);
    }

    #[test]
    fn smaller_budget_means_fewer_upgrades() {
        let p = crc_profile();
        let full = synthesize(&p, &SynthOptions::default());
        let tight = synthesize(
            &p,
            &SynthOptions {
                space_budget: 0.4,
                ..SynthOptions::default()
            },
        );
        assert!(tight.report.upgrades <= full.report.upgrades);
        assert!(tight.report.predicted_expansion >= full.report.predicted_expansion - 1e-9);
    }

    #[test]
    fn mem_lit_fits_rules() {
        // Word fields: scaled, unsigned.
        assert!(mem_lit_fits(0, 1, 4));
        assert!(mem_lit_fits(60, 4, 4));
        assert!(!mem_lit_fits(64, 4, 4));
        assert!(mem_lit_fits(64, 5, 4));
        assert!(!mem_lit_fits(-4, 8, 4));
        assert!(!mem_lit_fits(2, 8, 4), "misaligned");
        // Byte fields: signed, unscaled.
        assert!(mem_lit_fits(-2, 3, 1));
        assert!(!mem_lit_fits(-5, 3, 1));
        assert!(mem_lit_fits(-5, 4, 1));
    }

    #[test]
    fn eight_register_window_maps_used_regs() {
        let p = crc_profile();
        let s = synthesize(
            &p,
            &SynthOptions {
                reg_bits: 3,
                ..SynthOptions::default()
            },
        );
        assert_eq!(s.config.regs.field_bits, 3);
        assert_eq!(s.config.regs.map.len(), 8);
    }
}
