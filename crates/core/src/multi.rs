//! Multi-application ISA synthesis: one shared FITS instruction set over a
//! kernel *set*, with per-kernel regression bounds.
//!
//! The flow mirrors [`crate::flow::FitsFlow`] for a set: merge the member
//! profiles under a workload-mix weight vector ([`Profile::merge_weighted`]),
//! synthesize one [`DecoderConfig`] from the union requirement analysis,
//! translate **every** member program under it (widening the dictionary
//! budget on translation failure, like the per-app flow), and then enforce
//! the regression bound: the shared ISA is rejected if any member kernel's
//! dynamic expansion degrades beyond a configurable epsilon relative to
//! that kernel's *per-app optimum* (its own single-application synthesis
//! under the same options).
//!
//! The quality metric is **dynamic expansion** — expected FITS
//! instructions per source instruction, weighted by the member's own
//! execution counts. It is the core-level proxy for I-cache fetch work
//! (the bench layer prices actual fetch energy on the compiled-replay
//! engine); a shared ISA that keeps expansion within `1 + ε` of the
//! per-app optimum keeps fetch energy within the same band to first
//! order.
//!
//! The module also hosts the objective-space dominance rule
//! ([`pareto_frontier`]) used by the bench-layer Pareto enumerator over
//! (code size, I-cache fetch energy, decoder slots).

use std::fmt;

use fits_isa::Program;

use crate::merge::{profile_hash, MergeError, Merged};
use crate::profile::Profile;
use crate::synth::{synthesize, SynthOptions, Synthesis};
use crate::translate::{translate, TranslateError, Translation};

/// One member of a multi-application synthesis.
#[derive(Clone, Copy, Debug)]
pub struct MultiMember<'a> {
    /// Display name (kernel name in the suite runners).
    pub name: &'a str,
    /// The member's native program.
    pub program: &'a Program,
    /// The member's own profile (used both for the merge and for its
    /// per-app optimum baseline).
    pub profile: &'a Profile,
}

/// Multi-synthesis options.
#[derive(Clone, Debug)]
pub struct MultiOptions {
    /// Synthesis knobs, applied to the shared synthesis *and* to each
    /// member's per-app baseline (so the regression bound compares like
    /// with like).
    pub synth: SynthOptions,
    /// Maximum allowed relative degradation of any member's dynamic
    /// expansion versus its per-app optimum (`0.1` = 10%). Negative
    /// values demand improvement and exist for rejection tests.
    pub epsilon: f64,
    /// Widening iterations when a member fails to translate (each one
    /// raises `max_dict_bits`, as in the per-app flow).
    pub max_iterations: usize,
}

impl Default for MultiOptions {
    fn default() -> Self {
        MultiOptions {
            synth: SynthOptions::default(),
            epsilon: 1.0,
            max_iterations: 3,
        }
    }
}

/// Multi-synthesis failures.
#[derive(Debug)]
pub enum MultiError {
    /// Weight validation or merge arithmetic failed.
    Merge(MergeError),
    /// A member failed to translate even after dictionary widening.
    Translate {
        /// Member name.
        member: String,
        /// The translator's error.
        error: TranslateError,
    },
    /// The shared ISA degrades a member beyond the configured epsilon.
    RegressionBound {
        /// The violating member.
        member: String,
        /// Its dynamic expansion under its per-app optimum.
        solo: f64,
        /// Its dynamic expansion under the shared ISA.
        shared: f64,
        /// The configured bound.
        epsilon: f64,
    },
}

impl fmt::Display for MultiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiError::Merge(e) => write!(f, "merge: {e}"),
            MultiError::Translate { member, error } => {
                write!(f, "member {member} fails to translate: {error}")
            }
            MultiError::RegressionBound {
                member,
                solo,
                shared,
                epsilon,
            } => write!(
                f,
                "member {member} degrades beyond epsilon: shared expansion {shared:.4} vs \
                 per-app optimum {solo:.4} (bound {:.4})",
                solo * (1.0 + epsilon)
            ),
        }
    }
}

impl std::error::Error for MultiError {}

impl From<MergeError> for MultiError {
    fn from(e: MergeError) -> Self {
        MultiError::Merge(e)
    }
}

/// One member's outcome under the accepted shared ISA.
#[derive(Clone, Debug)]
pub struct MemberOutcome {
    /// Member name.
    pub name: String,
    /// The member translated under the shared configuration.
    pub translation: Translation,
    /// Per-app optimum code size in bytes.
    pub solo_code_bytes: usize,
    /// Per-app optimum decoder configuration size in bits.
    pub solo_config_bits: usize,
    /// Dynamic expansion under the per-app optimum.
    pub solo_expansion: f64,
    /// Dynamic expansion under the shared ISA.
    pub shared_expansion: f64,
    /// Relative degradation: `shared/solo - 1` (negative = the shared ISA
    /// is better for this member).
    pub regression: f64,
}

/// An accepted shared-ISA synthesis over a kernel set.
#[derive(Clone, Debug)]
pub struct MultiOutcome {
    /// The merged union profile.
    pub merged: Merged,
    /// Content hash of the merged profile
    /// ([`crate::merge::profile_hash`]).
    pub merged_hash: String,
    /// The shared synthesis.
    pub synthesis: Synthesis,
    /// Per-member outcomes, in input order (zero-weight members dropped).
    pub members: Vec<MemberOutcome>,
    /// The enforced bound.
    pub epsilon: f64,
    /// Dictionary-widening iterations the shared synthesis needed.
    pub iterations: usize,
}

impl MultiOutcome {
    /// Total shared-ISA code size across members, in bytes.
    #[must_use]
    pub fn shared_code_bytes(&self) -> usize {
        self.members
            .iter()
            .map(|m| m.translation.fits.code_bytes())
            .sum()
    }
}

/// Dynamic expansion of a translation: expected FITS instructions per
/// source instruction, weighted by the member's execution counts (1.0 for
/// a perfect 1-to-1 mapping; falls back to the static expansion when the
/// profile carries no execution counts).
#[must_use]
pub fn dynamic_expansion(translation: &Translation, exec_counts: &[u64]) -> f64 {
    let exp = &translation.stats.expansion;
    let total: u128 = exec_counts.iter().map(|&e| u128::from(e)).sum();
    if total == 0 || exec_counts.len() != exp.len() {
        return translation.stats.static_expansion();
    }
    let weighted: u128 = exp
        .iter()
        .zip(exec_counts)
        .map(|(&x, &e)| u128::from(x) * u128::from(e))
        .sum();
    weighted as f64 / total as f64
}

/// Synthesizes under `opts` and translates, widening `max_dict_bits` on
/// translation failure up to `max_iterations` times (the per-app flow's
/// recovery policy).
fn synth_translate(
    profile: &Profile,
    program: &Program,
    opts: &SynthOptions,
    max_iterations: usize,
) -> Result<(Synthesis, Translation, usize), TranslateError> {
    let mut opts = opts.clone();
    let mut last_err = None;
    for iteration in 0..max_iterations.max(1) {
        let synthesis = synthesize(profile, &opts);
        match translate(program, &synthesis.config) {
            Ok(translation) => return Ok((synthesis, translation, iteration + 1)),
            Err(e) => last_err = Some(e),
        }
        opts.max_dict_bits = (opts.max_dict_bits + 1).min(8);
    }
    Err(last_err.expect("at least one iteration ran"))
}

/// Synthesizes one shared FITS ISA over a kernel set and enforces the
/// per-kernel regression bound.
///
/// `weights[i]` is member `i`'s workload-mix weight; zero-weight members
/// are dropped (reported through [`Merged::dropped`] on the outcome's
/// `merged` field).
///
/// # Errors
///
/// [`MultiError::Merge`] for invalid weight vectors,
/// [`MultiError::Translate`] when a member cannot be translated under the
/// shared configuration even after widening, and
/// [`MultiError::RegressionBound`] when the shared ISA degrades any
/// member's dynamic expansion beyond `1 + epsilon` times its per-app
/// optimum.
pub fn synthesize_multi(
    members: &[MultiMember<'_>],
    weights: &[f64],
    options: &MultiOptions,
) -> Result<MultiOutcome, MultiError> {
    if members.len() != weights.len() {
        return Err(MultiError::Merge(MergeError::WeightCount {
            members: members.len(),
            weights: weights.len(),
        }));
    }
    let pairs: Vec<(&Profile, f64)> = members
        .iter()
        .zip(weights)
        .map(|(m, &w)| (m.profile, w))
        .collect();
    let merged = Profile::merge_weighted(&pairs)?;
    let merged_hash = profile_hash(&merged.profile);

    // The shared synthesis must translate *every* retained member; a
    // failure widens the dictionary budget and retries, like the per-app
    // flow. The widening is driven by the worst member.
    let retained: Vec<&MultiMember<'_>> = members
        .iter()
        .zip(&merged.weights)
        .filter(|(_, &w)| w > 0)
        .map(|(m, _)| m)
        .collect();
    let mut opts = options.synth.clone();
    let mut shared: Option<(Synthesis, Vec<Translation>)> = None;
    let mut iterations = 0usize;
    for iteration in 0..options.max_iterations.max(1) {
        iterations = iteration + 1;
        let synthesis = synthesize(&merged.profile, &opts);
        let mut translations = Vec::with_capacity(retained.len());
        let mut failure: Option<(String, TranslateError)> = None;
        for m in &retained {
            match translate(m.program, &synthesis.config) {
                Ok(t) => translations.push(t),
                Err(e) => {
                    failure = Some((m.name.to_owned(), e));
                    break;
                }
            }
        }
        match failure {
            None => {
                shared = Some((synthesis, translations));
                break;
            }
            Some((member, error)) => {
                if iteration + 1 == options.max_iterations.max(1) {
                    return Err(MultiError::Translate { member, error });
                }
                opts.max_dict_bits = (opts.max_dict_bits + 1).min(8);
            }
        }
    }
    let (synthesis, translations) = shared.expect("loop either set shared or returned");

    // Per-member regression bound versus the per-app optimum, computed
    // under the *same* base options so the bound compares like with like.
    let mut outcomes = Vec::with_capacity(retained.len());
    for (m, translation) in retained.iter().zip(translations) {
        let (solo_synth, solo_translation, _) =
            synth_translate(m.profile, m.program, &options.synth, options.max_iterations).map_err(
                |error| MultiError::Translate {
                    member: m.name.to_owned(),
                    error,
                },
            )?;
        let solo = dynamic_expansion(&solo_translation, &m.profile.exec_counts);
        let shared_exp = dynamic_expansion(&translation, &m.profile.exec_counts);
        let regression = if solo > 0.0 {
            shared_exp / solo - 1.0
        } else {
            0.0
        };
        if regression > options.epsilon {
            return Err(MultiError::RegressionBound {
                member: m.name.to_owned(),
                solo,
                shared: shared_exp,
                epsilon: options.epsilon,
            });
        }
        outcomes.push(MemberOutcome {
            name: m.name.to_owned(),
            translation,
            solo_code_bytes: solo_translation.fits.code_bytes(),
            solo_config_bits: solo_synth.config.config_bits(),
            solo_expansion: solo,
            shared_expansion: shared_exp,
            regression,
        });
    }

    Ok(MultiOutcome {
        merged,
        merged_hash,
        synthesis,
        members: outcomes,
        epsilon: options.epsilon,
        iterations,
    })
}

/// Indices of the non-dominated points (the Pareto frontier), in input
/// order. Point `a` dominates `b` when `a` is no worse on every axis and
/// strictly better on at least one (all axes minimized). Duplicate points
/// all survive (neither strictly dominates).
#[must_use]
pub fn pareto_frontier(points: &[[f64; 3]]) -> Vec<usize> {
    let dominates = |a: &[f64; 3], b: &[f64; 3]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    (0..points.len())
        .filter(|&i| !points.iter().any(|p| dominates(p, &points[i])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use fits_kernels::kernels::{Kernel, Scale};

    fn member(kernel: Kernel) -> (String, Program, Profile) {
        let program = kernel.compile(Scale::test()).unwrap();
        let p = profile(&program).unwrap();
        (kernel.name().to_owned(), program, p)
    }

    #[test]
    fn shared_isa_covers_every_member() {
        let data: Vec<_> = [Kernel::Crc32, Kernel::Bitcount, Kernel::Sha]
            .iter()
            .map(|&k| member(k))
            .collect();
        let members: Vec<MultiMember<'_>> = data
            .iter()
            .map(|(name, program, profile)| MultiMember {
                name,
                program,
                profile,
            })
            .collect();
        let out = synthesize_multi(&members, &[1.0, 1.0, 1.0], &MultiOptions::default()).unwrap();
        assert_eq!(out.members.len(), 3);
        assert!(out.synthesis.config.is_prefix_free());
        for m in &out.members {
            // Every member word decodes under its own final config.
            for (j, &w) in m.translation.fits.instrs.iter().enumerate() {
                assert!(
                    crate::decode_word(&m.translation.fits.config, w, j).is_ok(),
                    "{}: word {w:#06x} must decode",
                    m.name
                );
            }
            assert!(m.solo_expansion >= 1.0);
            assert!(m.shared_expansion >= 1.0);
            assert!(m.regression <= out.epsilon);
        }
        assert_eq!(out.merged_hash.len(), 16);
    }

    /// The acceptance-criteria rejection test: an epsilon the shared ISA
    /// cannot possibly meet (demanding 50% *improvement* over each
    /// member's own optimum) must be rejected with a typed error naming
    /// the violating member.
    #[test]
    fn epsilon_violating_config_is_rejected() {
        let data: Vec<_> = [Kernel::Crc32, Kernel::Fft]
            .iter()
            .map(|&k| member(k))
            .collect();
        let members: Vec<MultiMember<'_>> = data
            .iter()
            .map(|(name, program, profile)| MultiMember {
                name,
                program,
                profile,
            })
            .collect();
        let err = synthesize_multi(
            &members,
            &[1.0, 1.0],
            &MultiOptions {
                epsilon: -0.5,
                ..MultiOptions::default()
            },
        )
        .unwrap_err();
        match err {
            MultiError::RegressionBound {
                member,
                solo,
                shared,
                epsilon,
            } => {
                assert!(!member.is_empty());
                assert!(shared > solo * (1.0 + epsilon));
            }
            other => panic!("expected RegressionBound, got {other}"),
        }
    }

    #[test]
    fn weight_errors_propagate_as_typed_merge_errors() {
        let (name, program, p) = member(Kernel::Crc32);
        let members = [MultiMember {
            name: &name,
            program: &program,
            profile: &p,
        }];
        let err = synthesize_multi(&members, &[-1.0], &MultiOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            MultiError::Merge(MergeError::Negative { index: 0 })
        ));
        let err = synthesize_multi(&members, &[1.0, 1.0], &MultiOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            MultiError::Merge(MergeError::WeightCount { .. })
        ));
    }

    #[test]
    fn frontier_is_non_dominated() {
        let points = [
            [1.0, 5.0, 3.0], // frontier
            [2.0, 4.0, 3.0], // frontier
            [2.0, 5.0, 3.0], // dominated by 0 and 1
            [1.0, 5.0, 3.0], // duplicate of 0: survives
            [0.5, 6.0, 4.0], // frontier
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 1, 3, 4]);
        assert!(pareto_frontier(&[]).is_empty());
        assert_eq!(pareto_frontier(&[[1.0, 1.0, 1.0]]), vec![0]);
    }
}
