//! The FITS profiler (stage 1 of the Figure-1 design flow).
//!
//! Produces "an extensive requirement analysis related to each element that
//! makes up an instruction set" (§3.2): opcode usage by family, immediate
//! value distributions per category, displacement ranges, condition-code
//! usage, register pressure and 2-vs-3-operand feasibility — everything the
//! synthesis stage's optimizer consumes.

use std::collections::{BTreeMap, HashMap};

use fits_isa::{AddrOffset, Cond, DpOp, Instr, MemOp, Operand2, Program, Shift, ShiftKind};
use fits_sim::{Ar32Set, Machine, RunOutput, SimError};

/// A static/dynamic counter pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stat {
    /// Occurrences in the text segment.
    pub stat: u64,
    /// Retired executions.
    pub dyn_: u64,
}

impl Stat {
    fn bump(&mut self, executions: u64) {
        self.stat += 1;
        self.dyn_ += executions;
    }
}

/// A value histogram with static and dynamic weights.
#[derive(Clone, Debug, Default)]
pub struct ValueHist {
    counts: HashMap<u32, Stat>,
}

impl ValueHist {
    /// Records one static site executed `executions` times.
    pub fn record(&mut self, value: u32, executions: u64) {
        self.counts.entry(value).or_default().bump(executions);
    }

    /// Merges a pre-aggregated stat (used to build the global per-category
    /// histograms out of the per-family ones).
    pub fn record_weighted(&mut self, value: u32, s: Stat) {
        let e = self.counts.entry(value).or_default();
        e.stat += s.stat;
        e.dyn_ += s.dyn_;
    }

    /// Distinct values seen.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Values sorted by descending dynamic weight (ties: static, value).
    #[must_use]
    pub fn by_dynamic_weight(&self) -> Vec<(u32, Stat)> {
        let mut v: Vec<(u32, Stat)> = self.counts.iter().map(|(k, s)| (*k, *s)).collect();
        v.sort_by(|a, b| {
            b.1.dyn_
                .cmp(&a.1.dyn_)
                .then(b.1.stat.cmp(&a.1.stat))
                .then(a.0.cmp(&b.0))
        });
        v
    }

    /// Total dynamic weight.
    #[must_use]
    pub fn total_dyn(&self) -> u64 {
        self.counts.values().map(|s| s.dyn_).sum()
    }

    /// Dynamic weight of values satisfying `pred`.
    pub fn dyn_where(&self, mut pred: impl FnMut(u32) -> bool) -> u64 {
        self.counts
            .iter()
            .filter(|(v, _)| pred(**v))
            .map(|(_, s)| s.dyn_)
            .sum()
    }
}

/// An instruction-family key: the granularity at which opcodes are
/// synthesized. Set-flags variants are distinct families (they become
/// distinct opcodes, as on every 16-bit ISA).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKey {
    /// Register-register data processing (excluding compares and moves by
    /// shift).
    DpReg(DpOp, bool),
    /// Immediate data processing.
    DpImm(DpOp, bool),
    /// Shift by constant (`mov rd, ra, LSL #n`).
    ShiftImm(ShiftKind, bool),
    /// Shift by register.
    ShiftReg(ShiftKind, bool),
    /// Register compare (CMP/CMN/TST/TEQ).
    CmpReg(DpOp),
    /// Immediate compare.
    CmpImm(DpOp),
    /// 32-bit multiply.
    Mul,
    /// Load/store with immediate displacement.
    Mem(MemOp),
    /// Conditional/unconditional branch (link = BL).
    Branch(Cond, bool),
    /// Indirect jump (`mov pc, r`).
    BranchReg,
    /// Predicated move (condition, immediate-form flag).
    PredMov(Cond, bool),
    /// Software interrupt.
    Swi,
}

/// Classifies an AR32 instruction into its family, together with the
/// salient operand facts the profiler records.
#[must_use]
pub fn classify(instr: &Instr) -> Option<OpKey> {
    match instr {
        Instr::Dp {
            cond,
            op,
            set_flags,
            rd,
            op2,
            ..
        } => {
            if op.is_compare() {
                return Some(match op2 {
                    Operand2::Imm(_) => OpKey::CmpImm(*op),
                    Operand2::Reg(..) => OpKey::CmpReg(*op),
                });
            }
            if rd.is_pc() {
                return Some(OpKey::BranchReg);
            }
            if *cond != Cond::Al {
                // Our compiler only predicates moves; other predicated ops
                // would fall back to branch-around in translation.
                if *op == DpOp::Mov {
                    return Some(OpKey::PredMov(*cond, matches!(op2, Operand2::Imm(_))));
                }
                return None;
            }
            match (op, op2) {
                (DpOp::Mov, Operand2::Reg(_, Shift::Imm(kind, n))) if *n > 0 => {
                    Some(OpKey::ShiftImm(*kind, *set_flags))
                }
                (DpOp::Mov, Operand2::Reg(_, Shift::Reg(kind, _))) => {
                    Some(OpKey::ShiftReg(*kind, *set_flags))
                }
                (_, Operand2::Imm(_)) => Some(OpKey::DpImm(*op, *set_flags)),
                (_, Operand2::Reg(_, Shift::Imm(ShiftKind::Lsl, 0))) => {
                    Some(OpKey::DpReg(*op, *set_flags))
                }
                // Shifted-operand ALU ops other than MOV: not a family of
                // their own (translate via a scratch shift).
                _ => None,
            }
        }
        Instr::Mul { .. } => Some(OpKey::Mul),
        Instr::Mem { offset, op, .. } => match offset {
            AddrOffset::Imm(_) => Some(OpKey::Mem(*op)),
            AddrOffset::Reg { .. } => None,
        },
        Instr::Branch { cond, link, .. } => Some(OpKey::Branch(*cond, *link)),
        Instr::Swi { .. } => Some(OpKey::Swi),
    }
}

/// The profiler's output.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Static instruction count.
    pub static_instrs: usize,
    /// Total retired instructions.
    pub dyn_total: u64,
    /// Retired count per text index.
    pub exec_counts: Vec<u64>,
    /// Per-family usage. Ordered: synthesis iterates these maps and
    /// breaks ties by encounter order, so the order must not vary between
    /// runs (served results are cached/compared byte-for-byte).
    pub families: BTreeMap<OpKey, Stat>,
    /// Sites that fall outside every family (translated by expansion).
    pub unclassified: Stat,
    /// Operate-category immediates, per family.
    pub operate_imms: BTreeMap<OpKey, ValueHist>,
    /// Memory displacements (two's-complement i32), per memory op.
    pub mem_disps: BTreeMap<MemOp, ValueHist>,
    /// Shift amounts per kind.
    pub shift_amounts: BTreeMap<ShiftKind, ValueHist>,
    /// Branch displacements in instruction units (two's-complement), per
    /// (cond, link) family.
    pub branch_disps: BTreeMap<(Cond, bool), ValueHist>,
    /// For each register-register DP family: dynamic executions where
    /// `rd == rn` (2-address compatible) and the family total.
    pub rd_eq_rn: BTreeMap<OpKey, (u64, u64)>,
    /// Physical registers referenced anywhere.
    pub regs_used: u16,
    /// Condition codes appearing on predicated (non-branch) instructions —
    /// the branch-around fallback needs their inverses synthesized.
    pub pred_conds: std::collections::BTreeSet<Cond>,
    /// Shift kinds appearing in any shifted operand (including shapes the
    /// family classifier rejects) — the shift fallbacks must exist.
    pub shift_kinds: std::collections::BTreeSet<ShiftKind>,
    /// The functional run result (the profiling run doubles as the
    /// reference run for later differential checks).
    pub run: Option<RunOutput>,
}

impl Profile {
    /// Number of distinct physical registers referenced.
    #[must_use]
    pub fn distinct_regs(&self) -> u32 {
        self.regs_used.count_ones()
    }

    /// Dynamic usage share of a family.
    #[must_use]
    pub fn dyn_share(&self, key: OpKey) -> f64 {
        if self.dyn_total == 0 {
            return 0.0;
        }
        self.families
            .get(&key)
            .map_or(0.0, |s| s.dyn_ as f64 / self.dyn_total as f64)
    }

    /// The fraction of a DP-reg family's executions that are 2-address
    /// compatible (`rd == rn`) — the §3.3 operand-mode statistic.
    #[must_use]
    pub fn two_address_rate(&self, key: OpKey) -> f64 {
        match self.rd_eq_rn.get(&key) {
            Some((eq, total)) if *total > 0 => *eq as f64 / *total as f64,
            _ => 0.0,
        }
    }
}

fn record_instr(profile: &mut Profile, instr: &Instr, index: usize, executions: u64) {
    for r in instr.reads().into_iter().chain(instr.writes()) {
        profile.regs_used |= 1 << r.index();
    }
    // Operand-shape facts that must be visible regardless of family
    // classification: predication conditions and shifter usage.
    if instr.cond() != Cond::Al && !matches!(instr, Instr::Branch { .. }) {
        profile.pred_conds.insert(instr.cond());
    }
    if let Instr::Dp {
        op2: Operand2::Reg(_, shift),
        ..
    } = instr
    {
        match shift {
            Shift::Imm(kind, n) if *n > 0 => {
                profile.shift_kinds.insert(*kind);
                profile
                    .shift_amounts
                    .entry(*kind)
                    .or_default()
                    .record(u32::from(*n), executions);
            }
            Shift::Reg(kind, _) => {
                profile.shift_kinds.insert(*kind);
            }
            _ => {}
        }
    }
    let Some(key) = classify(instr) else {
        profile.unclassified.bump(executions);
        return;
    };
    profile.families.entry(key).or_default().bump(executions);
    match instr {
        Instr::Dp { rd, rn, op2, .. } => {
            if let Operand2::Imm(imm) = op2 {
                profile
                    .operate_imms
                    .entry(key)
                    .or_default()
                    .record(imm.value(), executions);
            }
            if matches!(key, OpKey::DpReg(..)) {
                let e = profile.rd_eq_rn.entry(key).or_default();
                if rd == rn {
                    e.0 += executions;
                }
                e.1 += executions;
            }
        }
        Instr::Mem {
            op,
            offset: AddrOffset::Imm(d),
            ..
        } => {
            profile
                .mem_disps
                .entry(*op)
                .or_default()
                .record(*d as u32, executions);
        }
        Instr::Branch { cond, link, offset } => {
            let _ = index;
            profile
                .branch_disps
                .entry((*cond, *link))
                .or_default()
                .record(*offset as u32, executions);
        }
        _ => {}
    }
}

/// Profiles a program: one static pass over the text plus one full
/// functional execution for dynamic counts (the paper's profile-guided
/// flow; §3.1 "we currently use profile information").
///
/// The dynamic counts ride the basic-block compiled replay engine: the
/// profiling run records a compact block trace
/// ([`Machine::run_recorded`]) and the per-instruction execution counts
/// fall out of a difference array over its entries — no per-step observer
/// closure or `StepInfo` construction.
///
/// # Errors
///
/// Propagates simulation errors from the profiling run.
pub fn profile(program: &Program) -> Result<Profile, SimError> {
    profile_with(program, fits_isa::spec::Ar32Tables::builtin())
}

/// [`profile`] with explicit spec-compiled AR32 encode tables: the
/// profiling execution's fetch/toggle accounting runs against the words
/// those tables produce. `profile` is this with the shipped tables.
///
/// # Errors
///
/// Propagates simulation errors from the profiling run.
pub fn profile_with(
    program: &Program,
    tables: &fits_isa::spec::Ar32Tables,
) -> Result<Profile, SimError> {
    let set = Ar32Set::load_with(program, tables);
    let compiled = fits_sim::CompiledProgram::compile(&set)?;
    let mut machine = Machine::new(set);
    let trace = machine.run_recorded(&compiled)?;
    let exec_counts = trace.exec_counts(compiled.op_count());
    let run = trace.output;

    let mut p = Profile {
        static_instrs: program.text.len(),
        dyn_total: run.steps,
        run: Some(run),
        ..Profile::default()
    };
    for (i, instr) in program.text.iter().enumerate() {
        record_instr(&mut p, instr, i, exec_counts[i]);
    }
    p.exec_counts = exec_counts;
    Ok(p)
}

/// Returns the minimum signed-field width (in bits) that holds `v`.
#[must_use]
pub fn signed_bits(v: i32) -> u8 {
    let mut w = 1u8;
    while w < 32 {
        let lo = -(1i64 << (w - 1));
        let hi = (1i64 << (w - 1)) - 1;
        if (i64::from(v)) >= lo && i64::from(v) <= hi {
            return w;
        }
        w += 1;
    }
    32
}

/// Returns the minimum unsigned-field width that holds `v`.
#[must_use]
pub fn unsigned_bits(v: u32) -> u8 {
    (32 - v.leading_zeros()).max(1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_isa::{Operand2, Reg};

    #[test]
    fn classify_families() {
        let add3 = Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::reg(Reg::R2));
        assert_eq!(classify(&add3), Some(OpKey::DpReg(DpOp::Add, false)));
        let addi = Instr::dp(DpOp::Add, Reg::R0, Reg::R1, Operand2::imm(4).unwrap());
        assert_eq!(classify(&addi), Some(OpKey::DpImm(DpOp::Add, false)));
        let cmp = Instr::cmp(Reg::R0, Operand2::imm(3).unwrap());
        assert_eq!(classify(&cmp), Some(OpKey::CmpImm(DpOp::Cmp)));
        let lsl = Instr::mov(
            Reg::R0,
            Operand2::Reg(Reg::R1, Shift::Imm(ShiftKind::Lsl, 2)),
        );
        assert_eq!(classify(&lsl), Some(OpKey::ShiftImm(ShiftKind::Lsl, false)));
        let ret = Instr::mov(Reg::PC, Operand2::reg(Reg::LR));
        assert_eq!(classify(&ret), Some(OpKey::BranchReg));
        let predmov = Instr::mov(Reg::R0, Operand2::imm(1).unwrap()).with_cond(Cond::Eq);
        assert_eq!(classify(&predmov), Some(OpKey::PredMov(Cond::Eq, true)));
        let ldr = Instr::mem(MemOp::Ldr, Reg::R0, Reg::R1, 8);
        assert_eq!(classify(&ldr), Some(OpKey::Mem(MemOp::Ldr)));
        let b = Instr::b(-4).with_cond(Cond::Ne);
        assert_eq!(classify(&b), Some(OpKey::Branch(Cond::Ne, false)));
    }

    #[test]
    fn width_helpers() {
        assert_eq!(signed_bits(0), 1);
        assert_eq!(signed_bits(-1), 1);
        assert_eq!(signed_bits(1), 2);
        assert_eq!(signed_bits(-2), 2);
        assert_eq!(signed_bits(127), 8);
        assert_eq!(signed_bits(-128), 8);
        assert_eq!(signed_bits(128), 9);
        assert_eq!(unsigned_bits(0), 1);
        assert_eq!(unsigned_bits(1), 1);
        assert_eq!(unsigned_bits(15), 4);
        assert_eq!(unsigned_bits(16), 5);
    }

    #[test]
    fn value_hist_ordering() {
        let mut h = ValueHist::default();
        h.record(10, 5);
        h.record(20, 50);
        h.record(10, 3);
        let top = h.by_dynamic_weight();
        assert_eq!(top[0].0, 20);
        assert_eq!(top[1].0, 10);
        assert_eq!(top[1].1.stat, 2);
        assert_eq!(top[1].1.dyn_, 8);
        assert_eq!(h.distinct(), 2);
        assert_eq!(h.total_dyn(), 58);
        assert_eq!(h.dyn_where(|v| v < 15), 8);
    }

    #[test]
    fn profiles_a_small_program() {
        use fits_isa::Program;
        // r0 = 5; loop: r0 -= 1; bne loop; exit
        let program = Program {
            text: vec![
                Instr::mov(Reg::R0, Operand2::imm(5).unwrap()),
                Instr::Dp {
                    cond: Cond::Al,
                    op: DpOp::Sub,
                    set_flags: true,
                    rd: Reg::R0,
                    rn: Reg::R0,
                    op2: Operand2::imm(1).unwrap(),
                },
                Instr::b(-3).with_cond(Cond::Ne),
                Instr::Swi {
                    cond: Cond::Al,
                    imm: 0,
                },
            ],
            ..Program::default()
        };
        let p = profile(&program).unwrap();
        assert_eq!(p.static_instrs, 4);
        assert_eq!(p.dyn_total, 1 + 5 + 5 + 1);
        assert_eq!(p.exec_counts, vec![1, 5, 5, 1]);
        let subs = p.families[&OpKey::DpImm(DpOp::Sub, true)];
        assert_eq!(subs.stat, 1);
        assert_eq!(subs.dyn_, 5);
        let bne = p.families[&OpKey::Branch(Cond::Ne, false)];
        assert_eq!(bne.dyn_, 5);
        // The sub's rd == rn; it is an imm family though, so rd_eq_rn holds
        // only DpReg entries.
        assert!(p.rd_eq_rn.is_empty());
        assert!(p.regs_used & 1 != 0);
        assert_eq!(p.run.as_ref().unwrap().exit_code, 0);
    }
}
