//! The programmable decoder: what FITS "downloads to non-volatile state"
//! after synthesis (§3.1–3.2 of the paper).
//!
//! A [`DecoderConfig`] fully defines a synthesized 16-bit instruction set:
//! a prefix-free opcode table (each entry pairing a micro-operation template
//! with an operand-field layout), the register organization, and the
//! per-category immediate dictionaries. In the FITS design it is a
//! configuration artifact produced by the compiler and persisted in the
//! processor's programmable decode storage;
//! [`DecoderConfig::config_bits`] reports its size, which the power model
//! charges as decode-path state.

use std::fmt;

use fits_isa::{Cond, DpOp, MemOp, Reg, ShiftKind};

/// A micro-operation template: the datapath operation a synthesized opcode
/// maps onto. The operand *sources* come from the paired [`Layout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MicroOp {
    /// `rc = ra <op> rb` (three-address data processing).
    Dp3 {
        /// Operation.
        op: DpOp,
        /// Update flags.
        set_flags: bool,
    },
    /// `rc = rc <op> rb` (two-address register form; for `MOV`/`MVN`,
    /// `rc = <op> rb`).
    Dp2Reg {
        /// Operation.
        op: DpOp,
        /// Update flags.
        set_flags: bool,
    },
    /// `rc = rc <op> imm` (for `MOV`/`MVN`, `rc = <op> imm`). The immediate
    /// is a zero-extended literal field or a dictionary value, per layout.
    Dp2Imm {
        /// Operation.
        op: DpOp,
        /// Update flags.
        set_flags: bool,
    },
    /// `rc = ra <shift> #amount` where the amount comes from the operand
    /// field (literal) or the shift-amount dictionary (per layout).
    ShiftImm {
        /// Shift kind.
        kind: ShiftKind,
        /// Update flags.
        set_flags: bool,
    },
    /// `rc = rc <shift> rb` (two-address register-amount shift).
    ShiftReg {
        /// Shift kind.
        kind: ShiftKind,
        /// Update flags.
        set_flags: bool,
    },
    /// `<cmp> rc, rb` (flag-only compare against a register).
    CmpReg {
        /// One of CMP/CMN/TST/TEQ.
        op: DpOp,
    },
    /// `<cmp> rc, imm` (literal or dictionary immediate, per layout).
    CmpImm {
        /// One of CMP/CMN/TST/TEQ.
        op: DpOp,
    },
    /// `rc = ra * rb`.
    Mul3,
    /// Load/store `rd, [rb, #disp]`; the displacement field is scaled by
    /// the access size for word/halfword ops and signed for byte ops.
    Mem {
        /// Access kind.
        op: MemOp,
    },
    /// PC-relative branch; displacement in instruction (2-byte) units,
    /// relative to `pc + 4`.
    Branch {
        /// Condition.
        cond: Cond,
        /// Write the return address to the mapped link register.
        link: bool,
    },
    /// Indirect jump: `pc = r[a]`, optionally linking (`jalr`).
    BranchReg {
        /// Write the return address to the mapped link register.
        link: bool,
    },
    /// Predicated register move `mov<cond> rc, rb`.
    PredMovReg {
        /// Condition.
        cond: Cond,
    },
    /// Predicated immediate move `mov<cond> rc, #imm`.
    PredMovImm {
        /// Condition.
        cond: Cond,
    },
    /// Loads an absolute code address from the target dictionary
    /// (`rc = target[idx]`) — the far-branch/far-call glue.
    LoadTarget,
    /// Software interrupt with the trap number in the operand field.
    Swi,
}

/// The operand-field layout of a synthesized opcode: what the bits after
/// the opcode prefix mean. Field widths are synthesis outputs (§3.3's
/// "dynamically reconfigure the total immediate field width and adjust
/// widths of other instruction fields").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layout {
    /// `[rc][ra][rb]` — three register fields.
    R3,
    /// `[rc][rb]` — two register fields.
    R2,
    /// `[rc][imm:w]` — register plus literal immediate.
    R2Imm {
        /// Immediate width.
        w: u8,
    },
    /// `[rc][idx:w]` — register plus dictionary index.
    R2Dict {
        /// Index width.
        w: u8,
    },
    /// `[rc][ra][imm:w]` — two registers plus a literal (shift amounts).
    RRImm {
        /// Immediate width.
        w: u8,
    },
    /// `[rc][ra][idx:w]` — two registers plus a dictionary index.
    RRDict {
        /// Index width.
        w: u8,
    },
    /// `[rd][rb][disp:w]` — memory displacement field.
    MemImm {
        /// Displacement width.
        w: u8,
    },
    /// `[rd][rb][idx:w]` — memory displacement from the dictionary.
    MemDict {
        /// Index width.
        w: u8,
    },
    /// `[disp:w]` — branch displacement (signed).
    Br {
        /// Displacement width.
        w: u8,
    },
    /// `[ra]` — single register.
    R1,
    /// `[num:w]` — trap number.
    Trap {
        /// Number width.
        w: u8,
    },
}

impl Layout {
    /// The layout-kind name in the `powerfits-isa-v1` spec vocabulary
    /// (the `layouts { ... }` list of the FITS spec).
    #[must_use]
    pub fn kind_name(self) -> &'static str {
        match self {
            Layout::R3 => "r3",
            Layout::R2 => "r2",
            Layout::R2Imm { .. } => "r2-imm",
            Layout::R2Dict { .. } => "r2-dict",
            Layout::RRImm { .. } => "rr-imm",
            Layout::RRDict { .. } => "rr-dict",
            Layout::MemImm { .. } => "mem-imm",
            Layout::MemDict { .. } => "mem-dict",
            Layout::Br { .. } => "br",
            Layout::R1 => "r1",
            Layout::Trap { .. } => "trap",
        }
    }

    /// Total operand bits this layout occupies, given the register-field
    /// width `r` (3 or 4).
    #[must_use]
    pub fn operand_bits(self, r: u8) -> u8 {
        match self {
            Layout::R3 => 3 * r,
            Layout::R2 => 2 * r,
            Layout::R2Imm { w } | Layout::R2Dict { w } => r + w,
            Layout::RRImm { w } | Layout::RRDict { w } => 2 * r + w,
            Layout::MemImm { w } | Layout::MemDict { w } => 2 * r + w,
            Layout::Br { w } | Layout::Trap { w } => w,
            Layout::R1 => r,
        }
    }
}

/// One synthesized opcode: a prefix code, its micro-op and its layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpcodeEntry {
    /// The opcode prefix, left-aligned in the 16-bit word (i.e. the
    /// instruction's top `len` bits equal `code >> (16 - len)`).
    pub code: u16,
    /// Prefix length in bits.
    pub len: u8,
    /// Datapath operation.
    pub micro: MicroOp,
    /// Operand layout.
    pub layout: Layout,
    /// Which instruction-set tier placed this opcode (reporting only).
    pub tier: Tier,
}

/// The paper's instruction-set tiers (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Base Instruction Set — present for every application.
    Bis,
    /// Supplemental Instruction Set — keeps the ISA complete (constant
    /// construction, far-jump glue).
    Sis,
    /// Application-specific Instruction Set — chosen by the optimizer.
    Ais,
}

impl Tier {
    /// The tier name in the `powerfits-isa-v1` spec vocabulary (the
    /// `tiers { ... }` list of the FITS spec).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Bis => "bis",
            Tier::Sis => "sis",
            Tier::Ais => "ais",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tier::Bis => "BIS",
            Tier::Sis => "SIS",
            Tier::Ais => "AIS",
        };
        f.write_str(s)
    }
}

/// The register organization: how many architectural registers the 16-bit
/// encodings can name and which physical registers they map to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegMap {
    /// Register-field width (3 or 4 bits).
    pub field_bits: u8,
    /// `map[i]` is the physical register named by encoding `i`.
    pub map: Vec<u8>,
}

impl RegMap {
    /// The identity 16-register organization.
    #[must_use]
    pub fn full() -> RegMap {
        RegMap {
            field_bits: 4,
            map: (0..16).collect(),
        }
    }

    /// Resolves an encoded register field to a physical register.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is outside the window (a malformed encoding).
    #[must_use]
    pub fn phys(&self, idx: u16) -> Reg {
        Reg::new(self.map[idx as usize])
    }

    /// Finds the encoding for a physical register, if it is in the window.
    #[must_use]
    pub fn encode(&self, reg: Reg) -> Option<u16> {
        self.map
            .iter()
            .position(|&p| p == reg.index())
            .map(|i| i as u16)
    }
}

/// The per-category immediate dictionaries (§3.3: category-based immediate
/// synthesis; values live in "programmable, non-volatile memory storage",
/// instructions carry indices).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Dictionaries {
    /// Operate-class immediates (ALU operands, compare values).
    pub operate: Vec<u32>,
    /// Memory displacements (byte units, signed, stored as two's complement).
    pub mem_disp: Vec<u32>,
    /// Shift amounts.
    pub shift: Vec<u32>,
    /// Far-branch/call absolute targets.
    pub target: Vec<u32>,
}

impl Dictionaries {
    /// Looks up a value's index in one dictionary.
    #[must_use]
    pub fn index_of(dict: &[u32], value: u32, width: u8) -> Option<u16> {
        let cap = 1usize << width;
        dict.iter()
            .take(cap)
            .position(|&v| v == value)
            .map(|i| i as u16)
    }

    /// Total entries across all dictionaries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.operate.len() + self.mem_disp.len() + self.shift.len() + self.target.len()
    }
}

/// A complete programmable-decoder configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct DecoderConfig {
    /// The opcode table, sorted by (len, code).
    pub ops: Vec<OpcodeEntry>,
    /// Register organization.
    pub regs: RegMap,
    /// Immediate dictionaries.
    pub dicts: Dictionaries,
}

impl DecoderConfig {
    /// The size of the configuration state in bits: opcode-table CAM/RAM
    /// entries plus dictionary storage plus the register map. This is the
    /// number the power model charges as programmable-decode storage.
    #[must_use]
    pub fn config_bits(&self) -> usize {
        // Each opcode entry: 16-bit prefix/mask pair plus a ~24-bit decoded
        // control word (micro-op selects, field extract controls).
        let table = self.ops.len() * (16 + 16 + 24);
        let dicts = self.dicts.entries() * 32;
        let regs = self.regs.map.len() * 4;
        table + dicts + regs
    }

    /// Verifies the opcode table is prefix-free (no code is a prefix of
    /// another) — the decodability invariant.
    #[must_use]
    pub fn is_prefix_free(&self) -> bool {
        for (i, a) in self.ops.iter().enumerate() {
            for b in self.ops.iter().skip(i + 1) {
                let l = a.len.min(b.len);
                if l == 0 {
                    return false;
                }
                if (a.code >> (16 - l)) == (b.code >> (16 - l)) {
                    return false;
                }
            }
        }
        true
    }

    /// Finds the opcode entry matching a 16-bit instruction word.
    #[must_use]
    pub fn match_word(&self, word: u16) -> Option<&OpcodeEntry> {
        self.ops
            .iter()
            .find(|e| (word >> (16 - u16::from(e.len))) == (e.code >> (16 - u16::from(e.len))))
    }

    /// Looks up the entry for a (micro, layout) pair, if synthesized.
    #[must_use]
    pub fn find(&self, micro: MicroOp, layout: Layout) -> Option<&OpcodeEntry> {
        self.ops
            .iter()
            .find(|e| e.micro == micro && e.layout == layout)
    }

    /// Iterates entries of one tier.
    pub fn tier_ops(&self, tier: Tier) -> impl Iterator<Item = &OpcodeEntry> {
        self.ops.iter().filter(move |e| e.tier == tier)
    }
}

impl fmt::Display for DecoderConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "decoder config: {} opcodes ({} BIS / {} SIS / {} AIS), {} dict entries, {} config bits",
            self.ops.len(),
            self.tier_ops(Tier::Bis).count(),
            self.tier_ops(Tier::Sis).count(),
            self.tier_ops(Tier::Ais).count(),
            self.dicts.entries(),
            self.config_bits()
        )?;
        for e in &self.ops {
            writeln!(
                f,
                "  {:0len$b} ({}) {:?} {:?}",
                e.code >> (16 - u16::from(e.len)),
                e.tier,
                e.micro,
                e.layout,
                len = e.len as usize
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(code: u16, len: u8) -> OpcodeEntry {
        OpcodeEntry {
            code,
            len,
            micro: MicroOp::Dp3 {
                op: DpOp::Add,
                set_flags: false,
            },
            layout: Layout::R3,
            tier: Tier::Bis,
        }
    }

    #[test]
    fn prefix_freedom() {
        let cfg = DecoderConfig {
            ops: vec![
                entry(0b0000 << 12, 4),
                entry(0b0001 << 12, 4),
                entry(0b00100 << 11, 5),
            ],
            regs: RegMap::full(),
            dicts: Dictionaries::default(),
        };
        assert!(cfg.is_prefix_free());

        let bad = DecoderConfig {
            ops: vec![entry(0b0000 << 12, 4), entry(0b00000 << 11, 5)],
            regs: RegMap::full(),
            dicts: Dictionaries::default(),
        };
        assert!(!bad.is_prefix_free());
    }

    #[test]
    fn word_matching() {
        let cfg = DecoderConfig {
            ops: vec![entry(0b0000 << 12, 4), entry(0b0001 << 12, 4)],
            regs: RegMap::full(),
            dicts: Dictionaries::default(),
        };
        let m = cfg.match_word(0b0001_0101_0101_0101).unwrap();
        assert_eq!(m.code, 0b0001 << 12);
        assert!(cfg.match_word(0b1111_0000_0000_0000).is_none());
    }

    #[test]
    fn layout_operand_bits() {
        assert_eq!(Layout::R3.operand_bits(4), 12);
        assert_eq!(Layout::R3.operand_bits(3), 9);
        assert_eq!(Layout::MemImm { w: 4 }.operand_bits(4), 12);
        assert_eq!(Layout::Br { w: 10 }.operand_bits(4), 10);
        assert_eq!(Layout::R2Imm { w: 8 }.operand_bits(4), 12);
    }

    #[test]
    fn reg_map_round_trip() {
        let m = RegMap::full();
        for r in Reg::all() {
            assert_eq!(m.phys(m.encode(r).unwrap()), r);
        }
    }

    #[test]
    fn dictionaries_respect_capacity() {
        let dict = vec![10u32, 20, 30, 40, 50];
        assert_eq!(Dictionaries::index_of(&dict, 30, 3), Some(2));
        assert_eq!(Dictionaries::index_of(&dict, 50, 2), None, "beyond 2^2 cap");
        assert_eq!(Dictionaries::index_of(&dict, 99, 3), None);
    }

    #[test]
    fn config_size_and_display() {
        let cfg = DecoderConfig {
            ops: vec![entry(0, 4)],
            regs: RegMap::full(),
            dicts: Dictionaries {
                operate: vec![1, 2],
                ..Dictionaries::default()
            },
        };
        assert_eq!(cfg.config_bits(), 56 + 2 * 32 + 64);
        assert!(cfg.to_string().contains("decoder config"));
    }
}
