//! The five-stage FITS system design flow (Figure 1): profile → synthesize
//! → compile → configure → execute, with the iterate-on-failure loop the
//! figure draws back from "requirements met?" to the synthesize stage.

use std::fmt;

use fits_isa::spec::{Ar32Tables, SpecCatalog, SpecError};
use fits_isa::Program;
use fits_sim::{Machine, RunOutput, SimError};

use crate::decoder::DecoderConfig;
use crate::exec::{FitsDecodeError, FitsSet};
use crate::profile::{profile_with, Profile};
use crate::synth::{synthesize, SynthOptions, Synthesis};
use crate::translate::{translate, FitsProgram, MappingStats, TranslateError, Translation};

/// Flow failure.
#[derive(Debug)]
pub enum FlowError {
    /// The profiling or verification run failed.
    Sim(SimError),
    /// Translation failed.
    Translate(TranslateError),
    /// The FITS binary failed to decode under its own configuration.
    Decode(FitsDecodeError),
    /// The FITS binary's behaviour diverged from the native program — the
    /// synthesized ISA is unsound (never expected; a hard bug).
    Mismatch {
        /// Native result.
        arm: RunOutput,
        /// FITS result.
        fits: RunOutput,
    },
    /// The mapping-rate floor was not reached within the iteration budget.
    RequirementsNotMet {
        /// Best static 1-to-1 rate achieved.
        best_static_rate: f64,
        /// The floor that was requested.
        floor: f64,
    },
    /// A static validator (see [`FlowValidator`]) rejected the accepted
    /// synthesis/translation pair before execution.
    Verify {
        /// The validator's rendered findings.
        report: String,
    },
    /// The flow's ISA spec catalog does not compile into usable engine
    /// tables (only possible with user-supplied specs).
    Spec(SpecError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sim(e) => write!(f, "simulation failed: {e}"),
            FlowError::Translate(e) => write!(f, "translation failed: {e}"),
            FlowError::Decode(e) => write!(f, "decode failed: {e}"),
            FlowError::Mismatch { arm, fits } => write!(
                f,
                "FITS binary diverged: arm exit {:#x} vs fits exit {:#x}",
                arm.exit_code, fits.exit_code
            ),
            FlowError::RequirementsNotMet {
                best_static_rate,
                floor,
            } => write!(
                f,
                "mapping rate {best_static_rate:.3} below floor {floor:.3} after all iterations"
            ),
            FlowError::Verify { report } => {
                write!(f, "static verification rejected the translation:\n{report}")
            }
            FlowError::Spec(e) => write!(f, "ISA spec rejected: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Sim(e)
    }
}

impl From<TranslateError> for FlowError {
    fn from(e: TranslateError) -> Self {
        FlowError::Translate(e)
    }
}

impl From<FitsDecodeError> for FlowError {
    fn from(e: FitsDecodeError) -> Self {
        FlowError::Decode(e)
    }
}

/// A static analysis hook run on the accepted `(program, synthesis,
/// translation)` triple before the flow executes anything.
///
/// Implemented by `fits-verify`; defined here so the flow can carry a
/// validator without `fits-core` depending on the analysis crate.
pub trait FlowValidator: Send + Sync {
    /// Checks the triple; on rejection returns the rendered findings,
    /// which the flow surfaces as [`FlowError::Verify`].
    ///
    /// # Errors
    ///
    /// Returns the rendered diagnostic report when any analysis finds a
    /// defect.
    fn validate(
        &self,
        program: &Program,
        synthesis: &Synthesis,
        translation: &Translation,
    ) -> Result<(), String>;
}

/// The flow stages an observer can be notified about, in pipeline order.
///
/// `Synthesize` and `Translate` fire once per iteration of the Figure-1
/// feedback loop, so an observer may see several events for the same stage
/// within a single [`FitsFlow::run`]; aggregating observers should merge by
/// [`FlowStage::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FlowStage {
    /// Stage 1: the profiling execution of the native program.
    Profile,
    /// Stage 2: instruction-set synthesis from the profile.
    Synthesize,
    /// Stage 3: translation of the native program to the FITS ISA.
    Translate,
    /// Static verification of the accepted triple (when a
    /// [`FlowValidator`] is installed).
    Verify,
    /// Stage 5: the differential execution of the FITS binary.
    Execute,
}

impl FlowStage {
    /// Stable lower-case stage name, used as the span label in traces.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Profile => "profile",
            FlowStage::Synthesize => "synthesize",
            FlowStage::Translate => "translate",
            FlowStage::Verify => "verify",
            FlowStage::Execute => "execute",
        }
    }
}

/// A timing hook notified once per completed flow stage with the wall-clock
/// time that stage took.
///
/// Implemented by `fits-obs`'s span registry; defined here so the flow can
/// carry an observer without `fits-core` depending on the tracing crate —
/// the same inversion as [`FlowValidator`].
pub trait FlowObserver: Send + Sync {
    /// Called after a stage completes (even when it fails), with its
    /// wall-clock duration.
    fn stage(&self, stage: FlowStage, wall: std::time::Duration);
}

/// A [`FlowObserver`] that fans each stage event out to several observers
/// in order.
///
/// Long-lived hosts need one engine-side observer slot to feed more than
/// one consumer — the `fitsd` daemon tees every stage into both its
/// lifetime span registry and whatever per-request collector is active.
/// Teeing is associative and observation is passive, so the fan-out order
/// only affects event order, never results.
#[derive(Clone, Default)]
pub struct TeeObserver {
    sinks: Vec<std::sync::Arc<dyn FlowObserver>>,
}

impl fmt::Debug for TeeObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeObserver")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TeeObserver {
    /// An empty tee (a valid observer that drops every event).
    #[must_use]
    pub fn new() -> TeeObserver {
        TeeObserver::default()
    }

    /// Builder-style addition of a sink.
    #[must_use]
    pub fn with(mut self, sink: std::sync::Arc<dyn FlowObserver>) -> TeeObserver {
        self.sinks.push(sink);
        self
    }
}

impl FlowObserver for TeeObserver {
    fn stage(&self, stage: FlowStage, wall: std::time::Duration) {
        for sink in &self.sinks {
            sink.stage(stage, wall);
        }
    }
}

/// The FITS design flow driver.
///
/// ```
/// use fits_core::FitsFlow;
/// use fits_kernels::kernels::{Kernel, Scale};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Kernel::Crc32.compile(Scale::test())?;
/// let outcome = FitsFlow::new().run(&program)?;
/// assert!(outcome.mapping.static_one_to_one_rate() > 0.9);
/// assert!(outcome.fits.code_bytes() * 2 <= program.code_bytes() + 64);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct FitsFlow {
    /// Synthesis options for the first iteration.
    pub options: SynthOptions,
    /// Static mapping-rate floor; below it the flow iterates with a larger
    /// dictionary budget (the Figure-1 feedback arrow).
    pub min_static_rate: f64,
    /// Maximum synthesize→verify iterations.
    pub max_iterations: usize,
    /// Verify the FITS binary functionally against the profiling run
    /// (differential execution). Disable only for coverage probes.
    pub verify: bool,
    /// Optional static validator run on the accepted triple before any
    /// FITS execution (`fits_verify::verified_flow()` installs one).
    pub validator: Option<std::sync::Arc<dyn FlowValidator>>,
    /// Optional stage-timing observer (`fits-obs`'s span registry installs
    /// one). `None` costs one branch per stage; results are unaffected
    /// either way.
    pub observer: Option<std::sync::Arc<dyn FlowObserver>>,
    /// The ISA spec catalog the flow resolves against. Default is the
    /// shipped catalog; serving swaps in user-supplied specs per request.
    /// The catalog's content hash is stamped into [`FlowOutcome::isa_hash`].
    pub isa: std::sync::Arc<SpecCatalog>,
}

impl fmt::Debug for FitsFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FitsFlow")
            .field("options", &self.options)
            .field("min_static_rate", &self.min_static_rate)
            .field("max_iterations", &self.max_iterations)
            .field("verify", &self.verify)
            .field("validator", &self.validator.as_ref().map(|_| "<dyn>"))
            .field("observer", &self.observer.as_ref().map(|_| "<dyn>"))
            .field("isa", &self.isa.hash_hex())
            .finish()
    }
}

impl Default for FitsFlow {
    fn default() -> Self {
        FitsFlow {
            options: SynthOptions::default(),
            min_static_rate: 0.85,
            max_iterations: 3,
            verify: true,
            validator: None,
            observer: None,
            isa: std::sync::Arc::new(SpecCatalog::default()),
        }
    }
}

/// Everything the flow produced.
#[derive(Clone, Debug)]
pub struct FlowOutcome {
    /// Stage-1 profile.
    pub profile: Profile,
    /// Stage-2 synthesis (of the accepted iteration).
    pub synthesis: Synthesis,
    /// The FITS binary (stage 3/4: compiled and configured).
    pub fits: FitsProgram,
    /// Mapping statistics.
    pub mapping: MappingStats,
    /// Stage-5 verification run of the FITS binary (when enabled).
    pub fits_run: Option<RunOutput>,
    /// Iterations used.
    pub iterations: usize,
    /// Content hash of the ISA spec catalog the flow resolved against
    /// (three concatenated 16-hex-digit FNV-1a hashes: AR32, T16, FITS).
    pub isa_hash: String,
}

impl FlowOutcome {
    /// The dynamic 1-to-1 mapping rate (Figure 4's metric).
    #[must_use]
    pub fn dynamic_rate(&self) -> f64 {
        self.mapping
            .dynamic_one_to_one_rate(&self.profile.exec_counts)
    }

    /// Code-size ratio versus the native program (Figure 5's metric),
    /// given the native size in bytes.
    #[must_use]
    pub fn code_ratio(&self, native_bytes: usize) -> f64 {
        self.fits.code_bytes() as f64 / native_bytes as f64
    }

    /// The final decoder configuration.
    #[must_use]
    pub fn config(&self) -> &DecoderConfig {
        &self.fits.config
    }
}

impl FitsFlow {
    /// A flow with default options.
    #[must_use]
    pub fn new() -> FitsFlow {
        FitsFlow::default()
    }

    /// Builder-style override of the synthesis options.
    #[must_use]
    pub fn with_options(mut self, options: SynthOptions) -> FitsFlow {
        self.options = options;
        self
    }

    /// Builder-style installation of a stage-timing observer.
    #[must_use]
    pub fn with_observer(mut self, observer: std::sync::Arc<dyn FlowObserver>) -> FitsFlow {
        self.observer = Some(observer);
        self
    }

    /// Runs the full flow on a native program.
    ///
    /// # Errors
    ///
    /// See [`FlowError`]; `Mismatch` indicates a synthesis soundness bug
    /// and is checked on every run when `verify` is on.
    pub fn run(&self, program: &Program) -> Result<FlowOutcome, FlowError> {
        // Resolve the AR32 spec into encode tables. With the shipped
        // catalog this is the statically-compiled table; a user-supplied
        // spec compiles here (and a bad one fails before anything runs).
        let owned;
        let tables: &Ar32Tables = if self.isa.is_builtin() {
            Ar32Tables::builtin()
        } else {
            owned = Ar32Tables::from_spec(&self.isa.ar32).map_err(FlowError::Spec)?;
            &owned
        };
        // Stage 1: profile.
        let prof = self.timed(FlowStage::Profile, || profile_with(program, tables))?;
        self.run_profiled(program, prof)
    }

    /// Runs `f`, reporting its wall-clock time to the observer (if any)
    /// under `stage`. With no observer this is a direct call.
    fn timed<T>(&self, stage: FlowStage, f: impl FnOnce() -> T) -> T {
        match &self.observer {
            Some(obs) => {
                let start = std::time::Instant::now();
                let out = f();
                obs.stage(stage, start.elapsed());
                out
            }
            None => f(),
        }
    }

    /// Runs stages 2–5 from an existing stage-1 profile, avoiding a
    /// redundant profiling execution when the caller already holds one
    /// (sweep harnesses profile each program once and synthesize many
    /// configurations from it).
    ///
    /// `prof` must be the output of [`profile`] on this same `program`: it
    /// carries the reference [`RunOutput`] the differential verification
    /// compares against.
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn run_profiled(&self, program: &Program, prof: Profile) -> Result<FlowOutcome, FlowError> {
        let mut opts = self.options.clone();
        let mut best: Option<(Synthesis, Translation)> = None;
        let mut iterations = 0;
        for round in 0..self.max_iterations.max(1) {
            iterations = round + 1;
            // Stage 2: synthesize.
            let synthesis = self.timed(FlowStage::Synthesize, || synthesize(&prof, &opts));
            // Stage 3: compile (translate).
            let translation = self.timed(FlowStage::Translate, || {
                translate(program, &synthesis.config)
            })?;
            let rate = translation.stats.static_one_to_one_rate();
            let better = best
                .as_ref()
                .is_none_or(|(_, t)| rate > t.stats.static_one_to_one_rate());
            if better {
                best = Some((synthesis, translation));
            }
            if rate >= self.min_static_rate {
                break;
            }
            // Iterate: widen the dictionaries (cheapest corrective lever).
            opts.max_dict_bits = (opts.max_dict_bits + 1).min(8);
        }
        let (synthesis, translation) = best.expect("at least one iteration ran");
        let rate = translation.stats.static_one_to_one_rate();
        if rate < self.min_static_rate {
            return Err(FlowError::RequirementsNotMet {
                best_static_rate: rate,
                floor: self.min_static_rate,
            });
        }

        // Static verification of the accepted triple, before anything runs.
        if let Some(validator) = &self.validator {
            let verdict = self.timed(FlowStage::Verify, || {
                validator.validate(program, &synthesis, &translation)
            });
            if let Err(report) = verdict {
                return Err(FlowError::Verify { report });
            }
        }

        // Stage 4/5: configure the decoder (pre-decode) and execute.
        let fits_run = if self.verify {
            let run = self.timed(FlowStage::Execute, || {
                let set = FitsSet::load(&translation.fits)?;
                let mut machine = Machine::new(set);
                machine.run().map_err(FlowError::from)
            })?;
            let arm = prof.run.as_ref().expect("profiling run recorded");
            if run.exit_code != arm.exit_code || run.emitted != arm.emitted {
                return Err(FlowError::Mismatch {
                    arm: *arm,
                    fits: run,
                });
            }
            Some(run)
        } else {
            None
        };

        Ok(FlowOutcome {
            profile: prof,
            synthesis,
            fits: translation.fits,
            mapping: translation.stats,
            fits_run,
            iterations,
            isa_hash: self.isa.hash_hex(),
        })
    }
}

/// Compile-time contract: flow handles cross threads.
///
/// Long-lived multi-threaded consumers (the bench suite runner, the `fitsd`
/// daemon) share one configured [`FitsFlow`] and hand [`FlowOutcome`]s
/// between worker threads — which only stays true as long as every trait
/// object the flow can carry ([`FlowValidator`], [`FlowObserver`]) keeps
/// its `Send + Sync` supertrait bounds. These assertions turn an
/// accidental regression of that contract into a compile error here,
/// instead of a trait-bound error three crates downstream.
#[allow(dead_code)]
const _FLOW_HANDLES_ARE_SEND_SYNC: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FitsFlow>();
    assert_send_sync::<FlowOutcome>();
    assert_send_sync::<FlowError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use fits_kernels::kernels::{Kernel, Scale};

    #[test]
    fn flow_runs_end_to_end_and_verifies() {
        let program = Kernel::AdpcmEnc.compile(Scale::test()).unwrap();
        let out = FitsFlow::new().run(&program).unwrap();
        assert!(out.fits_run.is_some());
        assert!(out.mapping.static_one_to_one_rate() > 0.9);
        assert!(out.dynamic_rate() > 0.9);
        assert!(out.code_ratio(program.code_bytes()) < 0.6);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn flow_reports_unreachable_floor() {
        let program = Kernel::Crc32.compile(Scale::test()).unwrap();
        let flow = FitsFlow {
            min_static_rate: 1.1, // impossible
            max_iterations: 2,
            ..FitsFlow::default()
        };
        match flow.run(&program) {
            Err(FlowError::RequirementsNotMet { .. }) => {}
            other => panic!("expected RequirementsNotMet, got {other:?}"),
        }
    }

    #[test]
    fn observer_sees_every_stage_without_changing_results() {
        use std::sync::{Arc, Mutex};
        use std::time::Duration;

        #[derive(Default)]
        struct Recorder(Mutex<Vec<&'static str>>);
        impl FlowObserver for Recorder {
            fn stage(&self, stage: FlowStage, _wall: Duration) {
                self.0
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(stage.name());
            }
        }

        let program = Kernel::Crc32.compile(Scale::test()).unwrap();
        let recorder = Arc::new(Recorder::default());
        let observed = FitsFlow::new()
            .with_observer(Arc::clone(&recorder) as Arc<dyn FlowObserver>)
            .run(&program)
            .unwrap();
        let plain = FitsFlow::new().run(&program).unwrap();

        let stages = recorder
            .0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        assert_eq!(stages, ["profile", "synthesize", "translate", "execute"]);
        // Observation is passive: the outcome matches an unobserved flow.
        assert_eq!(observed.fits.instrs, plain.fits.instrs);
        assert_eq!(observed.iterations, plain.iterations);
        assert_eq!(observed.fits_run, plain.fits_run);
    }

    #[test]
    fn verification_can_be_disabled() {
        let program = Kernel::Crc32.compile(Scale::test()).unwrap();
        let flow = FitsFlow {
            verify: false,
            ..FitsFlow::default()
        };
        let out = flow.run(&program).unwrap();
        assert!(out.fits_run.is_none());
    }
}
