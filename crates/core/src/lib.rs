//! # fits-core — FITS instruction-set synthesis
//!
//! The paper's contribution: Framework-based Instruction-set Tuning
//! Synthesis. Given a program compiled for the native 32-bit AR32 ISA,
//! this crate
//!
//! 1. **profiles** it ([`profile`]) — opcode families, immediate and
//!    displacement distributions, condition-code usage, register pressure,
//!    2-vs-3-operand feasibility;
//! 2. **synthesizes** a 16-bit application-specific instruction set
//!    ([`synth`]) as a prefix-free variable-length opcode space with
//!    per-category immediate dictionaries, organized in the paper's
//!    BIS/SIS/AIS tiers;
//! 3. **translates** the native binary 1-to-1/1-to-n into the synthesized
//!    ISA ([`translate`]) with branch relaxation;
//! 4. models the **programmable decoder** ([`decoder`]) that the synthesized
//!    configuration is "downloaded" to; and
//! 5. **executes** the 16-bit binary ([`exec`]) on the same simulated
//!    datapath as the native ISA, which is what makes differential
//!    verification and the paper's I-cache power comparison possible.
//!
//! [`FitsFlow`] drives the five stages end to end (the paper's Figure 1),
//! including the iterate-until-requirements-met loop.
//!
//! ## Example
//!
//! ```
//! use fits_core::FitsFlow;
//! use fits_kernels::kernels::{Kernel, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Kernel::Crc32.compile(Scale::test())?;
//! let outcome = FitsFlow::new().run(&program)?;
//! println!(
//!     "static 1:1 {:.1}%  dynamic 1:1 {:.1}%  code ratio {:.2}",
//!     100.0 * outcome.mapping.static_one_to_one_rate(),
//!     100.0 * outcome.dynamic_rate(),
//!     outcome.code_ratio(program.code_bytes()),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod decoder;
pub mod exec;
pub mod flow;
pub mod merge;
pub mod multi;
pub mod profile;
pub mod synth;
pub mod translate;

pub use decoder::{DecoderConfig, Dictionaries, Layout, MicroOp, OpcodeEntry, RegMap, Tier};
pub use exec::{decode_word, disassemble, op_meta, FitsOp, FitsSet};
pub use flow::{
    FitsFlow, FlowError, FlowObserver, FlowOutcome, FlowStage, FlowValidator, TeeObserver,
};
pub use merge::{
    canonical_text, canonical_weights, profile_hash, CanonicalWeights, MergeError, Merged,
};
pub use multi::{
    pareto_frontier, synthesize_multi, MemberOutcome, MultiError, MultiMember, MultiOptions,
    MultiOutcome,
};
pub use profile::{profile, profile_with, OpKey, Profile};
pub use synth::{synthesize, SynthOptions, Synthesis};
pub use translate::{translate, FitsProgram, MappingStats, TranslateError, Translation};
