//! Deterministic weighted profile merging — the front half of
//! multi-application synthesis.
//!
//! PowerFITS synthesizes one ISA per application; a real deployment shares
//! one programmable decoder across a product's whole workload. The merge
//! builds the *union requirement analysis*: every per-family counter,
//! histogram entry and operand-shape fact of the member profiles, combined
//! under a workload-mix weight vector. Because [`Profile`]'s tables are
//! `BTreeMap`s (the PR-5 determinism invariant), a merged profile is a pure
//! function of its inputs and serializes canonically — which is what lets
//! merged-profile synthesis feed the content-addressed serving cache.
//!
//! ## Weight canonicalization
//!
//! Weights arrive as arbitrary non-negative `f64`s and are canonicalized to
//! the smallest proportional integer vector: every weight is scaled by
//! `10^6 / min_positive_weight`, rounded, and the vector is divided by its
//! collective gcd. Proportional vectors therefore canonicalize identically
//! — `{1,1}`, `{2,2}` and `{0.5,0.5}` all become `{1,1}` — so equal mixes
//! hash to equal cache keys. Ratios are resolved to one part in `10^6`
//! relative to the smallest positive weight.
//!
//! ## Merge arithmetic
//!
//! Every integer quantity of the merged profile is the exact weighted sum
//! `Σ wᵢ·qᵢ` (accumulated in `u128`, so no overflow for any sane input),
//! after which the *whole* quantity vector is divided by its collective
//! gcd. The final gcd division makes the result scale-canonical: merging
//! with `{k·w}` equals merging with `{w}` for any `k`, and merging a
//! profile with itself equals merging it alone (the self-merge identity).
//! Synthesis itself is invariant under uniform scaling of the dynamic
//! counts (it consumes shares, ranks and rates), so the canonical units
//! change nothing downstream.
//!
//! Per-program artifacts that have no meaning for a kernel *set* —
//! `exec_counts` and the reference `run` — are dropped from the merged
//! profile (empty and `None` respectively).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use fits_isa::{Cond, MemOp, ShiftKind};

use crate::profile::{OpKey, Profile, Stat, ValueHist};

/// Resolution of the weight canonicalization: ratios are kept to one part
/// in `10^6` of the smallest positive weight.
pub const WEIGHT_RESOLUTION: u64 = 1_000_000;

/// Largest accepted ratio between the largest and smallest positive
/// weight. Beyond this the scaled integer weights would overflow the exact
/// merge arithmetic; such vectors are rejected as [`MergeError::Unbalanced`].
pub const MAX_WEIGHT_RATIO: f64 = 1e9;

/// Typed weight/merge failures (never panics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No members were given.
    Empty,
    /// The weight vector length does not match the member count.
    WeightCount {
        /// Number of member profiles.
        members: usize,
        /// Number of weights supplied.
        weights: usize,
    },
    /// A weight is NaN or infinite.
    NonFinite {
        /// Index of the offending weight.
        index: usize,
    },
    /// A weight is negative.
    Negative {
        /// Index of the offending weight.
        index: usize,
    },
    /// Every weight is zero: there is no workload to merge.
    AllZero,
    /// The ratio between the largest and smallest positive weight exceeds
    /// [`MAX_WEIGHT_RATIO`].
    Unbalanced {
        /// Index of the offending weight.
        index: usize,
    },
    /// A merged quantity does not fit in 64 bits even after gcd reduction.
    Overflow,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no member profiles to merge"),
            MergeError::WeightCount { members, weights } => {
                write!(f, "{weights} weights for {members} member profiles")
            }
            MergeError::NonFinite { index } => {
                write!(f, "weight {index} is not a finite number")
            }
            MergeError::Negative { index } => write!(f, "weight {index} is negative"),
            MergeError::AllZero => write!(f, "all weights are zero"),
            MergeError::Unbalanced { index } => write!(
                f,
                "weight {index} exceeds {MAX_WEIGHT_RATIO:e} times the smallest positive weight"
            ),
            MergeError::Overflow => write!(f, "merged counters exceed 64 bits"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A validated, canonicalized weight vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalWeights {
    /// Canonical integer weights, aligned with the input vector.
    /// Zero-weight members keep a `0` entry here (and appear in
    /// [`CanonicalWeights::dropped`]).
    pub weights: Vec<u64>,
    /// Input indices dropped for zero weight — surfaced to callers as a
    /// warning, not an error.
    pub dropped: Vec<usize>,
}

/// Validates and canonicalizes a weight vector (see the module docs for
/// the scheme). Proportional vectors canonicalize identically.
///
/// # Errors
///
/// [`MergeError::Empty`], [`MergeError::NonFinite`],
/// [`MergeError::Negative`], [`MergeError::AllZero`] or
/// [`MergeError::Unbalanced`] — all typed, never a panic.
pub fn canonical_weights(weights: &[f64]) -> Result<CanonicalWeights, MergeError> {
    if weights.is_empty() {
        return Err(MergeError::Empty);
    }
    for (index, &w) in weights.iter().enumerate() {
        if !w.is_finite() {
            return Err(MergeError::NonFinite { index });
        }
        if w < 0.0 {
            return Err(MergeError::Negative { index });
        }
    }
    let min_pos = weights
        .iter()
        .copied()
        .filter(|w| *w > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !min_pos.is_finite() {
        return Err(MergeError::AllZero);
    }
    for (index, &w) in weights.iter().enumerate() {
        if w / min_pos > MAX_WEIGHT_RATIO {
            return Err(MergeError::Unbalanced { index });
        }
    }
    let mut scaled: Vec<u64> = Vec::with_capacity(weights.len());
    let mut dropped = Vec::new();
    for (index, &w) in weights.iter().enumerate() {
        if w == 0.0 {
            scaled.push(0);
            dropped.push(index);
        } else {
            // w >= min_pos, so the scaled weight is at least 10^6: positive
            // members can never round down to zero.
            let s = (w / min_pos * WEIGHT_RESOLUTION as f64).round() as u64;
            scaled.push(s);
        }
    }
    let g = scaled.iter().fold(0u64, |acc, &w| gcd_u64(acc, w)).max(1);
    for w in &mut scaled {
        *w /= g;
    }
    Ok(CanonicalWeights {
        weights: scaled,
        dropped,
    })
}

fn gcd_u64(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd_u64(b, a % b)
    }
}

fn gcd_u128(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The merge result.
#[derive(Clone, Debug)]
pub struct Merged {
    /// The merged union profile (canonical relative units; `exec_counts`
    /// empty, `run` `None`).
    pub profile: Profile,
    /// Canonical integer weights, aligned with the input member order
    /// (zero for dropped members).
    pub weights: Vec<u64>,
    /// Input indices dropped for zero weight (warnings, not errors).
    pub dropped: Vec<usize>,
    /// The collective gcd divided out of the weighted sums. Composing
    /// merges associatively requires re-weighting an inner result by its
    /// `scale` — and because canonicalization divides each weight vector
    /// by its *own* gcd, exact composition additionally requires the
    /// inner mix to be gcd-free (e.g. uniform). See the merge-algebra
    /// property tests.
    pub scale: u64,
}

/// Weighted-sum accumulator in 128 bits: exact for any sane input.
#[derive(Default)]
struct Acc {
    static_instrs: u128,
    dyn_total: u128,
    unclassified: (u128, u128),
    families: BTreeMap<OpKey, (u128, u128)>,
    operate_imms: BTreeMap<OpKey, HashMap<u32, (u128, u128)>>,
    mem_disps: BTreeMap<MemOp, HashMap<u32, (u128, u128)>>,
    shift_amounts: BTreeMap<ShiftKind, HashMap<u32, (u128, u128)>>,
    branch_disps: BTreeMap<(Cond, bool), HashMap<u32, (u128, u128)>>,
    rd_eq_rn: BTreeMap<OpKey, (u128, u128)>,
    regs_used: u16,
    pred_conds: BTreeSet<Cond>,
    shift_kinds: BTreeSet<ShiftKind>,
}

fn absorb_hist(into: &mut HashMap<u32, (u128, u128)>, hist: &ValueHist, w: u128) {
    for (value, s) in hist.by_dynamic_weight() {
        let e = into.entry(value).or_default();
        e.0 += u128::from(s.stat) * w;
        e.1 += u128::from(s.dyn_) * w;
    }
}

impl Acc {
    fn absorb(&mut self, p: &Profile, w: u128) {
        self.static_instrs += p.static_instrs as u128 * w;
        self.dyn_total += u128::from(p.dyn_total) * w;
        self.unclassified.0 += u128::from(p.unclassified.stat) * w;
        self.unclassified.1 += u128::from(p.unclassified.dyn_) * w;
        for (key, s) in &p.families {
            let e = self.families.entry(*key).or_default();
            e.0 += u128::from(s.stat) * w;
            e.1 += u128::from(s.dyn_) * w;
        }
        for (key, hist) in &p.operate_imms {
            absorb_hist(self.operate_imms.entry(*key).or_default(), hist, w);
        }
        for (op, hist) in &p.mem_disps {
            absorb_hist(self.mem_disps.entry(*op).or_default(), hist, w);
        }
        for (kind, hist) in &p.shift_amounts {
            absorb_hist(self.shift_amounts.entry(*kind).or_default(), hist, w);
        }
        for (key, hist) in &p.branch_disps {
            absorb_hist(self.branch_disps.entry(*key).or_default(), hist, w);
        }
        for (key, (eq, total)) in &p.rd_eq_rn {
            let e = self.rd_eq_rn.entry(*key).or_default();
            e.0 += u128::from(*eq) * w;
            e.1 += u128::from(*total) * w;
        }
        self.regs_used |= p.regs_used;
        self.pred_conds.extend(p.pred_conds.iter().copied());
        self.shift_kinds.extend(p.shift_kinds.iter().copied());
    }

    /// The collective gcd over every accumulated quantity.
    fn collective_gcd(&self) -> u128 {
        let mut g = gcd_u128(self.static_instrs, self.dyn_total);
        g = gcd_u128(g, self.unclassified.0);
        g = gcd_u128(g, self.unclassified.1);
        let pairs = |g: u128, m: &HashMap<u32, (u128, u128)>| {
            m.values()
                .fold(g, |g, (a, b)| gcd_u128(gcd_u128(g, *a), *b))
        };
        for (a, b) in self.families.values().chain(self.rd_eq_rn.values()) {
            g = gcd_u128(gcd_u128(g, *a), *b);
        }
        for m in self.operate_imms.values() {
            g = pairs(g, m);
        }
        for m in self.mem_disps.values() {
            g = pairs(g, m);
        }
        for m in self.shift_amounts.values() {
            g = pairs(g, m);
        }
        for m in self.branch_disps.values() {
            g = pairs(g, m);
        }
        g.max(1)
    }
}

fn narrow(v: u128, g: u128) -> Result<u64, MergeError> {
    u64::try_from(v / g).map_err(|_| MergeError::Overflow)
}

fn narrow_hist(m: &HashMap<u32, (u128, u128)>, g: u128) -> Result<ValueHist, MergeError> {
    let mut hist = ValueHist::default();
    for (value, (stat, dyn_)) in m {
        hist.record_weighted(
            *value,
            Stat {
                stat: narrow(*stat, g)?,
                dyn_: narrow(*dyn_, g)?,
            },
        );
    }
    Ok(hist)
}

impl Profile {
    /// Merges member profiles under a workload-mix weight vector into one
    /// union requirement analysis (see the module docs of
    /// [`crate::merge`] for canonicalization and arithmetic).
    ///
    /// Zero-weight members are dropped (reported in [`Merged::dropped`]);
    /// the result is identical for proportional weight vectors; merging is
    /// commutative, associative under `scale` re-weighting, and idempotent
    /// on a single profile.
    ///
    /// # Errors
    ///
    /// Typed [`MergeError`]s for an empty member set, invalid weights
    /// (negative, non-finite, all-zero, pathologically unbalanced) or
    /// 64-bit overflow of the reduced counters. Never panics.
    pub fn merge_weighted(members: &[(&Profile, f64)]) -> Result<Merged, MergeError> {
        let weights: Vec<f64> = members.iter().map(|(_, w)| *w).collect();
        let canon = canonical_weights(&weights)?;

        let mut acc = Acc::default();
        for ((p, _), &w) in members.iter().zip(&canon.weights) {
            if w > 0 {
                acc.absorb(p, u128::from(w));
            }
        }
        let g = acc.collective_gcd();

        let mut profile = Profile {
            static_instrs: usize::try_from(narrow(acc.static_instrs, g)?)
                .map_err(|_| MergeError::Overflow)?,
            dyn_total: narrow(acc.dyn_total, g)?,
            exec_counts: Vec::new(),
            unclassified: Stat {
                stat: narrow(acc.unclassified.0, g)?,
                dyn_: narrow(acc.unclassified.1, g)?,
            },
            regs_used: acc.regs_used,
            pred_conds: acc.pred_conds,
            shift_kinds: acc.shift_kinds,
            run: None,
            ..Profile::default()
        };
        for (key, (stat, dyn_)) in &acc.families {
            profile.families.insert(
                *key,
                Stat {
                    stat: narrow(*stat, g)?,
                    dyn_: narrow(*dyn_, g)?,
                },
            );
        }
        for (key, m) in &acc.operate_imms {
            profile.operate_imms.insert(*key, narrow_hist(m, g)?);
        }
        for (op, m) in &acc.mem_disps {
            profile.mem_disps.insert(*op, narrow_hist(m, g)?);
        }
        for (kind, m) in &acc.shift_amounts {
            profile.shift_amounts.insert(*kind, narrow_hist(m, g)?);
        }
        for (key, m) in &acc.branch_disps {
            profile.branch_disps.insert(*key, narrow_hist(m, g)?);
        }
        for (key, (eq, total)) in &acc.rd_eq_rn {
            profile
                .rd_eq_rn
                .insert(*key, (narrow(*eq, g)?, narrow(*total, g)?));
        }

        Ok(Merged {
            profile,
            weights: canon.weights,
            dropped: canon.dropped,
            scale: u64::try_from(g).map_err(|_| MergeError::Overflow)?,
        })
    }
}

/// Canonical text serialization of a profile's synthesis-relevant
/// requirement tables (everything [`Profile::merge_weighted`] merges;
/// excludes the per-program `exec_counts` and reference `run`).
///
/// Deterministic by construction: every table is a `BTreeMap`/`BTreeSet`
/// and histograms are dumped in ascending value order. Two profiles with
/// equal requirement analyses serialize identically.
#[must_use]
pub fn canonical_text(p: &Profile) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "static_instrs {}", p.static_instrs);
    let _ = writeln!(out, "dyn_total {}", p.dyn_total);
    let _ = writeln!(
        out,
        "unclassified {} {}",
        p.unclassified.stat, p.unclassified.dyn_
    );
    for (key, s) in &p.families {
        let _ = writeln!(out, "family {key:?} {} {}", s.stat, s.dyn_);
    }
    let hist_lines = |out: &mut String, label: &str, hist: &ValueHist| {
        let mut entries = hist.by_dynamic_weight();
        entries.sort_by_key(|(v, _)| *v);
        for (v, s) in entries {
            let _ = writeln!(out, "{label} {v} {} {}", s.stat, s.dyn_);
        }
    };
    for (key, hist) in &p.operate_imms {
        hist_lines(&mut out, &format!("operate {key:?}"), hist);
    }
    for (op, hist) in &p.mem_disps {
        hist_lines(&mut out, &format!("mem {op:?}"), hist);
    }
    for (kind, hist) in &p.shift_amounts {
        hist_lines(&mut out, &format!("shift {kind:?}"), hist);
    }
    for (key, hist) in &p.branch_disps {
        hist_lines(&mut out, &format!("branch {key:?}"), hist);
    }
    for (key, (eq, total)) in &p.rd_eq_rn {
        let _ = writeln!(out, "rd_eq_rn {key:?} {eq} {total}");
    }
    let _ = writeln!(out, "regs_used {:#06x}", p.regs_used);
    let _ = writeln!(out, "pred_conds {:?}", p.pred_conds);
    let _ = writeln!(out, "shift_kinds {:?}", p.shift_kinds);
    out
}

/// FNV-1a 64 content hash of [`canonical_text`], as 16 hex digits — the
/// merged-profile half of the multi-synthesis cache key, and the
/// provenance hash stamped into `PARETO.json` meta.
#[must_use]
pub fn profile_hash(p: &Profile) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in canonical_text(p).as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use fits_kernels::kernels::{Kernel, Scale};

    fn p(kernel: Kernel) -> Profile {
        profile(&kernel.compile(Scale::test()).unwrap()).unwrap()
    }

    #[test]
    fn proportional_weight_vectors_canonicalize_identically() {
        for ws in [&[1.0, 1.0][..], &[2.0, 2.0], &[0.5, 0.5], &[7.0, 7.0]] {
            assert_eq!(canonical_weights(ws).unwrap().weights, vec![1, 1]);
        }
        assert_eq!(canonical_weights(&[1.0, 2.0]).unwrap().weights, vec![1, 2]);
        assert_eq!(canonical_weights(&[0.5, 1.0]).unwrap().weights, vec![1, 2]);
        assert_eq!(
            canonical_weights(&[1.0, 1.5]).unwrap().weights,
            vec![2, 3],
            "fractional ratios reduce to the smallest integer vector"
        );
    }

    #[test]
    fn weight_edge_cases_are_typed_errors() {
        assert_eq!(canonical_weights(&[]), Err(MergeError::Empty));
        assert_eq!(
            canonical_weights(&[0.0, 0.0]),
            Err(MergeError::AllZero),
            "all-zero is an error, not a panic"
        );
        assert_eq!(
            canonical_weights(&[1.0, -2.0]),
            Err(MergeError::Negative { index: 1 })
        );
        assert_eq!(
            canonical_weights(&[f64::NAN, 1.0]),
            Err(MergeError::NonFinite { index: 0 })
        );
        assert_eq!(
            canonical_weights(&[1.0, f64::INFINITY]),
            Err(MergeError::NonFinite { index: 1 })
        );
        assert_eq!(
            canonical_weights(&[1.0, 1e12]),
            Err(MergeError::Unbalanced { index: 1 })
        );
    }

    #[test]
    fn zero_weight_members_are_dropped_with_a_warning() {
        let a = p(Kernel::Crc32);
        let b = p(Kernel::Bitcount);
        let merged = Profile::merge_weighted(&[(&a, 1.0), (&b, 0.0)]).unwrap();
        assert_eq!(merged.dropped, vec![1]);
        assert_eq!(merged.weights, vec![1, 0]);
        let solo = Profile::merge_weighted(&[(&a, 1.0)]).unwrap();
        assert_eq!(
            canonical_text(&merged.profile),
            canonical_text(&solo.profile),
            "a zero-weight member must contribute nothing"
        );
    }

    #[test]
    fn merge_is_deterministic_and_weight_scale_invariant() {
        let a = p(Kernel::Crc32);
        let b = p(Kernel::Bitcount);
        let one = Profile::merge_weighted(&[(&a, 1.0), (&b, 1.0)]).unwrap();
        let two = Profile::merge_weighted(&[(&a, 2.0), (&b, 2.0)]).unwrap();
        assert_eq!(
            canonical_text(&one.profile),
            canonical_text(&two.profile),
            "{{1,1}} and {{2,2}} must merge identically"
        );
        assert_eq!(profile_hash(&one.profile), profile_hash(&two.profile));
        // And the merged profile is the union: every family of each member
        // appears.
        for key in a.families.keys().chain(b.families.keys()) {
            assert!(one.profile.families.contains_key(key), "{key:?}");
        }
    }

    #[test]
    fn merged_profile_drops_per_program_artifacts() {
        let a = p(Kernel::Crc32);
        let merged = Profile::merge_weighted(&[(&a, 1.0), (&p(Kernel::Sha), 3.0)]).unwrap();
        assert!(merged.profile.exec_counts.is_empty());
        assert!(merged.profile.run.is_none());
    }
}
