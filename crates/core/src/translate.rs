//! ARM→FITS translation (stage 3 of the Figure-1 flow — "compile").
//!
//! Rewrites an AR32 program into the synthesized 16-bit instruction set.
//! Each ARM instruction maps **1-to-1** when the decoder config has a
//! matching opcode whose fields can hold the operands, and **1-to-n**
//! otherwise (§6.1: "in theory, n could be any number ranging from 2 to 4;
//! however, in practice, n = 2 is almost always the case"). Expansions use
//! `r12`/`ip` — the intra-procedure scratch register the kernel compiler
//! reserves — exactly as a dual-ISA linker veneer would.
//!
//! Branches are re-linked to FITS positions with iterative relaxation:
//! out-of-range conditional branches become inverse-condition hops over an
//! unconditional branch, and far calls go through the target dictionary
//! (`movd ip, =target ; jalr ip`).

use std::fmt;

use fits_isa::{
    AddrOffset, Cond, DpOp, Instr, MemOp, Operand2, Program, Reg, Shift, ShiftKind, TEXT_BASE,
};

use crate::decoder::{DecoderConfig, Dictionaries, Layout, MicroOp, OpcodeEntry};
use crate::synth::mem_lit_fits;

/// Translation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// A register used by the program is not in the synthesized window.
    RegisterOutsideWindow {
        /// The physical register.
        reg: u8,
        /// Text index of the instruction.
        index: usize,
    },
    /// An instruction shape the translator does not support.
    Unsupported {
        /// Text index.
        index: usize,
        /// Description.
        what: String,
    },
    /// The configuration is missing a required base operation (a synthesis
    /// bug — BIS guarantees these).
    MissingBaseOp {
        /// Description of the missing operation.
        what: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::RegisterOutsideWindow { reg, index } => {
                write!(
                    f,
                    "r{reg} at instruction {index} is outside the register window"
                )
            }
            TranslateError::Unsupported { index, what } => {
                write!(f, "unsupported instruction at {index}: {what}")
            }
            TranslateError::MissingBaseOp { what } => {
                write!(f, "decoder config lacks required base op: {what}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// One translated (but not yet branch-resolved) FITS instruction.
#[derive(Clone, Debug)]
pub enum Draft {
    /// A fully-determined instruction: opcode-table index plus raw field
    /// values in layout order.
    Op {
        /// Index into `config.ops`.
        entry: usize,
        /// Field values: registers as window encodings, immediates raw.
        fields: [u16; 3],
    },
    /// A short intra-expansion forward branch skipping `skip` instructions
    /// (encoded displacement is `skip - 1`: branch displacements are
    /// relative to `pc + 4`, one instruction past sequential).
    LocalBranch {
        /// Opcode-table index of the branch op.
        entry: usize,
        /// Instructions to skip (must be >= 1).
        skip: u16,
    },
    /// A program-level branch, resolved during relaxation.
    Branch {
        /// Condition.
        cond: Cond,
        /// Link (BL).
        link: bool,
        /// ARM text index of the target.
        target_arm: usize,
    },
}

/// The encoded FITS binary plus its (final) decoder configuration.
#[derive(Clone, Debug)]
pub struct FitsProgram {
    /// Encoded 16-bit instructions.
    pub instrs: Vec<u16>,
    /// Data image (identical to the ARM program's).
    pub data: Vec<u8>,
    /// Entry instruction index.
    pub entry: usize,
    /// The decoder configuration, including translator-appended dictionary
    /// entries (far targets, overflow constants).
    pub config: DecoderConfig,
}

impl FitsProgram {
    /// Code size in bytes (2 per instruction).
    #[must_use]
    pub fn code_bytes(&self) -> usize {
        self.instrs.len() * 2
    }
}

/// Mapping statistics (Figures 3 and 4).
#[derive(Clone, Debug, Default)]
pub struct MappingStats {
    /// FITS instructions emitted per ARM instruction.
    pub expansion: Vec<u32>,
}

impl MappingStats {
    /// Fraction of ARM instructions that mapped 1-to-1 (Figure 3).
    #[must_use]
    pub fn static_one_to_one_rate(&self) -> f64 {
        if self.expansion.is_empty() {
            return 1.0;
        }
        let ones = self.expansion.iter().filter(|&&e| e == 1).count();
        ones as f64 / self.expansion.len() as f64
    }

    /// Dynamically-weighted 1-to-1 rate given per-instruction execution
    /// counts (Figure 4).
    #[must_use]
    pub fn dynamic_one_to_one_rate(&self, exec_counts: &[u64]) -> f64 {
        let total: u64 = exec_counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let ones: u64 = self
            .expansion
            .iter()
            .zip(exec_counts)
            .filter(|(e, _)| **e == 1)
            .map(|(_, c)| *c)
            .sum();
        ones as f64 / total as f64
    }

    /// FITS instruction positions of each ARM instruction's expansion:
    /// `positions()[i]..positions()[i + 1]` is the half-open FITS index
    /// range that ARM instruction `i` translated to (prefix sums of
    /// [`MappingStats::expansion`]; the last element is the total length).
    #[must_use]
    pub fn positions(&self) -> Vec<u32> {
        let mut pos = Vec::with_capacity(self.expansion.len() + 1);
        let mut acc = 0u32;
        pos.push(0);
        for e in &self.expansion {
            acc += e;
            pos.push(acc);
        }
        pos
    }

    /// Average expansion factor (FITS instrs per ARM instr), statically.
    #[must_use]
    pub fn static_expansion(&self) -> f64 {
        if self.expansion.is_empty() {
            return 1.0;
        }
        self.expansion.iter().sum::<u32>() as f64 / self.expansion.len() as f64
    }
}

/// Translation output.
#[derive(Clone, Debug)]
pub struct Translation {
    /// The FITS binary.
    pub fits: FitsProgram,
    /// Mapping statistics.
    pub stats: MappingStats,
}

// ---------------------------------------------------------------------------
// Config lookup helpers
// ---------------------------------------------------------------------------

struct Finder<'a> {
    cfg: &'a DecoderConfig,
}

impl<'a> Finder<'a> {
    fn entry_idx(&self, pred: impl Fn(&OpcodeEntry) -> bool) -> Option<usize> {
        self.cfg.ops.iter().position(pred)
    }

    fn dp3(&self, op: DpOp, sf: bool) -> Option<usize> {
        self.entry_idx(|e| {
            matches!(e.micro, MicroOp::Dp3 { op: o, set_flags: s } if o == op && s == sf)
                && e.layout == Layout::R3
        })
    }

    fn dp2reg(&self, op: DpOp, sf: bool) -> Option<usize> {
        self.entry_idx(
            |e| matches!(e.micro, MicroOp::Dp2Reg { op: o, set_flags: s } if o == op && s == sf),
        )
    }

    fn dp3imm_lit(&self, op: DpOp, sf: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (
                    MicroOp::Dp3 {
                        op: o,
                        set_flags: s,
                    },
                    Layout::RRImm { w },
                ) if o == op && s == sf => Some((i, w)),
                _ => None,
            })
    }

    fn dp3imm_dict(&self, op: DpOp, sf: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (
                    MicroOp::Dp3 {
                        op: o,
                        set_flags: s,
                    },
                    Layout::RRDict { w },
                ) if o == op && s == sf => Some((i, w)),
                _ => None,
            })
    }

    fn dp2imm_lit(&self, op: DpOp, sf: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (
                    MicroOp::Dp2Imm {
                        op: o,
                        set_flags: s,
                    },
                    Layout::R2Imm { w },
                ) if o == op && s == sf => Some((i, w)),
                _ => None,
            })
    }

    fn dp2imm_dict(&self, op: DpOp, sf: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (
                    MicroOp::Dp2Imm {
                        op: o,
                        set_flags: s,
                    },
                    Layout::R2Dict { w },
                ) if o == op && s == sf => Some((i, w)),
                _ => None,
            })
    }

    fn cmp_reg(&self, op: DpOp) -> Option<usize> {
        self.entry_idx(|e| matches!(e.micro, MicroOp::CmpReg { op: o } if o == op))
    }

    fn cmp_imm_lit(&self, op: DpOp) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::CmpImm { op: o }, Layout::R2Imm { w }) if o == op => Some((i, w)),
                _ => None,
            })
    }

    fn cmp_imm_dict(&self, op: DpOp) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::CmpImm { op: o }, Layout::R2Dict { w }) if o == op => Some((i, w)),
                _ => None,
            })
    }

    fn shift_lit(&self, kind: ShiftKind, sf: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (
                    MicroOp::ShiftImm {
                        kind: k,
                        set_flags: s,
                    },
                    Layout::RRImm { w },
                ) if k == kind && s == sf => Some((i, w)),
                _ => None,
            })
    }

    fn shift_dict(&self, kind: ShiftKind, sf: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (
                    MicroOp::ShiftImm {
                        kind: k,
                        set_flags: s,
                    },
                    Layout::RRDict { w },
                ) if k == kind && s == sf => Some((i, w)),
                _ => None,
            })
    }

    fn shift_reg(&self, kind: ShiftKind, sf: bool) -> Option<usize> {
        self.entry_idx(|e| {
            matches!(e.micro, MicroOp::ShiftReg { kind: k, set_flags: s } if k == kind && s == sf)
        })
    }

    fn mul3(&self) -> Option<usize> {
        self.entry_idx(|e| e.micro == MicroOp::Mul3)
    }

    fn mem_lit(&self, op: MemOp) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::Mem { op: o }, Layout::MemImm { w }) if o == op => Some((i, w)),
                _ => None,
            })
    }

    fn mem_dict(&self, op: MemOp) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::Mem { op: o }, Layout::MemDict { w }) if o == op => Some((i, w)),
                _ => None,
            })
    }

    fn branch(&self, cond: Cond, link: bool) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::Branch { cond: c, link: l }, Layout::Br { w })
                    if c == cond && l == link =>
                {
                    Some((i, w))
                }
                _ => None,
            })
    }

    fn branch_reg(&self, link: bool) -> Option<usize> {
        self.entry_idx(|e| matches!(e.micro, MicroOp::BranchReg { link: l } if l == link))
    }

    fn pred_mov_imm(&self, cond: Cond) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::PredMovImm { cond: c }, Layout::R2Imm { w }) if c == cond => Some((i, w)),
                _ => None,
            })
    }

    fn pred_mov_reg(&self, cond: Cond) -> Option<usize> {
        self.entry_idx(|e| matches!(e.micro, MicroOp::PredMovReg { cond: c } if c == cond))
    }

    fn load_target(&self) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::LoadTarget, Layout::R2Dict { w }) => Some((i, w)),
                _ => None,
            })
    }

    fn swi(&self) -> Option<(usize, u8)> {
        self.cfg
            .ops
            .iter()
            .enumerate()
            .find_map(|(i, e)| match (e.micro, e.layout) {
                (MicroOp::Swi, Layout::Trap { w }) => Some((i, w)),
                _ => None,
            })
    }
}

fn fits_unsigned(v: u32, w: u8) -> bool {
    w >= 1 && crate::profile::unsigned_bits(v) <= w && w <= 16
}

// ---------------------------------------------------------------------------
// The translator
// ---------------------------------------------------------------------------

struct Translator<'a> {
    program: &'a Program,
    cfg: DecoderConfig,
    /// Maximum entries the operate dictionary may grow to (its widest
    /// addressing opcode's capacity).
    op_dict_cap: usize,
    movd: Option<(usize, u8)>,
}

impl<'a> Translator<'a> {
    fn finder(&self) -> Finder<'_> {
        Finder { cfg: &self.cfg }
    }

    fn reg(&self, r: Reg, index: usize) -> Result<u16, TranslateError> {
        self.cfg
            .regs
            .encode(r)
            .ok_or(TranslateError::RegisterOutsideWindow {
                reg: r.index(),
                index,
            })
    }

    fn scratch(&self, index: usize) -> Result<u16, TranslateError> {
        self.reg(Reg::IP, index)
    }

    /// Finds or appends an absolute code address in the target dictionary.
    fn target_dict_index(&mut self, addr: u32, w: u8, index: usize) -> Result<u16, TranslateError> {
        if let Some(i) = Dictionaries::index_of(&self.cfg.dicts.target, addr, w) {
            return Ok(i);
        }
        if self.cfg.dicts.target.len() < (1usize << w) {
            self.cfg.dicts.target.push(addr);
            return Ok((self.cfg.dicts.target.len() - 1) as u16);
        }
        Err(TranslateError::Unsupported {
            index,
            what: "target dictionary exhausted".to_string(),
        })
    }

    /// Finds or appends a value in the operate dictionary; returns its
    /// index if addressable within `w` bits.
    fn op_dict_index(&mut self, value: u32, w: u8) -> Option<u16> {
        if let Some(i) = Dictionaries::index_of(&self.cfg.dicts.operate, value, w) {
            return Some(i);
        }
        let cap = (1usize << w).min(self.op_dict_cap);
        if self.cfg.dicts.operate.len() < cap {
            self.cfg.dicts.operate.push(value);
            return Some((self.cfg.dicts.operate.len() - 1) as u16);
        }
        None
    }

    /// Emits a constant build into `dst` (window encoding). Returns the
    /// drafts. Order of preference: literal move, dictionary move, nibble
    /// chain (`movi`/`lsli`/`ori`).
    fn build_const(
        &mut self,
        dst: u16,
        value: u32,
        out: &mut Vec<Draft>,
        index: usize,
    ) -> Result<(), TranslateError> {
        let f = self.finder();
        if let Some((e, w)) = f.dp2imm_lit(DpOp::Mov, false) {
            if fits_unsigned(value, w) {
                out.push(Draft::Op {
                    entry: e,
                    fields: [dst, value as u16, 0],
                });
                return Ok(());
            }
        }
        let movd = self.movd;
        if let Some((e, w)) = movd {
            if let Some(idx) = self.op_dict_index(value, w) {
                out.push(Draft::Op {
                    entry: e,
                    fields: [dst, idx, 0],
                });
                return Ok(());
            }
        }
        // Nibble chain.
        let f = self.finder();
        let movi = f
            .dp2imm_lit(DpOp::Mov, false)
            .ok_or(TranslateError::MissingBaseOp {
                what: "movi".to_string(),
            })?;
        let ori = f
            .dp2imm_lit(DpOp::Orr, false)
            .ok_or(TranslateError::MissingBaseOp {
                what: "ori".to_string(),
            })?;
        let lsli = f
            .shift_lit(ShiftKind::Lsl, false)
            .ok_or(TranslateError::MissingBaseOp {
                what: "lsli".to_string(),
            })?;
        let _ = index;
        let nib_w = movi.1.min(4);
        let step = u32::from(nib_w);
        let nibbles: Vec<u32> = (0..32_u32.div_ceil(step))
            .rev()
            .map(|k| (value >> (k * step)) & ((1 << step) - 1))
            .collect();
        let mut started = false;
        for nib in nibbles {
            if !started {
                if nib == 0 {
                    continue;
                }
                out.push(Draft::Op {
                    entry: movi.0,
                    fields: [dst, nib as u16, 0],
                });
                started = true;
            } else {
                out.push(Draft::Op {
                    entry: lsli.0,
                    fields: [dst, dst, u16::from(nib_w)],
                });
                if nib != 0 {
                    out.push(Draft::Op {
                        entry: ori.0,
                        fields: [dst, nib as u16, 0],
                    });
                }
            }
        }
        if !started {
            out.push(Draft::Op {
                entry: movi.0,
                fields: [dst, 0, 0],
            });
        }
        Ok(())
    }

    /// Register-to-register move.
    fn mov_reg(&self, dst: u16, src: u16, out: &mut Vec<Draft>) -> Result<(), TranslateError> {
        let e = self
            .finder()
            .dp2reg(DpOp::Mov, false)
            .ok_or(TranslateError::MissingBaseOp {
                what: "mov".to_string(),
            })?;
        out.push(Draft::Op {
            entry: e,
            fields: [dst, src, 0],
        });
        Ok(())
    }

    /// A register-register DP operation with full operand generality.
    #[allow(clippy::too_many_arguments)]
    fn dp_reg_general(
        &mut self,
        op: DpOp,
        sf: bool,
        rd: u16,
        rn: u16,
        rm: u16,
        out: &mut Vec<Draft>,
        index: usize,
    ) -> Result<(), TranslateError> {
        let f = self.finder();
        if let Some(e) = f.dp3(op, sf) {
            out.push(Draft::Op {
                entry: e,
                fields: [rd, rn, rm],
            });
            return Ok(());
        }
        let two = f.dp2reg(op, sf).ok_or(TranslateError::MissingBaseOp {
            what: format!("2-address {op}"),
        })?;
        if op.ignores_rn() {
            out.push(Draft::Op {
                entry: two,
                fields: [rd, rm, 0],
            });
            return Ok(());
        }
        if rd == rn {
            out.push(Draft::Op {
                entry: two,
                fields: [rd, rm, 0],
            });
            return Ok(());
        }
        if rd == rm {
            let commutative = matches!(op, DpOp::Add | DpOp::And | DpOp::Orr | DpOp::Eor);
            if commutative {
                out.push(Draft::Op {
                    entry: two,
                    fields: [rd, rn, 0],
                });
                return Ok(());
            }
            // rd aliases the second operand of a non-commutative op: stash
            // it in the scratch register first.
            let ip = self.scratch(index)?;
            self.mov_reg(ip, rm, out)?;
            self.mov_reg(rd, rn, out)?;
            out.push(Draft::Op {
                entry: two,
                fields: [rd, ip, 0],
            });
            return Ok(());
        }
        self.mov_reg(rd, rn, out)?;
        out.push(Draft::Op {
            entry: two,
            fields: [rd, rm, 0],
        });
        Ok(())
    }

    /// A shift of `rm` by constant `n` into `rd`.
    #[allow(clippy::too_many_arguments)]
    fn shift_imm_general(
        &mut self,
        kind: ShiftKind,
        sf: bool,
        rd: u16,
        rm: u16,
        n: u32,
        out: &mut Vec<Draft>,
        index: usize,
    ) -> Result<(), TranslateError> {
        let f = self.finder();
        if let Some((e, w)) = f.shift_lit(kind, sf) {
            if fits_unsigned(n, w) {
                out.push(Draft::Op {
                    entry: e,
                    fields: [rd, rm, n as u16],
                });
                return Ok(());
            }
        }
        if let Some((e, w)) = f.shift_dict(kind, sf) {
            if let Some(idx) = Dictionaries::index_of(&self.cfg.dicts.shift, n, w) {
                out.push(Draft::Op {
                    entry: e,
                    fields: [rd, rm, idx],
                });
                return Ok(());
            }
            // Append to free dictionary capacity.
            if self.cfg.dicts.shift.len() < (1usize << w) {
                self.cfg.dicts.shift.push(n);
                out.push(Draft::Op {
                    entry: e,
                    fields: [rd, rm, (self.cfg.dicts.shift.len() - 1) as u16],
                });
                return Ok(());
            }
        }
        // Fallback: amount into scratch, two-address shift. Impossible when
        // the destination *is* the scratch (it cannot hold both the amount
        // and the shifted value); synthesis prevents this by always
        // providing a dictionary form for used shift kinds.
        let ip = self.scratch(index)?;
        if rd == ip {
            return Err(TranslateError::Unsupported {
                index,
                what: format!("shift into scratch with no encodable amount #{n}"),
            });
        }
        self.build_const(ip, n, out, index)?;
        let sr = self
            .finder()
            .shift_reg(kind, sf)
            .ok_or(TranslateError::MissingBaseOp {
                what: format!("shift-reg {kind}"),
            })?;
        if rd != rm {
            self.mov_reg(rd, rm, out)?;
        }
        out.push(Draft::Op {
            entry: sr,
            fields: [rd, ip, 0],
        });
        Ok(())
    }

    /// Translates one AL-condition instruction (predication is handled by
    /// the caller). Pushes drafts; the count is the expansion factor.
    #[allow(clippy::too_many_lines)]
    fn expand(
        &mut self,
        instr: &Instr,
        index: usize,
        out: &mut Vec<Draft>,
    ) -> Result<(), TranslateError> {
        match instr {
            Instr::Dp {
                op,
                set_flags,
                rd,
                rn,
                op2,
                ..
            } => {
                // Compares.
                if op.is_compare() {
                    let rn_e = self.reg(*rn, index)?;
                    match op2 {
                        Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => {
                            let rm_e = self.reg(*rm, index)?;
                            let e = self.finder().cmp_reg(*op).ok_or(
                                TranslateError::MissingBaseOp {
                                    what: format!("{op} reg"),
                                },
                            )?;
                            out.push(Draft::Op {
                                entry: e,
                                fields: [rn_e, rm_e, 0],
                            });
                        }
                        Operand2::Imm(imm) => {
                            let v = imm.value();
                            // Logical flag-setting immediates with a rotated
                            // encoding change C; the translator refuses them
                            // (the kernel compiler never emits them).
                            if !op.is_arithmetic() && imm.rot() != 0 {
                                return Err(TranslateError::Unsupported {
                                    index,
                                    what: "rotated logical compare immediate".to_string(),
                                });
                            }
                            let f = self.finder();
                            if let Some((e, w)) = f.cmp_imm_lit(*op) {
                                if fits_unsigned(v, w) {
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rn_e, v as u16, 0],
                                    });
                                    return Ok(());
                                }
                            }
                            if let Some((e, w)) = f.cmp_imm_dict(*op) {
                                if let Some(idx) =
                                    Dictionaries::index_of(&self.cfg.dicts.operate, v, w)
                                {
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rn_e, idx, 0],
                                    });
                                    return Ok(());
                                }
                                // Try appending to the reserved slots.
                                let e_w = (e, w);
                                if let Some(idx) = self.op_dict_index(v, e_w.1) {
                                    out.push(Draft::Op {
                                        entry: e_w.0,
                                        fields: [rn_e, idx, 0],
                                    });
                                    return Ok(());
                                }
                            }
                            // Build the constant and compare by register.
                            let ip = self.scratch(index)?;
                            self.build_const(ip, v, out, index)?;
                            let e = self.finder().cmp_reg(*op).ok_or(
                                TranslateError::MissingBaseOp {
                                    what: format!("{op} reg"),
                                },
                            )?;
                            out.push(Draft::Op {
                                entry: e,
                                fields: [rn_e, ip, 0],
                            });
                        }
                        Operand2::Reg(rm, shift) => {
                            // Compare against a shifted register: shift into
                            // scratch first.
                            let ip = self.scratch(index)?;
                            self.expand_shift_operand(*rm, *shift, ip, index, out)?;
                            let e = self.finder().cmp_reg(*op).ok_or(
                                TranslateError::MissingBaseOp {
                                    what: format!("{op} reg"),
                                },
                            )?;
                            out.push(Draft::Op {
                                entry: e,
                                fields: [rn_e, ip, 0],
                            });
                        }
                    }
                    return Ok(());
                }

                // PC writes are indirect jumps.
                if rd.is_pc() {
                    if *op == DpOp::Mov {
                        if let Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) = op2 {
                            let ra = self.reg(*rm, index)?;
                            let e = self.finder().branch_reg(false).ok_or(
                                TranslateError::MissingBaseOp {
                                    what: "jr".to_string(),
                                },
                            )?;
                            out.push(Draft::Op {
                                entry: e,
                                fields: [ra, 0, 0],
                            });
                            return Ok(());
                        }
                    }
                    return Err(TranslateError::Unsupported {
                        index,
                        what: "non-mov PC write".to_string(),
                    });
                }

                let rd_e = self.reg(*rd, index)?;
                match (op, op2) {
                    // Shift-by-immediate moves.
                    (DpOp::Mov, Operand2::Reg(rm, Shift::Imm(kind, n))) if *n > 0 => {
                        let rm_e = self.reg(*rm, index)?;
                        self.shift_imm_general(
                            *kind,
                            *set_flags,
                            rd_e,
                            rm_e,
                            u32::from(*n),
                            out,
                            index,
                        )?;
                    }
                    // Shift-by-register moves.
                    (DpOp::Mov, Operand2::Reg(rm, Shift::Reg(kind, rs))) => {
                        let rm_e = self.reg(*rm, index)?;
                        let rs_e = self.reg(*rs, index)?;
                        let sr = self.finder().shift_reg(*kind, *set_flags).ok_or(
                            TranslateError::MissingBaseOp {
                                what: format!("shift-reg {kind}"),
                            },
                        )?;
                        if rd_e == rm_e {
                            out.push(Draft::Op {
                                entry: sr,
                                fields: [rd_e, rs_e, 0],
                            });
                        } else if rd_e == rs_e {
                            let ip = self.scratch(index)?;
                            self.mov_reg(ip, rs_e, out)?;
                            self.mov_reg(rd_e, rm_e, out)?;
                            out.push(Draft::Op {
                                entry: sr,
                                fields: [rd_e, ip, 0],
                            });
                        } else {
                            self.mov_reg(rd_e, rm_e, out)?;
                            out.push(Draft::Op {
                                entry: sr,
                                fields: [rd_e, rs_e, 0],
                            });
                        }
                    }
                    // Plain register operands.
                    (_, Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0))) => {
                        let rn_e = self.reg(*rn, index)?;
                        let rm_e = self.reg(*rm, index)?;
                        self.dp_reg_general(*op, *set_flags, rd_e, rn_e, rm_e, out, index)?;
                    }
                    // Immediates.
                    (_, Operand2::Imm(imm)) => {
                        let v = imm.value();
                        if !op.is_arithmetic() && *set_flags && imm.rot() != 0 {
                            return Err(TranslateError::Unsupported {
                                index,
                                what: "rotated logical flag-setting immediate".to_string(),
                            });
                        }
                        let rn_e = if op.ignores_rn() {
                            rd_e
                        } else {
                            self.reg(*rn, index)?
                        };
                        let f = self.finder();
                        // Figure-2 Operate: 3-address immediate forms first.
                        if !op.ignores_rn() {
                            if let Some((e, w)) = f.dp3imm_lit(*op, *set_flags) {
                                if fits_unsigned(v, w) {
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rd_e, rn_e, v as u16],
                                    });
                                    return Ok(());
                                }
                            }
                            if let Some((e, w)) = f.dp3imm_dict(*op, *set_flags) {
                                if let Some(idx) =
                                    Dictionaries::index_of(&self.cfg.dicts.operate, v, w)
                                {
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rd_e, rn_e, idx],
                                    });
                                    return Ok(());
                                }
                            }
                        }
                        let lit = f.dp2imm_lit(*op, *set_flags);
                        let dict = f.dp2imm_dict(*op, *set_flags);
                        let two_addr_ok = op.ignores_rn() || rd_e == rn_e;
                        if two_addr_ok {
                            if let Some((e, w)) = lit {
                                if fits_unsigned(v, w) {
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rd_e, v as u16, 0],
                                    });
                                    return Ok(());
                                }
                            }
                            if let Some((e, w)) = dict {
                                if let Some(idx) =
                                    Dictionaries::index_of(&self.cfg.dicts.operate, v, w)
                                {
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rd_e, idx, 0],
                                    });
                                    return Ok(());
                                }
                            }
                        }
                        // MOV/MVN of an arbitrary value.
                        if *op == DpOp::Mov && !*set_flags {
                            self.build_const(rd_e, v, out, index)?;
                            return Ok(());
                        }
                        if *op == DpOp::Mvn && !*set_flags {
                            self.build_const(rd_e, !v, out, index)?;
                            return Ok(());
                        }
                        // Two-address form reachable with a mov first?
                        if !two_addr_ok {
                            let fits_lit = lit.is_some_and(|(_, w)| fits_unsigned(v, w));
                            let dict_idx = dict.and_then(|(_, w)| {
                                Dictionaries::index_of(&self.cfg.dicts.operate, v, w)
                            });
                            if fits_lit || dict_idx.is_some() {
                                self.mov_reg(rd_e, rn_e, out)?;
                                if fits_lit {
                                    let (e, _) = lit.expect("checked");
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rd_e, v as u16, 0],
                                    });
                                } else {
                                    let (e, _) = dict.expect("checked");
                                    out.push(Draft::Op {
                                        entry: e,
                                        fields: [rd_e, dict_idx.expect("checked"), 0],
                                    });
                                }
                                return Ok(());
                            }
                        }
                        // General fallback: constant into scratch, then the
                        // register-register path.
                        let ip = self.scratch(index)?;
                        self.build_const(ip, v, out, index)?;
                        self.dp_reg_general(*op, *set_flags, rd_e, rn_e, ip, out, index)?;
                    }
                    // Shifted-register operands on non-mov ops.
                    (_, Operand2::Reg(rm, shift)) => {
                        let rn_e = self.reg(*rn, index)?;
                        let ip = self.scratch(index)?;
                        self.expand_shift_operand(*rm, *shift, ip, index, out)?;
                        self.dp_reg_general(*op, *set_flags, rd_e, rn_e, ip, out, index)?;
                    }
                }
                Ok(())
            }
            Instr::Mul {
                set_flags,
                rd,
                rm,
                rs,
                acc,
                ..
            } => {
                if *set_flags {
                    return Err(TranslateError::Unsupported {
                        index,
                        what: "flag-setting multiply".to_string(),
                    });
                }
                let e = self.finder().mul3().ok_or(TranslateError::MissingBaseOp {
                    what: "mul".to_string(),
                })?;
                let rd_e = self.reg(*rd, index)?;
                let rm_e = self.reg(*rm, index)?;
                let rs_e = self.reg(*rs, index)?;
                match acc {
                    None => out.push(Draft::Op {
                        entry: e,
                        fields: [rd_e, rm_e, rs_e],
                    }),
                    Some(rn) => {
                        // MLA: multiply into scratch, then add.
                        let ip = self.scratch(index)?;
                        out.push(Draft::Op {
                            entry: e,
                            fields: [ip, rm_e, rs_e],
                        });
                        let rn_e = self.reg(*rn, index)?;
                        self.dp_reg_general(DpOp::Add, false, rd_e, rn_e, ip, out, index)?;
                    }
                }
                Ok(())
            }
            Instr::Mem {
                op,
                rd,
                rn,
                offset,
                index: idx_mode,
                ..
            } => {
                if *idx_mode != fits_isa::Index::PreNoWb {
                    return Err(TranslateError::Unsupported {
                        index,
                        what: "writeback addressing".to_string(),
                    });
                }
                if rd.is_pc() {
                    return Err(TranslateError::Unsupported {
                        index,
                        what: "PC-destination load".to_string(),
                    });
                }
                let rd_e = self.reg(*rd, index)?;
                let rn_e = self.reg(*rn, index)?;
                match offset {
                    AddrOffset::Imm(d) => {
                        let scale = match op.size() {
                            4 => 4u32,
                            2 => 2,
                            _ => 1,
                        };
                        let f = self.finder();
                        if let Some((e, w)) = f.mem_lit(*op) {
                            if mem_lit_fits(*d, w, scale) {
                                let field = if scale == 1 {
                                    (*d as u16) & ((1u16 << w) - 1)
                                } else {
                                    (*d as u32 / scale) as u16
                                };
                                out.push(Draft::Op {
                                    entry: e,
                                    fields: [rd_e, rn_e, field],
                                });
                                return Ok(());
                            }
                        }
                        if let Some((e, w)) = f.mem_dict(*op) {
                            if let Some(idx) =
                                Dictionaries::index_of(&self.cfg.dicts.mem_disp, *d as u32, w)
                            {
                                out.push(Draft::Op {
                                    entry: e,
                                    fields: [rd_e, rn_e, idx],
                                });
                                return Ok(());
                            }
                        }
                        // Address arithmetic through the scratch register.
                        let ip = self.scratch(index)?;
                        self.build_const(ip, *d as u32, out, index)?;
                        self.dp_reg_general(DpOp::Add, false, ip, ip, rn_e, out, index)?;
                        let (e, w) =
                            self.finder()
                                .mem_lit(*op)
                                .ok_or(TranslateError::MissingBaseOp {
                                    what: format!("{op}"),
                                })?;
                        debug_assert!(mem_lit_fits(0, w, scale) || w == 0);
                        let _ = w;
                        out.push(Draft::Op {
                            entry: e,
                            fields: [rd_e, ip, 0],
                        });
                        Ok(())
                    }
                    AddrOffset::Reg {
                        rm,
                        shift,
                        subtract,
                    } => {
                        let ip = self.scratch(index)?;
                        self.expand_shift_operand(*rm, *shift, ip, index, out)?;
                        let op_combine = if *subtract { DpOp::Rsb } else { DpOp::Add };
                        let _ = op_combine;
                        if *subtract {
                            return Err(TranslateError::Unsupported {
                                index,
                                what: "subtracting register offset".to_string(),
                            });
                        }
                        self.dp_reg_general(DpOp::Add, false, ip, ip, rn_e, out, index)?;
                        let (e, _) =
                            self.finder()
                                .mem_lit(*op)
                                .ok_or(TranslateError::MissingBaseOp {
                                    what: format!("{op}"),
                                })?;
                        out.push(Draft::Op {
                            entry: e,
                            fields: [rd_e, ip, 0],
                        });
                        Ok(())
                    }
                }
            }
            Instr::Branch {
                cond, link, offset, ..
            } => {
                let target = index as i64 + 2 + i64::from(*offset);
                let target_arm =
                    usize::try_from(target).map_err(|_| TranslateError::Unsupported {
                        index,
                        what: "branch before text start".to_string(),
                    })?;
                if target_arm >= self.program.text.len() {
                    return Err(TranslateError::Unsupported {
                        index,
                        what: "branch past text end".to_string(),
                    });
                }
                out.push(Draft::Branch {
                    cond: *cond,
                    link: *link,
                    target_arm,
                });
                Ok(())
            }
            Instr::Swi { imm, .. } => {
                let (e, w) = self.finder().swi().ok_or(TranslateError::MissingBaseOp {
                    what: "swi".to_string(),
                })?;
                if !fits_unsigned(*imm, w) && *imm != 0 {
                    return Err(TranslateError::Unsupported {
                        index,
                        what: "trap number too wide".to_string(),
                    });
                }
                out.push(Draft::Op {
                    entry: e,
                    fields: [*imm as u16, 0, 0],
                });
                Ok(())
            }
        }
    }

    /// Computes `shift(rm)` into `dst`.
    fn expand_shift_operand(
        &mut self,
        rm: Reg,
        shift: Shift,
        dst: u16,
        index: usize,
        out: &mut Vec<Draft>,
    ) -> Result<(), TranslateError> {
        let rm_e = self.reg(rm, index)?;
        match shift {
            Shift::Imm(ShiftKind::Lsl, 0) => self.mov_reg(dst, rm_e, out),
            Shift::Imm(kind, n) => {
                self.shift_imm_general(kind, false, dst, rm_e, u32::from(n), out, index)
            }
            Shift::Reg(kind, rs) => {
                let rs_e = self.reg(rs, index)?;
                let sr =
                    self.finder()
                        .shift_reg(kind, false)
                        .ok_or(TranslateError::MissingBaseOp {
                            what: format!("shift-reg {kind}"),
                        })?;
                self.mov_reg(dst, rm_e, out)?;
                out.push(Draft::Op {
                    entry: sr,
                    fields: [dst, rs_e, 0],
                });
                Ok(())
            }
        }
    }

    /// Translates one instruction including its predication wrapper.
    fn translate_instr(
        &mut self,
        instr: &Instr,
        index: usize,
        out: &mut Vec<Draft>,
    ) -> Result<(), TranslateError> {
        let cond = instr.cond();
        if cond == Cond::Al || matches!(instr, Instr::Branch { .. }) {
            return self.expand(instr, index, out);
        }
        // Predicated moves may have dedicated opcodes.
        if let Instr::Dp {
            op: DpOp::Mov,
            set_flags: false,
            rd,
            op2,
            ..
        } = instr
        {
            if !rd.is_pc() {
                let rd_e = self.reg(*rd, index)?;
                match op2 {
                    Operand2::Imm(imm) => {
                        if let Some((e, w)) = self.finder().pred_mov_imm(cond) {
                            if fits_unsigned(imm.value(), w) {
                                out.push(Draft::Op {
                                    entry: e,
                                    fields: [rd_e, imm.value() as u16, 0],
                                });
                                return Ok(());
                            }
                        }
                    }
                    Operand2::Reg(rm, Shift::Imm(ShiftKind::Lsl, 0)) => {
                        if let Some(e) = self.finder().pred_mov_reg(cond) {
                            let rm_e = self.reg(*rm, index)?;
                            out.push(Draft::Op {
                                entry: e,
                                fields: [rd_e, rm_e, 0],
                            });
                            return Ok(());
                        }
                    }
                    Operand2::Reg(..) => {}
                }
            }
        }
        // Generic predication: inverse-condition branch around the
        // unconditional expansion.
        let mut body = Vec::new();
        self.expand(&instr.with_cond(Cond::Al), index, &mut body)?;
        let inv = cond.inverse();
        let (e, w) = self
            .finder()
            .branch(inv, false)
            .ok_or(TranslateError::MissingBaseOp {
                what: format!("b{inv}"),
            })?;
        let skip = body.len() as u16;
        if !fits_unsigned(u32::from(skip), w.saturating_sub(1)) {
            return Err(TranslateError::Unsupported {
                index,
                what: "predicated expansion too long for branch-around".to_string(),
            });
        }
        out.push(Draft::LocalBranch { entry: e, skip });
        out.extend(body);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Field packing
// ---------------------------------------------------------------------------

/// Packs an opcode entry and its field values into the 16-bit word.
#[must_use]
pub fn pack(entry: &OpcodeEntry, fields: [u16; 3], r: u8) -> u16 {
    let mut word = entry.code;
    let operand_bits = 16 - entry.len;
    let _ = operand_bits;
    let r = u16::from(r);
    let body: u16 = match entry.layout {
        Layout::R3 => (fields[0] << (2 * r)) | (fields[1] << r) | fields[2],
        Layout::R2 => (fields[0] << r) | fields[1],
        Layout::R2Imm { w } | Layout::R2Dict { w } => {
            (fields[0] << w) | (fields[1] & ((1 << w) - 1))
        }
        Layout::RRImm { w } | Layout::RRDict { w } => {
            (fields[0] << (r + u16::from(w))) | (fields[1] << w) | (fields[2] & ((1 << w) - 1))
        }
        Layout::MemImm { w } | Layout::MemDict { w } => {
            (fields[0] << (r + u16::from(w))) | (fields[1] << w) | (fields[2] & ((1 << w) - 1))
        }
        Layout::Br { w } | Layout::Trap { w } => fields[0] & ((1u16 << w) - 1),
        Layout::R1 => fields[0],
    };
    word |= body;
    word
}

/// Unpacks the operand fields of a word for the given entry, reversing
/// [`pack`].
#[must_use]
pub fn unpack(entry: &OpcodeEntry, word: u16, r: u8) -> [u16; 3] {
    let r16 = u16::from(r);
    let rmask = (1u16 << r16) - 1;
    match entry.layout {
        Layout::R3 => [
            (word >> (2 * r16)) & rmask,
            (word >> r16) & rmask,
            word & rmask,
        ],
        Layout::R2 => [(word >> r16) & rmask, word & rmask, 0],
        Layout::R2Imm { w } | Layout::R2Dict { w } => {
            [(word >> w) & rmask, word & ((1 << w) - 1), 0]
        }
        Layout::RRImm { w }
        | Layout::RRDict { w }
        | Layout::MemImm { w }
        | Layout::MemDict { w } => [
            (word >> (r16 + u16::from(w))) & rmask,
            (word >> w) & rmask,
            word & ((1 << w) - 1),
        ],
        Layout::Br { w } | Layout::Trap { w } => [word & ((1u16 << w) - 1), 0, 0],
        Layout::R1 => [word & rmask, 0, 0],
    }
}

fn sign_fits(v: i64, w: u8) -> bool {
    w >= 1 && v >= -(1i64 << (w - 1)) && v < (1i64 << (w - 1))
}

// ---------------------------------------------------------------------------
// Top-level translation with branch relaxation
// ---------------------------------------------------------------------------

/// How a program-level branch is realized after relaxation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BrForm {
    /// One branch instruction.
    Short,
    /// Inverse-condition hop over an unconditional branch.
    InvPair,
    /// Target loaded from the dictionary, then `jr`/`jalr` (2 instrs, or 3
    /// with a conditional hop).
    Dict,
}

impl BrForm {
    fn size(self, cond: Cond, link: bool) -> u32 {
        match self {
            BrForm::Short => 1,
            BrForm::InvPair => 2,
            BrForm::Dict => {
                if cond == Cond::Al || link {
                    2
                } else {
                    3
                }
            }
        }
    }
}

/// Translates `program` under `config`, producing the FITS binary and
/// mapping statistics. The returned configuration may contain additional
/// dictionary entries discovered during translation.
///
/// # Errors
///
/// Returns [`TranslateError`] when the program uses registers outside the
/// synthesized window or instruction shapes outside the supported set.
pub fn translate(program: &Program, config: &DecoderConfig) -> Result<Translation, TranslateError> {
    let movd = Finder { cfg: config }.dp2imm_dict(DpOp::Mov, false);
    let op_dict_cap = movd.map_or(0, |(_, w)| 1usize << w);
    let mut tr = Translator {
        program,
        cfg: config.clone(),
        op_dict_cap,
        movd,
    };

    // Pass 1: expand every instruction.
    let mut drafts: Vec<Vec<Draft>> = Vec::with_capacity(program.text.len());
    for (i, instr) in program.text.iter().enumerate() {
        let mut out = Vec::with_capacity(1);
        tr.translate_instr(instr, i, &mut out)?;
        debug_assert!(!out.is_empty());
        drafts.push(out);
    }

    // Pass 2: branch relaxation to a fixpoint.
    let mut forms: Vec<BrForm> = vec![BrForm::Short; program.text.len()];
    let r = tr.cfg.regs.field_bits;
    loop {
        // Positions.
        let mut pos = vec![0u32; program.text.len() + 1];
        for i in 0..program.text.len() {
            let mut size = 0u32;
            for d in &drafts[i] {
                size += match d {
                    Draft::Branch { cond, link, .. } => forms[i].size(*cond, *link),
                    _ => 1,
                };
            }
            pos[i + 1] = pos[i] + size;
        }
        let mut changed = false;
        for (i, dv) in drafts.iter().enumerate() {
            // The branch draft is always last in its expansion.
            let Some(Draft::Branch {
                cond,
                link,
                target_arm,
            }) = dv.last()
            else {
                continue;
            };
            let fnd = Finder { cfg: &tr.cfg };
            let (_, w) = fnd
                .branch(*cond, *link)
                .ok_or(TranslateError::MissingBaseOp {
                    what: format!("b{cond}"),
                })?;
            // Where does the branch instruction itself sit?
            let br_pos = pos[i + 1] - forms[i].size(*cond, *link);
            let disp = i64::from(pos[*target_arm]) - (i64::from(br_pos) + 2);
            let needed = if sign_fits(disp, w) {
                BrForm::Short
            } else {
                // Try the inverse pair (unconditional branch range).
                let bal = fnd
                    .branch(Cond::Al, false)
                    .ok_or(TranslateError::MissingBaseOp {
                        what: "b".to_string(),
                    })?;
                let uncond_disp = i64::from(pos[*target_arm]) - (i64::from(br_pos) + 1 + 2);
                if !link && *cond != Cond::Al && sign_fits(uncond_disp, bal.1) {
                    BrForm::InvPair
                } else {
                    // Anything else out of short range goes through the
                    // target dictionary. In particular a far `bl` must
                    // NOT borrow the non-link `b` entry's (possibly
                    // wider) displacement field: the displacement is
                    // packed into the `bl` entry's own field, and
                    // checking it against another entry's width
                    // truncates the encoded target.
                    BrForm::Dict
                }
            };
            // Forms only grow (monotone), guaranteeing termination.
            if needed.size(*cond, *link) > forms[i].size(*cond, *link) {
                forms[i] = needed;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final positions.
    let mut pos = vec![0u32; program.text.len() + 1];
    let mut expansion = vec![0u32; program.text.len()];
    for i in 0..program.text.len() {
        let mut size = 0u32;
        for d in &drafts[i] {
            size += match d {
                Draft::Branch { cond, link, .. } => forms[i].size(*cond, *link),
                _ => 1,
            };
        }
        expansion[i] = size;
        pos[i + 1] = pos[i] + size;
    }

    // Pass 3: encode.
    let total = pos[program.text.len()] as usize;
    let mut words: Vec<u16> = Vec::with_capacity(total);
    for (i, dv) in drafts.iter().enumerate() {
        for d in dv {
            match d {
                Draft::Op { entry, fields } => {
                    words.push(pack(&tr.cfg.ops[*entry], *fields, r));
                }
                Draft::LocalBranch { entry, skip } => {
                    debug_assert!(*skip >= 1);
                    words.push(pack(&tr.cfg.ops[*entry], [*skip - 1, 0, 0], r));
                }
                Draft::Branch {
                    cond,
                    link,
                    target_arm,
                } => {
                    let (e, w) = {
                        let fnd = Finder { cfg: &tr.cfg };
                        fnd.branch(*cond, *link).expect("validated in relaxation")
                    };
                    let target_pos = i64::from(pos[*target_arm]);
                    match forms[i] {
                        BrForm::Short => {
                            let here = words.len() as i64;
                            let disp = target_pos - (here + 2);
                            debug_assert!(sign_fits(disp, w), "short branch overflow");
                            words.push(pack(
                                &tr.cfg.ops[e],
                                [(disp as u16) & ((1u16 << w) - 1), 0, 0],
                                r,
                            ));
                        }
                        BrForm::InvPair => {
                            let inv = cond.inverse();
                            let (ei, wi) = {
                                let fnd = Finder { cfg: &tr.cfg };
                                fnd.branch(inv, false).expect("BIS pairs")
                            };
                            // Hop over the unconditional branch:
                            // displacement 0 lands one past it (pc + 4).
                            let _ = wi;
                            words.push(pack(&tr.cfg.ops[ei], [0, 0, 0], r));
                            let (eb, wb) = {
                                let fnd = Finder { cfg: &tr.cfg };
                                fnd.branch(Cond::Al, false).expect("BIS b")
                            };
                            let here = words.len() as i64;
                            let disp = target_pos - (here + 2);
                            debug_assert!(sign_fits(disp, wb), "pair branch overflow");
                            words.push(pack(
                                &tr.cfg.ops[eb],
                                [(disp as u16) & ((1u16 << wb) - 1), 0, 0],
                                r,
                            ));
                        }
                        BrForm::Dict => {
                            // Optional conditional hop, then the always
                            // exactly-one-instruction target-dictionary load
                            // and the indirect jump (sizes must match the
                            // relaxation's accounting).
                            let cond = *cond;
                            let link = *link;
                            let target_addr = TEXT_BASE + (pos[*target_arm] * 2);
                            let ip = tr.scratch(i)?;
                            if cond != Cond::Al && !link {
                                let inv = cond.inverse();
                                let (ei, _) = {
                                    let fnd = Finder { cfg: &tr.cfg };
                                    fnd.branch(inv, false).expect("BIS pairs")
                                };
                                // Skip the 2-instruction far sequence:
                                // displacement 1 (relative to pc + 4).
                                words.push(pack(&tr.cfg.ops[ei], [1, 0, 0], r));
                            }
                            let (lt, ltw) = {
                                let fnd = Finder { cfg: &tr.cfg };
                                fnd.load_target().ok_or(TranslateError::MissingBaseOp {
                                    what: "load-target".to_string(),
                                })?
                            };
                            let idx = tr.target_dict_index(target_addr, ltw, i)?;
                            words.push(pack(&tr.cfg.ops[lt], [ip, idx, 0], r));
                            let jr = tr.finder().branch_reg(link).ok_or(
                                TranslateError::MissingBaseOp {
                                    what: "jr/jalr".to_string(),
                                },
                            )?;
                            words.push(pack(&tr.cfg.ops[jr], [ip, 0, 0], r));
                        }
                    }
                }
            }
        }
        debug_assert_eq!(words.len() as u32, pos[i + 1], "layout drift at {i}");
    }

    let entry = pos[program.entry] as usize;
    Ok(Translation {
        fits: FitsProgram {
            instrs: words,
            data: program.data.clone(),
            entry,
            config: tr.cfg,
        },
        stats: MappingStats { expansion },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile;
    use crate::synth::{synthesize, SynthOptions};
    use fits_kernels::kernels::{Kernel, Scale};

    fn translate_kernel(k: Kernel) -> (Translation, crate::profile::Profile) {
        let program = k.compile(Scale::test()).unwrap();
        let p = profile(&program).unwrap();
        let s = synthesize(&p, &SynthOptions::default());
        let t = translate(&program, &s.config).unwrap();
        (t, p)
    }

    #[test]
    fn crc32_translates_with_high_mapping_rate() {
        let (t, p) = translate_kernel(Kernel::Crc32);
        let stat = t.stats.static_one_to_one_rate();
        let dynr = t.stats.dynamic_one_to_one_rate(&p.exec_counts);
        assert!(stat > 0.85, "static 1-to-1 rate {stat}");
        assert!(dynr > 0.90, "dynamic 1-to-1 rate {dynr}");
    }

    #[test]
    fn code_size_is_roughly_halved() {
        let program = Kernel::Crc32.compile(Scale::test()).unwrap();
        let p = profile(&program).unwrap();
        let s = synthesize(&p, &SynthOptions::default());
        let t = translate(&program, &s.config).unwrap();
        let ratio = t.fits.code_bytes() as f64 / program.code_bytes() as f64;
        assert!(ratio < 0.62, "code ratio {ratio}");
        assert!(ratio >= 0.5, "cannot beat the 2-byte floor: {ratio}");
    }

    #[test]
    fn pack_unpack_round_trip() {
        use crate::decoder::Tier;
        for layout in [
            Layout::R3,
            Layout::R2,
            Layout::R2Imm { w: 5 },
            Layout::RRImm { w: 4 },
            Layout::MemImm { w: 4 },
            Layout::Br { w: 10 },
            Layout::R1,
            Layout::Trap { w: 4 },
        ] {
            let entry = OpcodeEntry {
                code: 0b1010 << 12,
                len: 16 - layout.operand_bits(4),
                micro: MicroOp::Mul3,
                layout,
                tier: Tier::Bis,
            };
            let fields = match layout {
                Layout::R3 => [3u16, 7, 11],
                Layout::R2 => [5, 9, 0],
                Layout::R2Imm { .. } => [4, 19, 0],
                Layout::RRImm { .. } => [2, 6, 9],
                Layout::MemImm { .. } => [1, 13, 7],
                Layout::Br { .. } => [0x2a5 & 0x3ff, 0, 0],
                Layout::R1 => [14, 0, 0],
                _ => [9, 0, 0],
            };
            let word = pack(&entry, fields, 4);
            let back = unpack(&entry, word, 4);
            assert_eq!(back, fields, "{layout:?}");
            assert_eq!(
                word >> (16 - entry.len),
                entry.code >> (16 - entry.len),
                "opcode prefix preserved for {layout:?}"
            );
        }
    }

    #[test]
    fn expansion_counts_match_instruction_stream() {
        let (t, _) = translate_kernel(Kernel::Bitcount);
        let total: u32 = t.stats.expansion.iter().sum();
        assert_eq!(total as usize, t.fits.instrs.len());
        assert!(t.stats.expansion.iter().all(|&e| e >= 1));
    }
}
