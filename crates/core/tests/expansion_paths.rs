//! Targeted tests for the translator's 1-to-n expansion paths — each test
//! constructs a program that forces one specific fallback and proves the
//! result still executes identically to the native binary.

#![allow(clippy::unwrap_used)]

use fits_core::{profile, synthesize, translate, FitsFlow, FitsSet, SynthOptions, Tier};
use fits_isa::{Cond, DpOp, Instr, MemOp, Operand2, Program, Reg};
use fits_sim::{Ar32Set, Machine};

fn exit_swi() -> Instr {
    Instr::Swi {
        cond: Cond::Al,
        imm: 0,
    }
}

fn run_both(program: &Program) -> (u32, u32, f64) {
    let native = Machine::new(Ar32Set::load(program)).run().expect("native");
    let flow = FitsFlow {
        min_static_rate: 0.0,
        ..FitsFlow::default()
    };
    let out = flow.run(program).expect("flow");
    (
        native.exit_code,
        out.fits_run.expect("verified").exit_code,
        out.mapping.static_one_to_one_rate(),
    )
}

#[test]
fn nibble_chain_builds_arbitrary_constants() {
    // Ninety distinct wide constants overflow the operate dictionary
    // (including its translator-reserved slots), forcing the SIS
    // movi/lsli/ori construction chain for the stragglers — which must
    // still be value-exact.
    let mut text = vec![Instr::mov(Reg::R1, Operand2::imm(0).unwrap())];
    let mut expect: u32 = 0;
    for k in 1..=90u32 {
        let v = k << 8; // > any literal field, RotImm-encodable in ARM
        expect = expect.wrapping_add(v);
        text.push(Instr::dp(
            DpOp::Add,
            Reg::R1,
            Reg::R1,
            Operand2::imm(v).unwrap(),
        ));
    }
    text.push(Instr::mov(Reg::R0, Operand2::reg(Reg::R1)));
    text.push(exit_swi());
    let program = Program {
        text,
        ..Program::default()
    };
    let (native, fits, rate) = run_both(&program);
    assert_eq!(native, fits);
    assert_eq!(native, expect);
    assert!(rate < 1.0, "dictionary overflow must force expansions");
}

#[test]
fn non_commutative_alias_uses_scratch() {
    // sub r2, r1, r2: rd aliases the subtrahend — the 2-address fallback
    // must stash rm in ip first. Force the 2-address path with a tight
    // opcode budget.
    let program = Program {
        text: vec![
            Instr::mov(Reg::R1, Operand2::imm(100).unwrap()),
            Instr::mov(Reg::R2, Operand2::imm(33).unwrap()),
            Instr::dp(DpOp::Sub, Reg::R2, Reg::R1, Operand2::reg(Reg::R2)),
            Instr::mov(Reg::R0, Operand2::reg(Reg::R2)),
            exit_swi(),
        ],
        ..Program::default()
    };
    let prof = profile(&program).expect("profiles");
    let synth = synthesize(
        &prof,
        &SynthOptions {
            space_budget: 0.3,
            ..SynthOptions::default()
        },
    );
    let t = translate(&program, &synth.config).expect("translates");
    let run = Machine::new(FitsSet::load(&t.fits).expect("loads"))
        .run()
        .expect("runs");
    assert_eq!(run.exit_code, 67);
}

#[test]
fn predication_falls_back_to_branch_around() {
    // A predicated MVN — no PredMov family covers MVN, so the translator
    // must wrap the expansion in an inverse-condition hop.
    let program = Program {
        text: vec![
            Instr::cmp(Reg::R0, Operand2::imm(0).unwrap()),
            Instr::dp(DpOp::Mvn, Reg::R1, Reg::R0, Operand2::imm(0).unwrap()).with_cond(Cond::Eq),
            Instr::dp(DpOp::Mvn, Reg::R2, Reg::R0, Operand2::imm(0).unwrap()).with_cond(Cond::Ne),
            Instr::dp(DpOp::Eor, Reg::R0, Reg::R1, Operand2::reg(Reg::R2)),
            exit_swi(),
        ],
        ..Program::default()
    };
    let (native, fits, rate) = run_both(&program);
    assert_eq!(native, fits);
    assert_eq!(native, u32::MAX, "only the EQ arm fires on zero flags");
    assert!(rate < 1.0, "the predicated MVNs must have expanded");
}

#[test]
fn far_conditional_branch_goes_through_target_dictionary() {
    // A conditional branch across ~9000 instructions exceeds every
    // synthesized displacement width and must take the
    // inverse-hop + load-target + jr form.
    let mut text = vec![
        Instr::mov(Reg::R0, Operand2::imm(1).unwrap()),
        Instr::cmp(Reg::R0, Operand2::imm(1).unwrap()),
        Instr::Branch {
            cond: Cond::Eq,
            link: false,
            offset: 8996, // branch at index 2 targets the exit at index 9000
        },
    ];
    for _ in 0..(9000 - 3) {
        text.push(Instr::dp(
            DpOp::Add,
            Reg::R0,
            Reg::R0,
            Operand2::imm(1).unwrap(),
        ));
    }
    // Landing pad: r0 must still be 1 (the adds were skipped).
    text.push(exit_swi());
    let program = Program {
        text,
        ..Program::default()
    };
    let (native, fits, _) = run_both(&program);
    assert_eq!(native, fits);
    assert_eq!(native, 1, "the far branch must actually skip the adds");
}

#[test]
fn far_call_links_correctly() {
    // BL across a long text: the jalr path must still produce the right
    // return address in the FITS address space.
    let mut text = vec![
        Instr::Branch {
            cond: Cond::Al,
            link: true,
            offset: 6000 - 2,
        },
        // Return lands here; r0 was set by the callee.
        exit_swi(),
    ];
    for _ in 0..(6000 - 2) {
        text.push(Instr::dp(
            DpOp::Add,
            Reg::R1,
            Reg::R1,
            Operand2::imm(1).unwrap(),
        ));
    }
    // Callee: r0 = 42; return.
    text.push(Instr::mov(Reg::R0, Operand2::imm(42).unwrap()));
    text.push(Instr::mov(Reg::PC, Operand2::reg(Reg::LR)));
    let program = Program {
        text,
        ..Program::default()
    };
    let (native, fits, _) = run_both(&program);
    assert_eq!(native, fits);
    assert_eq!(native, 42);
}

#[test]
fn shifted_operand_on_non_mov_expands_via_scratch() {
    // add r0, r1, r2 LSR #7 — not a family of its own; the translator must
    // shift into ip first.
    let program = Program {
        text: vec![
            Instr::mov(Reg::R1, Operand2::imm(5).unwrap()),
            Instr::mov(Reg::R2, Operand2::imm(0x80).unwrap()),
            Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Add,
                set_flags: false,
                rd: Reg::R0,
                rn: Reg::R1,
                op2: Operand2::Reg(Reg::R2, fits_isa::Shift::Imm(fits_isa::ShiftKind::Lsr, 3)),
            },
            exit_swi(),
        ],
        ..Program::default()
    };
    let (native, fits, rate) = run_both(&program);
    assert_eq!(native, fits);
    assert_eq!(native, 5 + (0x80 >> 3));
    assert!(rate < 1.0);
}

#[test]
fn writeback_addressing_is_rejected_loudly() {
    // The executor supports post-indexing but the translator does not
    // (the kernel compiler never emits it); translation must fail with a
    // diagnostic rather than emit wrong code.
    let program = Program {
        text: vec![
            Instr::mov(Reg::R1, Operand2::imm(fits_isa::DATA_BASE).unwrap()),
            Instr::Mem {
                cond: Cond::Al,
                op: MemOp::Ldr,
                rd: Reg::R0,
                rn: Reg::R1,
                offset: fits_isa::AddrOffset::Imm(4),
                index: fits_isa::Index::Post,
            },
            exit_swi(),
        ],
        data: vec![0u8; 16],
        ..Program::default()
    };
    let prof = profile(&program).expect("functional run is fine");
    let synth = synthesize(&prof, &SynthOptions::default());
    let err = translate(&program, &synth.config).expect_err("must reject writeback");
    assert!(err.to_string().contains("writeback"), "{err}");
}

#[test]
fn synthesized_tiers_cover_the_contract() {
    // BIS must contain a mov and an unconditional branch; SIS must contain
    // the constant-construction trio and the indirect jumps.
    let program = fits_kernels::kernels::Kernel::Gsm
        .compile(fits_kernels::kernels::Scale::test())
        .expect("compiles");
    let prof = profile(&program).expect("profiles");
    let synth = synthesize(&prof, &SynthOptions::default());
    let cfg = &synth.config;
    assert!(cfg.tier_ops(Tier::Bis).any(|e| matches!(
        e.micro,
        fits_core::MicroOp::Dp2Reg {
            op: DpOp::Mov,
            set_flags: false
        }
    )));
    // The unconditional branch exists (possibly width-upgraded to AIS).
    assert!(cfg.ops.iter().any(|e| matches!(
        e.micro,
        fits_core::MicroOp::Branch {
            cond: Cond::Al,
            link: false
        }
    )));
    // The constant-construction ops exist in some tier (the optimizer may
    // upgrade a SIS op's width, relabeling it AIS).
    assert!(cfg
        .ops
        .iter()
        .any(|e| matches!(e.micro, fits_core::MicroOp::Dp2Imm { op: DpOp::Orr, .. })));
    assert!(cfg
        .tier_ops(Tier::Sis)
        .any(|e| e.micro == fits_core::MicroOp::LoadTarget));
    assert!(cfg
        .tier_ops(Tier::Sis)
        .any(|e| matches!(e.micro, fits_core::MicroOp::BranchReg { link: true })));
}

#[test]
fn disassembly_covers_every_instruction() {
    let program = fits_kernels::kernels::Kernel::Crc32
        .compile(fits_kernels::kernels::Scale::test())
        .expect("compiles");
    let out = FitsFlow::new().run(&program).expect("flow");
    let text = fits_core::disassemble(&out.fits).expect("disassembles");
    assert_eq!(text.lines().count(), out.fits.instrs.len());
    assert!(text.contains("Plain("), "decoded micro-ops appear");
    assert!(
        text.lines().next().unwrap().starts_with('>'),
        "entry marked"
    );
}
