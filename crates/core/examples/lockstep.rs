//! Runs native and FITS executions in lockstep for one kernel.

#![allow(clippy::unwrap_used)]

use fits_core::{profile::profile, synthesize, translate, FitsSet, SynthOptions};
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::{Ar32Set, Machine};

fn stores<S: fits_sim::InstrSet>(set: S, lim: usize) -> Vec<(u32, u32, u32)> {
    let mut v = Vec::new();
    let mut m = Machine::new(set);
    let _ = m.run_observed(|_, info| {
        if let Some(mem) = &info.mem {
            // Skip stores of code addresses (saved LR): those differ
            // between the ISAs' address spaces by design.
            let is_code =
                mem.data >= fits_isa::TEXT_BASE && mem.data < fits_isa::TEXT_BASE + 0x20000;
            if !is_code && v.len() < lim {
                v.push((mem.addr, mem.data, info.pc));
            }
        }
    });
    v
}

fn main() {
    let k = Kernel::JpegDct;
    let program = k.compile(Scale::test()).unwrap();
    let p = profile(&program).unwrap();
    let s = synthesize(&p, &SynthOptions::default());
    let t = translate(&program, &s.config).unwrap();
    let a = stores(Ar32Set::load(&program), 50000);
    let f = stores(FitsSet::load(&t.fits).unwrap(), 50000);
    for (i, (x, y)) in a.iter().zip(f.iter()).enumerate() {
        if x.0 != y.0 || x.1 != y.1 {
            println!("divergence at store #{i}:");
            println!(
                "  ARM : addr {:#010x} data {:#010x} pc {:#010x}",
                x.0, x.1, x.2
            );
            println!(
                "  FITS: addr {:#010x} data {:#010x} pc {:#010x}",
                y.0, y.1, y.2
            );
            // context: surrounding ARM disasm
            let idx = ((x.2 - fits_isa::TEXT_BASE) / 4) as usize;
            for j in idx.saturating_sub(12)..(idx + 3).min(program.text.len()) {
                println!(
                    "  {} arm[{}] {}",
                    if j == idx { "=>" } else { "  " },
                    j,
                    program.text[j]
                );
            }
            return;
        }
    }
    println!("stores identical ({} vs {})", a.len(), f.len());
}
