//! Dumps one kernel's synthesized configuration and translated binary.

#![allow(clippy::unwrap_used)]

use fits_core::{profile::profile, synthesize, translate, FitsSet, SynthOptions};
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::InstrSet;

fn main() {
    let k = Kernel::JpegDct;
    let program = k.compile(Scale::test()).unwrap();
    let p = profile(&program).unwrap();
    let s = synthesize(&p, &SynthOptions::default());
    let t = translate(&program, &s.config).unwrap();
    let set = FitsSet::load(&t.fits).unwrap();
    // Map ARM index -> FITS position
    let mut pos = 0usize;
    for (i, e) in t.stats.expansion.iter().enumerate().take(75) {
        for j in 0..*e {
            let pc = fits_isa::TEXT_BASE + (pos as u32) * 2;
            let op = set.op_at(pc).unwrap();
            let first = if j == 0 {
                format!("arm[{i}] {}", program.text[i])
            } else {
                String::new()
            };
            println!("f[{pos:4}] {:<60} {first}", format!("{op:?}"));
            pos += 1;
        }
    }
}
