//! Runs the FITS flow over the whole kernel suite.

#![allow(clippy::unwrap_used)]

use fits_core::FitsFlow;
use fits_kernels::kernels::{Kernel, Scale};

fn main() {
    let mut stat_sum = 0.0;
    let mut dyn_sum = 0.0;
    let mut ratio_sum = 0.0;
    for k in Kernel::ALL {
        let program = k.compile(Scale::test()).unwrap();
        match FitsFlow::new().run(&program) {
            Ok(out) => {
                let s = out.mapping.static_one_to_one_rate();
                let d = out.dynamic_rate();
                let r = out.code_ratio(program.code_bytes());
                stat_sum += s;
                dyn_sum += d;
                ratio_sum += r;
                println!("{:18} static {:5.1}%  dyn {:5.1}%  code {:4.2}  opcodes {:3}  dict {:3}  verified {}",
                    k.name(), 100.0*s, 100.0*d, r,
                    out.config().ops.len(), out.config().dicts.entries(),
                    out.fits_run.is_some());
            }
            Err(e) => println!("{:18} ERROR: {e}", k.name()),
        }
    }
    let n = Kernel::ALL.len() as f64;
    println!(
        "AVG static {:.1}%  dyn {:.1}%  code {:.3}",
        100.0 * stat_sum / n,
        100.0 * dyn_sum / n,
        ratio_sum / n
    );
}
