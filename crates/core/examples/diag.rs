//! Prints per-kernel diagnostics from the FITS flow.

#![allow(clippy::unwrap_used)]

use fits_core::profile::profile;
use fits_core::synth::{synthesize, SynthOptions};
use fits_core::translate::translate;
use fits_kernels::kernels::{Kernel, Scale};
use std::collections::HashMap;

fn main() {
    for k in [Kernel::Crc32, Kernel::SusanEdges, Kernel::Sha, Kernel::Fft] {
        let program = k.compile(Scale::test()).unwrap();
        let p = profile(&program).unwrap();
        let s = synthesize(&p, &SynthOptions::default());
        let t = translate(&program, &s.config).unwrap();
        println!(
            "== {} static {:.1}% dynamic {:.1}%  predicted exp {:.3}",
            k.name(),
            100.0 * t.stats.static_one_to_one_rate(),
            100.0 * t.stats.dynamic_one_to_one_rate(&p.exec_counts),
            s.report.predicted_expansion
        );
        // aggregate expanded dyn weight per disassembly line
        let mut agg: HashMap<String, u64> = HashMap::new();
        for (i, e) in t.stats.expansion.iter().enumerate() {
            if *e > 1 && p.exec_counts[i] > 0 {
                let key = format!("{} (n={})", program.text[i], e);
                *agg.entry(key).or_default() += p.exec_counts[i];
            }
        }
        let mut v: Vec<_> = agg.into_iter().collect();
        v.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        for (k2, c) in v.iter().take(12) {
            println!("   {c:>9}  {k2}");
        }
    }
}
