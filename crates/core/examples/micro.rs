//! Exercises the flow on a tiny hand-built program.

#![allow(clippy::unwrap_used)]

use fits_core::FitsFlow;
use fits_kernels::builder::{FnBuilder, ModuleBuilder};
use fits_kernels::codegen::compile;
use fits_kernels::ir::{BinOp, CmpOp};
use fits_sim::{Ar32Set, Machine};

fn check(name: &str, build: impl FnOnce(&mut FnBuilder)) {
    let mut mb = ModuleBuilder::new();
    let mut f = FnBuilder::new("main", 0);
    build(&mut f);
    mb.push(f.finish());
    let module = mb.finish(vec![0u8; 256]);
    let program = compile(&module).unwrap();
    let arm = Machine::new(Ar32Set::load(&program)).run().unwrap();
    match FitsFlow::new().run(&program) {
        Ok(_) => println!("{name:30} OK (exit {:#x})", arm.exit_code),
        Err(e) => println!("{name:30} FAIL: {e}"),
    }
}

fn main() {
    check("shift_by_reg_asr", |f| {
        let x = f.imm(0xffff_1234u32);
        let n = f.imm(12u32);
        let y = f.bin(BinOp::Sar, x, n);
        f.ret(Some(y));
    });
    check("shift_by_reg_many", |f| {
        let acc = f.imm(0u32);
        f.repeat(20u32, |f, i| {
            let x = f.imm(0x8234_5678u32);
            let y = f.bin(BinOp::Shr, x, i);
            let z = f.bin(BinOp::Sar, x, i);
            let w = f.bin(BinOp::Shl, x, i);
            let t1 = f.xor(y, z);
            let t2 = f.xor(t1, w);
            let a2 = f.add(acc, t2);
            f.copy(acc, a2);
        });
        f.ret(Some(acc));
    });
    check("shift_imm_various", |f| {
        let x = f.imm(0x8234_5678u32);
        let mut acc = f.imm(0u32);
        for n in [1u32, 2, 3, 4, 5, 7, 8, 12, 15, 16, 24, 31] {
            let a = f.shl(x, n);
            let b = f.shr(x, n);
            let c = f.sar(x, n);
            let d = f.bin(BinOp::Ror, x, n);
            let t = f.xor(a, b);
            let t2 = f.xor(c, d);
            let t3 = f.xor(t, t2);
            acc = f.add(acc, t3);
        }
        f.ret(Some(acc));
    });
    check("ldrsh_and_ldrsb", |f| {
        let base = f.imm(fits_isa::DATA_BASE);
        let v = f.imm(0xabcd_8f7fu32);
        f.store_w(base, 16, v);
        let a = f.load_sh(base, 16);
        let b = f.load_sh(base, 18);
        let c = f.load_sb(base, 19);
        let t = f.xor(a, b);
        let t2 = f.xor(t, c);
        f.ret(Some(t2));
    });
    check("mul_add_chain", |f| {
        let mut acc = f.imm(1u32);
        for k in [3u32, 7, 11, 100, 255] {
            let c = f.imm(k);
            acc = f.mul(acc, c);
            acc = f.add(acc, 1u32);
        }
        f.ret(Some(acc));
    });
    check("cmp_signed_negatives", |f| {
        let a = f.imm(-5i32);
        let out = f.imm(0u32);
        f.if_(f.cmp(CmpOp::LtS, a, 0u32), |f| {
            let n = f.neg(a);
            f.copy(a, n);
        });
        f.if_(f.cmp(CmpOp::LeS, a, 20u32), |f| f.set_imm(out, 7));
        let r = f.add(out, a);
        f.ret(Some(r));
    });
}
