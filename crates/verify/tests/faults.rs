//! Seeded-fault tests: corrupt one aspect of an accepted
//! `(Program, Synthesis, Translation)` triple and check that the right
//! analysis family reports the right rule code.

#![allow(clippy::unwrap_used)]

use fits_core::{decode_word, op_meta, FitsFlow, FitsOp, Synthesis, Translation};
use fits_isa::{Instr, Program, Reg};
use fits_kernels::kernels::{Kernel, Scale};
use fits_sim::instr_meta;
use fits_verify::analyze;

/// Runs the flow's static stages on one kernel and returns the triple.
fn triple(kernel: Kernel) -> (Program, Synthesis, Translation) {
    let program = kernel.compile(Scale::test()).unwrap();
    let flow = FitsFlow {
        verify: false,
        ..FitsFlow::default()
    };
    let out = flow.run(&program).unwrap();
    let translation = Translation {
        fits: out.fits,
        stats: out.mapping,
    };
    (program, out.synthesis, translation)
}

/// All decoded ops of a translation (panics on undecodable words: the
/// uncorrupted triples must be sound).
fn decode_all(translation: &Translation) -> Vec<FitsOp> {
    translation
        .fits
        .instrs
        .iter()
        .enumerate()
        .map(|(j, &w)| decode_word(&translation.fits.config, w, j).unwrap())
        .collect()
}

/// Every 16-bit word sharing `word`'s opcode prefix.
fn same_prefix_words(translation: &Translation, word: u16) -> Vec<u16> {
    let entry = translation.fits.config.match_word(word).unwrap();
    let suffix_bits = 16 - u32::from(entry.len);
    let prefix = word & !(((1u32 << suffix_bits) - 1) as u16);
    (0..1u32 << suffix_bits)
        .map(|bits| prefix | bits as u16)
        .collect()
}

/// Corrupting a dictionary (so instruction words carry out-of-range
/// indices) is reported by the encoding family as `ENC004`.
#[test]
fn corrupt_dictionary_index_is_enc004() {
    let mut hit = false;
    for &kernel in Kernel::ALL {
        let (program, synthesis, mut translation) = triple(kernel);
        // Only meaningful when some word actually indexes a dictionary:
        // emptying the dictionaries must then break its decode.
        let dicts = &mut translation.fits.config.dicts;
        let had_entries =
            !(dicts.operate.is_empty() && dicts.mem_disp.is_empty() && dicts.shift.is_empty());
        dicts.operate.clear();
        dicts.mem_disp.clear();
        dicts.shift.clear();
        let report = analyze(&program, &synthesis, &translation);
        if had_entries && report.has_code("ENC004") {
            assert!(!report.is_clean());
            hit = true;
            break;
        }
    }
    assert!(hit, "no kernel exercised a dictionary-indexed encoding");
}

/// Corrupting a branch's offset field (repacking the word with a different
/// displacement) is reported by the control-flow family as `CFI001` (target
/// outside the text) or `CFI002` (target off a translation boundary).
#[test]
fn corrupt_branch_offset_is_cfi() {
    let mut hit = false;
    'kernels: for &kernel in Kernel::ALL {
        let (program, synthesis, mut translation) = triple(kernel);
        let ops = decode_all(&translation);
        let n = translation.fits.instrs.len() as i64;
        let positions = translation.stats.positions();

        for (j, op) in ops.iter().enumerate() {
            let FitsOp::Plain(Instr::Branch { cond, link, offset }) = op else {
                continue;
            };
            let word = translation.fits.instrs[j];
            for cand in same_prefix_words(&translation, word) {
                let Ok(FitsOp::Plain(Instr::Branch {
                    cond: c2,
                    link: l2,
                    offset: o2,
                })) = decode_word(&translation.fits.config, cand, j)
                else {
                    continue;
                };
                if c2 != *cond || l2 != *link || o2 == *offset {
                    continue;
                }
                let target = j as i64 + 2 + i64::from(o2);
                let out_of_text = target < 0 || target >= n;
                let off_boundary = !out_of_text && !positions.contains(&(target as u32));
                if !(out_of_text || off_boundary) {
                    continue;
                }
                translation.fits.instrs[j] = cand;
                let report = analyze(&program, &synthesis, &translation);
                assert!(!report.is_clean());
                if out_of_text {
                    assert!(report.has_code("CFI001"), "{}", report.render_text());
                } else {
                    assert!(report.has_code("CFI002"), "{}", report.render_text());
                }
                hit = true;
                break 'kernels;
            }
        }
    }
    assert!(hit, "no kernel offered a corruptible branch offset");
}

/// Inserting a flag-clobbering instruction into an expansion whose flags
/// are live is reported by the dataflow family as `DF002`.
#[test]
fn flag_clobbering_expansion_is_df002() {
    let mut hit = false;
    'kernels: for &kernel in Kernel::ALL {
        let (program, synthesis, mut translation) = triple(kernel);
        let ops = decode_all(&translation);
        let positions = translation.stats.positions();

        // A flag-setting native instruction immediately consumed by a
        // conditional successor: flags are live across it.
        for i in 0..program.text.len().saturating_sub(1) {
            if !program.text[i].sets_flags()
                || matches!(program.text[i], Instr::Branch { .. })
                || !instr_meta(&program.text[i + 1]).reads_flags
            {
                continue;
            }
            let slice = positions[i] as usize..positions[i + 1] as usize;
            let Some(setter) = slice.clone().find(|&j| op_meta(&ops[j]).sets_flags) else {
                continue;
            };
            // Duplicate the flag-setting word inside the expansion: the
            // mapping stays consistent, but the expansion now writes the
            // flags twice.
            let word = translation.fits.instrs[setter];
            translation.fits.instrs.insert(slice.end, word);
            translation.stats.expansion[i] += 1;
            let report = analyze(&program, &synthesis, &translation);
            assert!(!report.is_clean());
            assert!(report.has_code("DF002"), "{}", report.render_text());
            hit = true;
            break 'kernels;
        }
    }
    assert!(hit, "no kernel offered a live flag def/use chain");
}

/// Repacking an instruction word with a different destination register is
/// reported by the translation-validation family as `TV001` (the expansion
/// no longer preserves the native instruction's register effects).
#[test]
fn corrupt_destination_register_is_tv001() {
    let mut hit = false;
    'kernels: for &kernel in Kernel::ALL {
        let (program, synthesis, mut translation) = triple(kernel);
        let positions = translation.stats.positions();

        for (i, instr) in program.text.iter().enumerate() {
            // One-to-one mapped plain data processing, no PC involvement.
            if positions[i + 1] - positions[i] != 1 {
                continue;
            }
            let Instr::Dp {
                op,
                set_flags,
                rd,
                op2,
                cond,
                ..
            } = instr
            else {
                continue;
            };
            if op.is_compare() {
                continue;
            }
            let meta = instr_meta(instr);
            if meta
                .sources
                .into_iter()
                .chain(meta.dests)
                .flatten()
                .any(|r| r == Reg::PC)
            {
                continue;
            }
            let j = positions[i] as usize;
            let word = translation.fits.instrs[j];
            for cand in same_prefix_words(&translation, word) {
                let Ok(FitsOp::Plain(Instr::Dp {
                    op: o2,
                    set_flags: s2,
                    rd: rd2,
                    rn: rn2,
                    op2: p2,
                    cond: c2,
                })) = decode_word(&translation.fits.config, cand, j)
                else {
                    continue;
                };
                // Same operation, different destination (two-address forms
                // retarget rn together with rd).
                let retargeted = o2 == *op
                    && s2 == *set_flags
                    && c2 == *cond
                    && p2 == *op2
                    && rd2 != *rd
                    && rd2 != Reg::IP
                    && rd2 != Reg::PC
                    && rn2 != Reg::PC;
                if !retargeted {
                    continue;
                }
                translation.fits.instrs[j] = cand;
                let report = analyze(&program, &synthesis, &translation);
                assert!(!report.is_clean());
                assert!(report.has_code("TV001"), "{}", report.render_text());
                hit = true;
                break 'kernels;
            }
        }
    }
    assert!(hit, "no kernel offered a corruptible destination register");
}
