//! Seeded-fault tests for the `ISA` family: mutate one aspect of a
//! shipped `powerfits-isa-v1` spec and check that [`lint_spec_text`]
//! reports the right rule code. The unmutated shipped specs must be
//! clean.

#![allow(clippy::unwrap_used)]

use fits_isa::spec::{AR32_SPEC_TEXT, FITS_SPEC_TEXT, T16_SPEC_TEXT};
use fits_verify::lint_spec_text;

/// Applies one exact-match text mutation (panicking if the needle is
/// stale) and lints the result.
fn lint_mutated(text: &str, from: &str, to: &str) -> fits_verify::Report {
    assert!(text.contains(from), "mutation needle `{from}` went stale");
    lint_spec_text(&text.replace(from, to)).unwrap()
}

#[test]
fn shipped_specs_lint_clean() {
    for (name, text) in [
        ("ar32", AR32_SPEC_TEXT),
        ("t16", T16_SPEC_TEXT),
        ("fits", FITS_SPEC_TEXT),
    ] {
        let report = lint_spec_text(text).unwrap();
        assert!(
            report.diagnostics.is_empty(),
            "{name}: {}",
            report.render_text()
        );
    }
}

/// Widening LSR's top bits so it laps into LSL's space — with a literal
/// of its own that LSL does not constrain — leaves two forms overlapping
/// with neither refining the other: `ISA001`.
#[test]
fn ambiguous_form_overlap_is_isa001() {
    let report = lint_mutated(
        T16_SPEC_TEXT,
        "form lsr-imm { pattern \"00001 iiiii mmm ddd\" }",
        "form lsr-imm { pattern \"0000x iiiii mmm 0dd\" }",
    );
    assert!(report.has_code("ISA001"), "{}", report.render_text());
    assert!(!report.has_code("ISA004"), "{}", report.render_text());
}

/// Turning BX's format-5 sub-opcode bits into don't-cares breaks the
/// round-trip: the encoder canonicalizes don't-care bits to zero, and the
/// zeroed word belongs to the earlier `hi-add` form, so a decoded BX
/// re-encodes into a word that decodes as an ADD: `ISA002`.
#[test]
fn non_round_trip_form_is_isa002() {
    let report = lint_mutated(
        T16_SPEC_TEXT,
        "form bx     { pattern \"01000111 0g mmm 000\" }",
        "form bx     { pattern \"010001xx 0g mmm 000\" }",
    );
    assert!(report.has_code("ISA002"), "{}", report.render_text());
}

/// Widening ADD3's low prefix bit to a don't-care makes it claim the
/// whole SUB3 space; the later `sub3-reg` entry can never fire: `ISA003`.
#[test]
fn dead_entry_is_isa003() {
    let report = lint_mutated(
        T16_SPEC_TEXT,
        "form add3-reg  { pattern \"0001100 mmm nnn ddd\" }",
        "form add3-reg  { pattern \"000110x mmm nnn ddd\" }",
    );
    assert!(report.has_code("ISA003"), "{}", report.render_text());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "ISA003" && d.message.contains("sub3-reg")),
        "{}",
        report.render_text()
    );
    assert!(!report.has_code("ISA001"), "{}", report.render_text());
}

/// Renaming a form to something no constructor binds means the spec
/// cannot compile into a decode engine: `ISA004`.
#[test]
fn unbound_form_is_isa004() {
    let report = lint_mutated(AR32_SPEC_TEXT, "form swi", "form swj");
    assert!(report.has_code("ISA004"), "{}", report.render_text());
    assert!(!report.has_code("ISA001"), "{}", report.render_text());
    assert!(!report.has_code("ISA003"), "{}", report.render_text());
}

/// A document that does not parse is a load error, not a lint finding.
#[test]
fn parse_failure_is_a_spec_error() {
    let err = lint_spec_text("isa broken {").unwrap_err();
    assert!(err.pos.line >= 1);
}
