//! Seeded-fault tests for the `MULTI` family: build an accepted
//! multi-application synthesis, cook one defect into the shared
//! configuration, and check the right rule code fires.

#![allow(clippy::unwrap_used)]

use fits_core::{profile, synthesize_multi, MultiMember, MultiOptions, MultiOutcome};
use fits_isa::spec::SpecCatalog;
use fits_isa::Program;
use fits_kernels::kernels::{Kernel, Scale};
use fits_verify::{verify_multi, MultiMemberBin};

fn multi_outcome(kernels: &[Kernel]) -> (Vec<(String, Program)>, MultiOutcome) {
    let compiled: Vec<(String, Program)> = kernels
        .iter()
        .map(|k| (k.name().to_owned(), k.compile(Scale::test()).unwrap()))
        .collect();
    let profiles: Vec<_> = compiled.iter().map(|(_, p)| profile(p).unwrap()).collect();
    let members: Vec<MultiMember<'_>> = compiled
        .iter()
        .zip(&profiles)
        .map(|((name, program), profile)| MultiMember {
            name,
            program,
            profile,
        })
        .collect();
    let weights = vec![1.0; members.len()];
    let outcome = synthesize_multi(&members, &weights, &MultiOptions::default()).unwrap();
    (compiled, outcome)
}

fn member_bins(outcome: &MultiOutcome) -> Vec<MultiMemberBin<'_>> {
    outcome
        .members
        .iter()
        .map(|m| MultiMemberBin {
            name: &m.name,
            fits: &m.translation.fits,
        })
        .collect()
}

/// An accepted multi synthesis passes `MULTI` clean: the shared config
/// conforms to the FITS vocabulary spec and covers every member stream.
#[test]
fn accepted_multi_synthesis_is_clean() {
    let (_compiled, outcome) = multi_outcome(&[Kernel::Crc32, Kernel::Bitcount, Kernel::Sha]);
    let catalog = SpecCatalog::default();
    let report = verify_multi(&outcome.synthesis.config, &member_bins(&outcome), &catalog);
    assert!(report.is_clean(), "{}", report.render_text());
}

/// Removing an opcode entry that some member word uses — from both the
/// shared config and the member configs — cooks an uncovered opcode, and
/// the coverage rule reports it as `MULTI001`.
#[test]
fn uncovered_member_opcode_is_multi001() {
    let (_compiled, mut outcome) = multi_outcome(&[Kernel::Crc32, Kernel::Bitcount]);

    // Find an opcode entry used by at least one member word and drop it
    // everywhere, so the defect is a coverage hole rather than drift.
    let shared = &mut outcome.synthesis.config;
    let victim = {
        let m = &outcome.members[0];
        let word = m.translation.fits.instrs[0];
        shared
            .ops
            .iter()
            .position(|e| {
                let suffix = 16 - u32::from(e.len);
                word >> suffix == e.code >> suffix
            })
            .unwrap()
    };
    shared.ops.remove(victim);
    for m in &mut outcome.members {
        m.translation.fits.config.ops.remove(victim);
    }

    let catalog = SpecCatalog::default();
    let report = verify_multi(&outcome.synthesis.config, &member_bins(&outcome), &catalog);
    assert!(!report.is_clean());
    assert!(report.has_code("MULTI001"), "{}", report.render_text());
    assert!(
        !report.has_code("MULTI002"),
        "coverage fault must not read as drift: {}",
        report.render_text()
    );
}

/// A member whose opcode table silently diverges from the shared
/// synthesis (here: one entry removed from the member only) is reported
/// as `MULTI002` configuration drift.
#[test]
fn member_config_drift_is_multi002() {
    let (_compiled, mut outcome) = multi_outcome(&[Kernel::Crc32, Kernel::Bitcount]);
    outcome.members[1].translation.fits.config.ops.pop();

    let catalog = SpecCatalog::default();
    let report = verify_multi(&outcome.synthesis.config, &member_bins(&outcome), &catalog);
    assert!(!report.is_clean());
    assert!(report.has_code("MULTI002"), "{}", report.render_text());
}

/// A shared config whose register window is not a spec-declared window
/// size fails the chained `ISA005` vocabulary conformance check.
#[test]
fn shared_config_vocabulary_violation_is_isa005() {
    let (_compiled, mut outcome) = multi_outcome(&[Kernel::Crc32, Kernel::Bitcount]);
    outcome.synthesis.config.regs.map.pop();
    for m in &mut outcome.members {
        m.translation.fits.config.regs.map.pop();
    }

    let catalog = SpecCatalog::default();
    let report = verify_multi(&outcome.synthesis.config, &member_bins(&outcome), &catalog);
    assert!(report.has_code("ISA005"), "{}", report.render_text());
}
