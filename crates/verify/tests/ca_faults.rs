//! Seeded-fault tests for the `CA` cache-analysis family: cook one aspect
//! of an otherwise sound analysis through the `#[doc(hidden)]` test seams
//! and check that [`fits_verify::audit`] reports the right rule code
//! instead of silently passing.

#![allow(clippy::unwrap_used)]

use fits_core::{decode_word, FitsFlow, FitsOp, Translation};
use fits_isa::Program;
use fits_kernels::kernels::{Kernel, Scale};
use fits_scenario::ScenarioSpec;
use fits_verify::ca::{analyze_fits_cache_with, analyze_native_cache_with, audit, FetchClass};
use fits_verify::{analyze_fits_cache, analyze_native_cache, fits_cfg, native_cfg, Cfg};

/// Runs the flow's static stages on one kernel.
fn compile(kernel: Kernel) -> (Program, Translation) {
    let program = kernel.compile(Scale::test()).unwrap();
    let flow = FitsFlow {
        verify: false,
        ..FitsFlow::default()
    };
    let out = flow.run(&program).unwrap();
    (
        program,
        Translation {
            fits: out.fits,
            stats: out.mapping,
        },
    )
}

fn decoded_ops(translation: &Translation) -> Vec<Option<FitsOp>> {
    translation
        .fits
        .instrs
        .iter()
        .enumerate()
        .map(|(j, &w)| decode_word(&translation.fits.config, w, j).ok())
        .collect()
}

/// A sound analysis audits clean on every kernel, for both streams and
/// every preset geometry — the baseline the fault injections perturb.
#[test]
fn sound_analyses_audit_clean() {
    for preset in ["sa1100", "small-embedded"] {
        let spec = ScenarioSpec::preset(preset).unwrap();
        let params = spec.icache_abstract();
        for &kernel in &Kernel::ALL[..4] {
            let (program, translation) = compile(kernel);
            let native = analyze_native_cache(&program, params);
            assert!(
                audit(&native, &native_cfg(&program), &spec.icache).is_empty(),
                "{preset}/{}: native audit not clean",
                kernel.name()
            );
            let ops = decoded_ops(&translation);
            let targets = &translation.fits.config.dicts.target;
            let fits = analyze_fits_cache(&ops, translation.fits.entry, targets, params);
            assert!(
                audit(
                    &fits,
                    &fits_cfg(&ops, translation.fits.entry, targets),
                    &spec.icache
                )
                .is_empty(),
                "{preset}/{}: fits audit not clean",
                kernel.name()
            );
        }
    }
}

/// Upgrading an always-miss fetch to always-hit — the classic unsound
/// must-analysis bug — is reported as `CA001`.
#[test]
fn unsound_hit_claim_is_ca001() {
    let spec = ScenarioSpec::sa1100();
    let params = spec.icache_abstract();
    let mut hit = false;
    for &kernel in Kernel::ALL {
        let (program, _) = compile(kernel);
        let mut analysis = analyze_native_cache(&program, params);
        let Some(victim) = analysis
            .node_class
            .iter()
            .position(|&c| c == FetchClass::AlwaysMiss)
        else {
            continue;
        };
        analysis.force_class(victim, FetchClass::AlwaysHit);
        let diags = audit(&analysis, &native_cfg(&program), &spec.icache);
        assert!(
            diags.iter().any(|d| d.code == "CA001"),
            "{}: cooked hit claim not caught",
            kernel.name()
        );
        hit = true;
        break;
    }
    assert!(hit, "no kernel offered an always-miss fetch to corrupt");
}

/// An analysis run against the wrong associativity is reported as `CA002`.
#[test]
fn wrong_associativity_is_ca002() {
    let spec = ScenarioSpec::sa1100();
    let (program, _) = compile(Kernel::ALL[0]);
    let mut wrong = spec.icache_abstract();
    wrong.ways *= 2; // claims twice the machine's associativity
    let mut analysis = analyze_native_cache(&program, spec.icache_abstract());
    analysis.force_params(wrong);
    let diags = audit(&analysis, &native_cfg(&program), &spec.icache);
    assert!(
        diags.iter().any(|d| d.code == "CA002"),
        "wrong geometry not caught"
    );
}

/// Dropping a CFG edge before solving — losing a path every domain must
/// account for — is reported as `CA003`. Exercised on the FITS stream.
#[test]
fn dropped_cfg_edge_is_ca003() {
    let spec = ScenarioSpec::sa1100();
    let params = spec.icache_abstract();
    let mut hit = false;
    for &kernel in Kernel::ALL {
        let (_, translation) = compile(kernel);
        let ops = decoded_ops(&translation);
        let targets = &translation.fits.config.dicts.target;
        let mut build = fits_cfg(&ops, translation.fits.entry, targets);
        // Drop the first branch-style edge (a non-fall-through edge, so
        // the graph stays plausible).
        let Some((from, to)) = build
            .cfg
            .succs
            .iter()
            .enumerate()
            .flat_map(|(i, list)| list.iter().map(move |&s| (i, s)))
            .find(|&(i, s)| s != i + 1)
        else {
            continue;
        };
        let mut succs = build.cfg.succs.clone();
        succs[from].retain(|&s| s != to);
        build.cfg = Cfg::from_succs(succs);
        let analysis = analyze_fits_cache_with(params, build);
        let diags = audit(
            &analysis,
            &fits_cfg(&ops, translation.fits.entry, targets),
            &spec.icache,
        );
        assert!(
            diags.iter().any(|d| d.code == "CA003"),
            "{}: dropped edge {from}->{to} not caught",
            kernel.name()
        );
        hit = true;
        break;
    }
    assert!(hit, "no kernel offered a droppable CFG edge");
}

/// The native analysis-with-CFG seam agrees with the plain entry point
/// when handed the honest graph.
#[test]
fn seamed_and_plain_analyses_agree() {
    let spec = ScenarioSpec::small_embedded();
    let params = spec.icache_abstract();
    let (program, _) = compile(Kernel::ALL[1]);
    let plain = analyze_native_cache(&program, params);
    let seamed = analyze_native_cache_with(&program, params, native_cfg(&program));
    assert_eq!(plain.node_class, seamed.node_class);
    assert_eq!(plain.persistent_set, seamed.persistent_set);
}
