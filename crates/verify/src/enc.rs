//! `ENC` — encoding soundness of the synthesized opcode space.
//!
//! Rules:
//! * `ENC001` — two opcode entries collide (one prefix is a prefix of the
//!   other), so some instruction words decode ambiguously.
//! * `ENC002` — the opcode table oversubscribes the 16-bit opcode space
//!   (Kraft budget of 65536 units) or an entry has an illegal prefix
//!   length.
//! * `ENC003` — an operand layout does not fit the bits left after the
//!   opcode prefix, or the register window is malformed (window size must
//!   equal `2^field_bits` so every register field value resolves).
//! * `ENC004` — an instruction word fails to decode under the binary's own
//!   configuration (no matching prefix, dictionary index out of range);
//!   emitted by the shared pre-decode pass in [`crate::analyze`].
//! * `ENC005` — an instruction word does not round-trip bit-exactly through
//!   the decoder's field unpack/pack (non-canonical or corrupt encoding).
//! * `ENC006` — an opcode entry pairs a micro-operation with a layout the
//!   programmable decoder cannot realize.

use fits_core::translate::{pack, unpack};
use fits_core::{Layout, MicroOp, Synthesis};

use crate::{Ctx, Diagnostic};

/// Opcode-space units (out of 65536) an entry of prefix length `len`
/// occupies.
fn space_units(len: u8) -> u64 {
    1u64 << (16 - u32::from(len).min(16))
}

/// The micro-op/layout pairs the programmable decoder implements (the
/// match arms of `fits_core::exec`'s decoder).
fn pair_realizable(micro: MicroOp, layout: Layout) -> bool {
    matches!(
        (micro, layout),
        (
            MicroOp::Dp3 { .. },
            Layout::R3 | Layout::RRImm { .. } | Layout::RRDict { .. }
        ) | (MicroOp::Dp2Reg { .. }, Layout::R2)
            | (
                MicroOp::Dp2Imm { .. },
                Layout::R2Imm { .. } | Layout::R2Dict { .. }
            )
            | (
                MicroOp::ShiftImm { .. },
                Layout::RRImm { .. } | Layout::RRDict { .. }
            )
            | (MicroOp::ShiftReg { .. }, Layout::R2)
            | (MicroOp::CmpReg { .. }, Layout::R2)
            | (
                MicroOp::CmpImm { .. },
                Layout::R2Imm { .. } | Layout::R2Dict { .. }
            )
            | (MicroOp::Mul3, Layout::R3)
            | (
                MicroOp::Mem { .. },
                Layout::MemImm { .. } | Layout::MemDict { .. }
            )
            | (MicroOp::Branch { .. }, Layout::Br { .. })
            | (MicroOp::BranchReg { .. }, Layout::R1)
            | (MicroOp::PredMovImm { .. }, Layout::R2Imm { .. })
            | (MicroOp::PredMovReg { .. }, Layout::R2)
            | (MicroOp::LoadTarget, Layout::R2Dict { .. })
            | (MicroOp::Swi, Layout::Trap { .. })
    )
}

pub(crate) fn analyze_enc(ctx: &Ctx<'_>, synthesis: &Synthesis, diags: &mut Vec<Diagnostic>) {
    let config = &ctx.translation.fits.config;
    let r = config.regs.field_bits;

    // ENC002: legal prefix lengths and the opcode-space budget.
    let mut space = 0u64;
    for (k, e) in config.ops.iter().enumerate() {
        if e.len == 0 || e.len > 16 {
            diags.push(Diagnostic::error(
                "ENC002",
                format!("opcode entry {k} has illegal prefix length {}", e.len),
            ));
        } else {
            space += space_units(e.len);
        }
    }
    if space > 65536 {
        diags.push(Diagnostic::error(
            "ENC002",
            format!("opcode table oversubscribes the 16-bit space: {space} of 65536 units"),
        ));
    }
    // The synthesis report must agree with the table it shipped.
    if synthesis.config.ops.len() > config.ops.len() {
        diags.push(Diagnostic::error(
            "ENC002",
            format!(
                "translated configuration dropped opcodes: {} synthesized, {} shipped",
                synthesis.config.ops.len(),
                config.ops.len()
            ),
        ));
    }

    // ENC001: pairwise prefix collisions.
    for (a_idx, a) in config.ops.iter().enumerate() {
        for (b_off, b) in config.ops.iter().enumerate().skip(a_idx + 1) {
            let l = a.len.min(b.len).min(16);
            if l == 0 {
                continue; // already ENC002
            }
            if (a.code >> (16 - u16::from(l))) == (b.code >> (16 - u16::from(l))) {
                diags.push(Diagnostic::error(
                    "ENC001",
                    format!(
                        "opcode entries {a_idx} ({:?}/{:?}) and {b_off} ({:?}/{:?}) collide: \
                         prefix {:0w$b} is not free",
                        a.micro,
                        a.layout,
                        b.micro,
                        b.layout,
                        a.code >> (16 - u16::from(l)),
                        w = l as usize
                    ),
                ));
            }
        }
    }

    // ENC003: layouts must fit the word; the register window must be
    // exactly 2^field_bits entries of valid physical registers.
    for (k, e) in config.ops.iter().enumerate() {
        let need = u32::from(e.len) + u32::from(e.layout.operand_bits(r));
        if need > 16 {
            diags.push(Diagnostic::error(
                "ENC003",
                format!(
                    "opcode entry {k} ({:?}/{:?}) needs {need} bits: {}-bit prefix plus \
                     {}-bit operands exceed the 16-bit word",
                    e.micro,
                    e.layout,
                    e.len,
                    e.layout.operand_bits(r)
                ),
            ));
        }
        // ENC006: the decoder must be able to realize the pairing.
        if !pair_realizable(e.micro, e.layout) {
            diags.push(Diagnostic::error(
                "ENC006",
                format!(
                    "opcode entry {k} pairs {:?} with layout {:?}, which the programmable \
                     decoder cannot realize",
                    e.micro, e.layout
                ),
            ));
        }
    }
    if !(3..=4).contains(&r) || config.regs.map.len() != 1usize << r {
        diags.push(Diagnostic::error(
            "ENC003",
            format!(
                "register window is malformed: {}-bit fields over {} mapped registers",
                r,
                config.regs.map.len()
            ),
        ));
    }
    for (i, &p) in config.regs.map.iter().enumerate() {
        if p >= 16 {
            diags.push(Diagnostic::error(
                "ENC003",
                format!("register window entry {i} names nonexistent physical register r{p}"),
            ));
        }
    }

    // ENC005: every word must round-trip through the decode tables
    // bit-exactly (fields repack to the same word). ENC004 (decode
    // failures) was emitted by the shared pre-decode pass.
    for (j, &word) in ctx.translation.fits.instrs.iter().enumerate() {
        if ctx.ops.get(j).is_none_or(Option::is_none) {
            continue; // undecodable: ENC004 already reported
        }
        let Some(entry) = config.match_word(word) else {
            continue;
        };
        let fields = unpack(entry, word, r);
        let repacked = pack(entry, fields, r);
        if repacked != word {
            diags.push(
                Diagnostic::error(
                    "ENC005",
                    format!(
                        "word {word:#06x} does not round-trip through the decoder tables \
                         (repacks to {repacked:#06x})"
                    ),
                )
                .at_fits(j),
            );
        }
    }
}
