//! `DF` — dataflow checks over the native program and its translation.
//!
//! Rules:
//! * `DF001` — a FITS instruction reads a register that is never defined
//!   anywhere in the FITS program, and the native program does not have the
//!   same read-never-written property for that register. A correct
//!   translator only introduces reads of registers it also wrote (its `ip`
//!   scratch) or registers the native instruction read, so a new
//!   never-defined read is a corrupted operand field.
//! * `DF002` — flags are live across a native instruction, but its
//!   expansion writes the flags a different number of times than the
//!   native instruction does (a 1-to-n expansion inserted a flag-clobbering
//!   helper, or dropped the flag write it was supposed to carry).
//!
//! Flag liveness is a standard backward may-analysis over the native CFG:
//! conditional flag writes do not kill (the write may not happen), reads
//! come from predication and from C-consuming ops (`ADC`/`SBC`/`RSC`). It
//! runs as a [`Domain`] on the shared [fixpoint](crate::fixpoint) solver
//! over the reversed CFG. The successor rules here stay deliberately
//! narrower than the cache analysis's conservative graph: an indirect jump
//! contributes *no* liveness edge (its unknowable successors would only
//! add spurious liveness), which preserves this family's historical
//! verdicts exactly.

use fits_core::op_meta;
use fits_isa::{Cond, Instr, Reg};
use fits_sim::instr_meta;

use crate::cfg::Cfg;
use crate::fixpoint::{solve, Domain};
use crate::{Ctx, Diagnostic};

/// Register bitmask keyed by physical index.
fn bit(r: Reg) -> u32 {
    1u32 << r.index()
}

/// Backward may-liveness of the flags as a single abstract bit.
struct FlagLiveness<'a> {
    /// Per-node: reads the flags (predication, C-consuming ops).
    reads: &'a [bool],
    /// Per-node: unconditionally overwrites the flags.
    kills: &'a [bool],
}

impl Domain for FlagLiveness<'_> {
    type State = bool;

    fn entry_state(&self) -> bool {
        false // flags are dead past an exit
    }

    fn join(&self, into: &mut bool, other: &bool) -> bool {
        if *other && !*into {
            *into = true;
            true
        } else {
            false
        }
    }

    fn transfer(&self, node: usize, input: &bool) -> bool {
        // Runs on the reversed graph: `input` is live-out, the result is
        // live-in.
        self.reads[node] || (*input && !self.kills[node])
    }
}

pub(crate) fn analyze_df(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    df001_never_defined_reads(ctx, diags);
    df002_flag_chains(ctx, diags);
}

fn df001_never_defined_reads(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    let mut arm_reads = 0u32;
    let mut arm_writes = 0u32;
    for instr in &ctx.program.text {
        let m = instr_meta(instr);
        for r in m.sources.into_iter().flatten() {
            arm_reads |= bit(r);
        }
        for r in m.dests.into_iter().flatten() {
            arm_writes |= bit(r);
        }
    }
    let arm_never = arm_reads & !arm_writes;

    let mut fits_writes = 0u32;
    for op in ctx.ops.iter().flatten() {
        let m = op_meta(op);
        for r in m.dests.into_iter().flatten() {
            fits_writes |= bit(r);
        }
    }

    let mut reported = 0u32;
    for (j, op) in ctx.ops.iter().enumerate() {
        let Some(op) = op else { continue };
        let m = op_meta(op);
        for r in m.sources.into_iter().flatten() {
            let b = bit(r);
            if r == Reg::PC || b & fits_writes != 0 || b & arm_never != 0 || b & reported != 0 {
                continue;
            }
            reported |= b;
            diags.push(
                Diagnostic::error(
                    "DF001",
                    format!(
                        "reads r{}, which is never defined in the translated program \
                         (and has a definition in the native program)",
                        r.index()
                    ),
                )
                .at_fits(j),
            );
        }
    }
}

fn df002_flag_chains(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    let Some(pos) = &ctx.pos else {
        return; // CFI006: expansion slices are meaningless
    };
    let text = &ctx.program.text;
    let n = text.len();
    if n == 0 {
        return;
    }

    // Native CFG successors (conservative: indirect jumps have none, calls
    // fall through to their return point).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, instr) in text.iter().enumerate() {
        match instr {
            Instr::Branch {
                cond, link, offset, ..
            } => {
                let target = i as i64 + 2 + i64::from(*offset);
                if (0..n as i64).contains(&target) {
                    succs[i].push(target as usize);
                }
                if (*cond != Cond::Al || *link) && i + 1 < n {
                    succs[i].push(i + 1);
                }
            }
            _ => {
                let writes_pc = instr_meta(instr)
                    .dests
                    .into_iter()
                    .flatten()
                    .any(|r| r == Reg::PC);
                if !writes_pc && i + 1 < n {
                    succs[i].push(i + 1);
                }
            }
        }
    }

    // Backward may-liveness of the flags as one unit, on the shared
    // solver: the reversed graph turns live-out joins into ordinary
    // forward joins, and seeding *every* node keeps instructions on
    // infinite loops (no path to an exit) in the analysis, as the old
    // round-robin iteration did.
    let reads: Vec<bool> = text.iter().map(|i| instr_meta(i).reads_flags).collect();
    let kills: Vec<bool> = text
        .iter()
        .map(|i| i.sets_flags() && i.cond() == Cond::Al)
        .collect();
    let liveness = FlagLiveness {
        reads: &reads,
        kills: &kills,
    };
    let entries: Vec<usize> = (0..n).collect();
    let sol = solve(
        &Cfg::from_succs(succs).reversed(),
        &liveness,
        &entries,
        usize::MAX,
    );
    // On the reversed graph the solver's per-node input is live-out.
    let live_out: Vec<bool> = (0..n).map(|i| sol.input[i] == Some(true)).collect();

    // The expansion of instruction `i` must write the flags exactly as
    // often as the native instruction does whenever flags are live across
    // it (live-out), else a def/use chain through `i` is broken.
    for (i, instr) in text.iter().enumerate() {
        if !live_out[i] {
            continue;
        }
        let expected = usize::from(instr.sets_flags());
        let slice = pos[i] as usize..pos[i + 1] as usize;
        let mut setters: Vec<usize> = Vec::new();
        for j in slice {
            if let Some(Some(op)) = ctx.ops.get(j) {
                if op_meta(op).sets_flags {
                    setters.push(j);
                }
            }
        }
        if setters.len() != expected {
            let anchor = setters.last().copied().unwrap_or(pos[i] as usize);
            diags.push(
                Diagnostic::error(
                    "DF002",
                    format!(
                        "flags are live across arm[{i}] but its expansion writes them \
                         {} time(s) instead of {expected} — the flag def/use chain is \
                         broken by the 1-to-n expansion",
                        setters.len()
                    ),
                )
                .at_fits(anchor)
                .at_arm(i),
            );
        }
    }
}
