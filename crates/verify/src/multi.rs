//! `MULTI` — soundness of a *shared* synthesized configuration over a
//! kernel set.
//!
//! A multi-application synthesis accepts one [`DecoderConfig`] for several
//! member programs. Two things can silently go wrong that the per-app
//! analyses never see together:
//!
//! * **Coverage** (`MULTI001`): a member's translated stream contains a
//!   word the decoder cannot resolve — an opcode the shared vocabulary
//!   does not cover, or a dictionary index past the member's tables.
//!   Every member word must decode under that member's own final
//!   configuration.
//! * **Configuration drift** (`MULTI002`): translation may only *append*
//!   dictionary entries (far targets, overflow constants) to the shared
//!   configuration — the opcode table and register window of every
//!   member's binary must be byte-identical to the shared synthesis,
//!   otherwise the members are not actually sharing one decoder.
//!
//! The rule also chains `ISA005` FITS-vocabulary conformance over the
//! shared configuration, so a shared ISA is held to the same
//! machine-description contract as a per-app one.

use fits_core::{decode_word, DecoderConfig, FitsProgram};
use fits_isa::spec::SpecCatalog;

use crate::{Diagnostic, Report};

/// One member binary of a shared-ISA synthesis.
#[derive(Clone, Copy, Debug)]
pub struct MultiMemberBin<'a> {
    /// Display name (kernel name in the suite runners).
    pub name: &'a str,
    /// The member translated under the shared configuration.
    pub fits: &'a FitsProgram,
}

/// Runs the `MULTI` family over a shared configuration and its member
/// binaries: `ISA005` conformance of the shared config, `MULTI002`
/// configuration-drift checks, and `MULTI001` full decode coverage of
/// every member stream.
#[must_use]
pub fn verify_multi(
    shared: &DecoderConfig,
    members: &[MultiMemberBin<'_>],
    catalog: &SpecCatalog,
) -> Report {
    let mut diagnostics = validate_decoder_config(shared, catalog);

    for m in members {
        let config = &m.fits.config;
        if config.ops != shared.ops {
            diagnostics.push(Diagnostic::error(
                "MULTI002",
                format!(
                    "member {}: opcode table diverges from the shared synthesis \
                     ({} entries vs {})",
                    m.name,
                    config.ops.len(),
                    shared.ops.len()
                ),
            ));
        }
        if config.regs != shared.regs {
            diagnostics.push(Diagnostic::error(
                "MULTI002",
                format!(
                    "member {}: register window diverges from the shared synthesis",
                    m.name
                ),
            ));
        }
        for (j, &word) in m.fits.instrs.iter().enumerate() {
            if let Err(e) = decode_word(config, word, j) {
                diagnostics.push(
                    Diagnostic::error(
                        "MULTI001",
                        format!(
                            "member {}: word {word:#06x} is not covered by the shared \
                             configuration: {e}",
                            m.name
                        ),
                    )
                    .at_fits(j),
                );
            }
        }
    }

    Report {
        name: "multi".to_owned(),
        diagnostics,
    }
}

fn validate_decoder_config(shared: &DecoderConfig, catalog: &SpecCatalog) -> Vec<Diagnostic> {
    crate::validate_decoder_config(shared, &catalog.fits)
}
