//! `ISA` — validation of `powerfits-isa-v1` spec documents.
//!
//! The other families check a *synthesized* triple; this one checks the
//! *machine description* itself, so user-supplied specs are vetted before
//! the flow builds decode tables from them. Rules:
//!
//! * `ISA001` — two decodable forms overlap ambiguously: some word matches
//!   both patterns but neither pattern is a subset of the other, so which
//!   form wins is decided by file order alone. (A specific form listed
//!   before a general one — a strict subset — is the intended idiom and is
//!   not flagged.)
//! * `ISA002` — a form does not round-trip: a word that decodes through
//!   the form re-encodes to a word that decodes to a *different*
//!   instruction. Checked by seeded sampling of each form's field bits.
//! * `ISA003` — an entry is dead: every word it matches is already claimed
//!   by earlier entries, so it can never fire.
//! * `ISA004` — the spec cannot be compiled into a decode engine (a form
//!   name without a bound constructor, a missing mandatory form, a
//!   missing required field letter).
//! * `ISA005` — a synthesized [`DecoderConfig`] steps outside the FITS
//!   spec's vocabulary (unknown layout or tier, opcode prefix longer than
//!   the word, register window size the spec does not permit).
//!
//! `ISA001`–`ISA004` apply to encoding specs (AR32- and T16-shaped);
//! `ISA005` applies to the FITS vocabulary spec via
//! [`validate_decoder_config`].

use fits_core::DecoderConfig;
use fits_isa::spec::{Ar32Tables, IsaSpec, PatternEntry, T16Tables};

use crate::{Diagnostic, Report};

/// Deterministic xorshift64* stream used to fill form fields; seeded from
/// the spec hash so findings are reproducible per spec content.
struct Sampler(u64);

impl Sampler {
    fn next(&mut self) -> u32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32
    }
}

/// Samples drawn per form for the `ISA002` round-trip check.
const SAMPLES_PER_FORM: usize = 64;

/// Index of the first entry whose pattern matches `word`, in priority
/// (file) order.
fn first_match(spec: &IsaSpec, word: u32) -> Option<usize> {
    spec.entries.iter().position(|e| e.pattern.matches(word))
}

/// Words that exercise one form: the pattern's literal bits with the
/// free (field and don't-care) bits filled from the seeded stream, plus
/// the all-zeros and all-ones fills.
fn form_samples(entry: &PatternEntry, rng: &mut Sampler) -> Vec<u32> {
    let p = &entry.pattern;
    let word_mask = if p.width == 32 {
        u32::MAX
    } else {
        (1u32 << p.width) - 1
    };
    let free = !p.mask & word_mask;
    let mut words = vec![p.value, p.value | free];
    for _ in 0..SAMPLES_PER_FORM {
        words.push(p.value | (rng.next() & free));
    }
    words
}

/// Structural pattern checks shared by every encoding spec: ambiguous
/// form overlap (`ISA001`) and dead entries (`ISA003`).
fn check_patterns(spec: &IsaSpec, diags: &mut Vec<Diagnostic>) {
    for (j, b) in spec.entries.iter().enumerate() {
        for a in &spec.entries[..j] {
            if b.pattern.subset_of(&a.pattern) {
                diags.push(Diagnostic::error(
                    "ISA003",
                    format!(
                        "entry `{}` ({}) is dead: every word it matches is already \
                         claimed by `{}` ({})",
                        b.name, b.pos, a.name, a.pos
                    ),
                ));
                // One shadowing witness is enough per entry.
                break;
            }
            if a.is_form()
                && b.is_form()
                && a.pattern.overlaps(&b.pattern)
                && !a.pattern.subset_of(&b.pattern)
            {
                diags.push(Diagnostic::error(
                    "ISA001",
                    format!(
                        "forms `{}` ({}) and `{}` ({}) overlap ambiguously: some words \
                         match both but neither pattern refines the other",
                        a.name, a.pos, b.name, b.pos
                    ),
                ));
            }
        }
    }
}

/// `ISA002`/`ISA004` for an AR32-shaped (32-bit) spec: build the engine,
/// then round-trip seeded samples of every form through decode → encode
/// → decode.
fn check_ar32_engine(spec: &IsaSpec, diags: &mut Vec<Diagnostic>) {
    let tables = match Ar32Tables::from_spec(spec) {
        Ok(t) => t,
        Err(e) => {
            diags.push(Diagnostic::error(
                "ISA004",
                format!("spec does not compile into a decode engine: {e}"),
            ));
            return;
        }
    };
    let mut rng = Sampler(spec.hash() | 1);
    for (idx, entry) in spec.entries.iter().enumerate() {
        if !entry.is_form() {
            continue;
        }
        for word in form_samples(entry, &mut rng) {
            if first_match(spec, word) != Some(idx) {
                continue; // claimed by an earlier entry (e.g. a carve-out)
            }
            let Ok(instr) = tables.decode(word) else {
                continue; // field-value-dependent rejection: not a form defect
            };
            let back = tables.encode(&instr);
            if tables.decode(back).as_ref() != Ok(&instr) {
                diags.push(Diagnostic::error(
                    "ISA002",
                    format!(
                        "form `{}` ({}) does not round-trip: {word:#010x} decodes to \
                         `{instr}` which re-encodes as {back:#010x}",
                        entry.name, entry.pos
                    ),
                ));
                break; // one witness per form
            }
        }
    }
}

/// `ISA002`/`ISA004` for a T16-shaped (16-bit) spec. The two-halfword BL
/// forms are skipped: their round-trip is pair-wise and covered by the
/// engine's own differential tests.
fn check_t16_engine(spec: &IsaSpec, diags: &mut Vec<Diagnostic>) {
    let tables = match T16Tables::from_spec(spec) {
        Ok(t) => t,
        Err(e) => {
            diags.push(Diagnostic::error(
                "ISA004",
                format!("spec does not compile into a decode engine: {e}"),
            ));
            return;
        }
    };
    let mut rng = Sampler(spec.hash() | 1);
    for (idx, entry) in spec.entries.iter().enumerate() {
        if !entry.is_form() || entry.name.starts_with("bl-") {
            continue;
        }
        for word in form_samples(entry, &mut rng) {
            if first_match(spec, word) != Some(idx) {
                continue;
            }
            let Ok((instr, used)) = tables.decode(&[word as u16]) else {
                continue;
            };
            if used != 1 {
                continue;
            }
            let mut out = Vec::with_capacity(2);
            if tables.encode(&instr, &mut out).is_err() {
                diags.push(Diagnostic::error(
                    "ISA002",
                    format!(
                        "form `{}` ({}) does not round-trip: {word:#06x} decodes to an \
                         instruction its own encoder rejects",
                        entry.name, entry.pos
                    ),
                ));
                break;
            }
            if tables.decode(&out).map(|(i, _)| i).as_ref() != Ok(&instr) {
                diags.push(Diagnostic::error(
                    "ISA002",
                    format!(
                        "form `{}` ({}) does not round-trip: {word:#06x} re-encodes to \
                         a different instruction",
                        entry.name, entry.pos
                    ),
                ));
                break;
            }
        }
    }
}

/// Lints one parsed spec: pattern structure (`ISA001`, `ISA003`) always,
/// plus engine compilation and form round-trips (`ISA002`, `ISA004`) for
/// encoding specs. A spec with no pattern entries (the FITS vocabulary
/// spec) gets the structural checks only.
#[must_use]
pub fn lint_spec(spec: &IsaSpec) -> Report {
    let mut diags = Vec::new();
    check_patterns(spec, &mut diags);
    if !spec.entries.is_empty() {
        if spec.word_width == 32 {
            check_ar32_engine(spec, &mut diags);
        } else {
            check_t16_engine(spec, &mut diags);
        }
    }
    Report {
        name: format!("isa:{}", spec.name),
        diagnostics: diags,
    }
}

/// Parses and lints a spec document, as `fitslint --isa` does.
///
/// # Errors
///
/// Returns the position-carrying load error when the document does not
/// parse or fails structural validation (those defects precede any lint).
pub fn lint_spec_text(text: &str) -> Result<Report, fits_isa::spec::SpecError> {
    let spec = IsaSpec::load(text)?;
    Ok(lint_spec(&spec))
}

/// `ISA005` — checks a synthesized [`DecoderConfig`] against the FITS
/// spec's vocabulary: every opcode's layout and tier must be named by the
/// spec, prefixes must fit the word width, and the register window must
/// be a size the spec permits.
#[must_use]
pub fn validate_decoder_config(config: &DecoderConfig, fits_spec: &IsaSpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (k, e) in config.ops.iter().enumerate() {
        let layout = e.layout.kind_name();
        if !fits_spec.layouts.iter().any(|l| l == layout) {
            diags.push(Diagnostic::error(
                "ISA005",
                format!(
                    "opcode entry {k} uses layout `{layout}`, which the FITS spec \
                     does not name"
                ),
            ));
        }
        let tier = e.tier.name();
        if !fits_spec.tiers.iter().any(|t| t == tier) {
            diags.push(Diagnostic::error(
                "ISA005",
                format!(
                    "opcode entry {k} sits in tier `{tier}`, which the FITS spec does not name"
                ),
            ));
        }
        if u32::from(e.len) > fits_spec.word_width {
            diags.push(Diagnostic::error(
                "ISA005",
                format!(
                    "opcode entry {k} has a {}-bit prefix in a {}-bit word",
                    e.len, fits_spec.word_width
                ),
            ));
        }
    }
    let window = config.regs.map.len() as u32;
    if !fits_spec.registers.windows.is_empty() && !fits_spec.registers.windows.contains(&window) {
        diags.push(Diagnostic::error(
            "ISA005",
            format!(
                "register window of {window} is not a size the FITS spec permits \
                 (allowed: {:?})",
                fits_spec.registers.windows
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_core::{FitsFlow, FlowOutcome};
    use fits_isa::spec::{builtin_ar32, builtin_fits, builtin_t16};
    use fits_kernels::kernels::{Kernel, Scale};

    #[test]
    fn shipped_specs_are_clean() {
        for spec in [builtin_ar32(), builtin_t16(), builtin_fits()] {
            let report = lint_spec(spec);
            assert!(
                report.is_clean() && report.diagnostics.is_empty(),
                "{}: {}",
                spec.name,
                report.render_text()
            );
        }
    }

    fn outcome(kernel: Kernel) -> FlowOutcome {
        let program = kernel.compile(Scale::test()).unwrap();
        FitsFlow::new().run(&program).unwrap()
    }

    #[test]
    fn synthesized_configs_fit_the_fits_vocabulary() {
        for kernel in [Kernel::Crc32, Kernel::Sha] {
            let out = outcome(kernel);
            let diags = validate_decoder_config(&out.fits.config, builtin_fits());
            assert!(diags.is_empty(), "{kernel:?}: {diags:?}");
        }
    }

    #[test]
    fn foreign_vocabulary_is_isa005() {
        let out = outcome(Kernel::Crc32);
        let narrow = "isa f { schema powerfits-isa-v1 word-width 16 \
                      registers { count 16 window 4 } \
                      layouts { r3 } tiers { bis } }";
        let spec = IsaSpec::load(narrow).unwrap();
        let diags = validate_decoder_config(&out.fits.config, &spec);
        assert!(diags.iter().all(|d| d.code == "ISA005"));
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("layout") || d.message.contains("tier")),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.message.contains("register window")));
    }
}
