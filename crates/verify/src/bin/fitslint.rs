//! `fitslint` — static verification of synthesized FITS instruction sets.
//!
//! Runs the `fits-verify` analysis families (`ENC`, `CFI`, `DF`, `TV`) over
//! kernels from the benchmark suite and reports rustc-style diagnostics or
//! machine-readable JSON.
//!
//! ```text
//! fitslint --all [--format text|json] [--scale N]
//! fitslint KERNEL [KERNEL...] [--format text|json] [--scale N]
//! ```
//!
//! Exits 0 when every linted kernel is clean, 1 when any analysis reports an
//! error (or a kernel fails to compile), and 2 on usage errors.

#![allow(clippy::unwrap_used)]

use std::process::ExitCode;

use fits_kernels::kernels::{Kernel, Scale};
use fits_verify::{json_string, lint_kernel};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Args {
    kernels: Vec<Kernel>,
    format: Format,
    scale: Scale,
}

fn usage() -> String {
    let mut names: Vec<&str> = Kernel::ALL.iter().map(|k| k.name()).collect();
    names.sort_unstable();
    format!(
        "usage: fitslint (--all | KERNEL...) [--format text|json] [--scale N]\n\
         \n\
         Statically verifies the synthesized instruction set and translated\n\
         binary of each kernel: encoding soundness (ENC), control-flow\n\
         integrity (CFI), dataflow (DF) and translation validation (TV).\n\
         \n\
         kernels: {}",
        names.join(" ")
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut kernels = Vec::new();
    let mut all = false;
    let mut format = Format::Text;
    let mut scale = Scale::test();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => all = true,
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some(other) => {
                        return Err(format!("--format expects 'text' or 'json', got '{other}'"))
                    }
                    None => return Err("--format expects 'text' or 'json'".to_string()),
                };
            }
            "--scale" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| "--scale expects a positive integer".to_string())?;
                scale = Scale { n };
            }
            "--help" | "-h" => return Err(String::new()),
            name if !name.starts_with('-') => {
                let kernel = Kernel::ALL
                    .iter()
                    .copied()
                    .find(|k| k.name() == name)
                    .ok_or_else(|| format!("unknown kernel '{name}'"))?;
                kernels.push(kernel);
            }
            flag => return Err(format!("unknown flag '{flag}'")),
        }
    }
    if all {
        kernels = Kernel::ALL.to_vec();
    }
    if kernels.is_empty() {
        return Err("no kernels selected (pass --all or kernel names)".to_string());
    }
    Ok(Args {
        kernels,
        format,
        scale,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("fitslint: {msg}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut all_clean = true;
    let mut json_entries = Vec::new();
    for kernel in &args.kernels {
        match lint_kernel(*kernel, args.scale) {
            Ok(report) => {
                if !report.is_clean() {
                    all_clean = false;
                }
                match args.format {
                    Format::Text => {
                        if report.diagnostics.is_empty() {
                            println!("{}: clean", report.name);
                        } else {
                            print!("{}", report.render_text());
                        }
                    }
                    Format::Json => json_entries.push(report.render_json()),
                }
            }
            Err(err) => {
                all_clean = false;
                match args.format {
                    Format::Text => eprintln!("fitslint: {err}"),
                    Format::Json => json_entries.push(format!(
                        "{{\"name\":{},\"clean\":false,\"error\":{}}}",
                        json_string(kernel.name()),
                        json_string(&err)
                    )),
                }
            }
        }
    }

    if args.format == Format::Json {
        println!(
            "{{\"kernels\":[{}],\"clean\":{all_clean}}}",
            json_entries.join(",")
        );
    }
    if all_clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
