//! Control-flow graphs over native AR32 and translated FITS programs.
//!
//! Two builder families with different contracts:
//!
//! * [`native_cfg`] / [`fits_cfg`] build **conservative** graphs for the
//!   cache analysis: every possible transfer of control has an edge. Where
//!   a target cannot be resolved statically (an indirect PC write from a
//!   computed value) the node gets edges to *every* node — extra edges
//!   only weaken the analysis, never make it unsound.
//! * The `df` family keeps its own, deliberately narrower successor rules
//!   (indirect jumps get *no* successors there, which is the right
//!   treatment for backward liveness); those rules live in `df.rs` and are
//!   merely wrapped into a [`Cfg`] to run on the shared solver.
//!
//! Return-point resolution: a `mov pc, lr` is an indirect jump, but when
//! the link register is only ever written by linking branches (`bl`,
//! `jalr`) its value is always a return address, so the edge set shrinks
//! to the instructions following the link sites. One write of `lr` from
//! anywhere else (a load, a move) poisons that reasoning and the builders
//! fall back to all-node edges.

use fits_core::FitsOp;
use fits_isa::{Cond, DpOp, Instr, Operand2, Program, Reg, Shift, TEXT_BASE};
use fits_sim::instr_meta;

/// A directed graph over instruction indices, with both edge directions
/// materialized so forward and backward analyses pay the same cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cfg {
    /// Successors of each node, deduplicated, ascending.
    pub succs: Vec<Vec<usize>>,
    /// Predecessors of each node, deduplicated, ascending.
    pub preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds a graph from successor lists, deriving predecessors.
    #[must_use]
    pub fn from_succs(mut succs: Vec<Vec<usize>>) -> Cfg {
        let n = succs.len();
        for list in &mut succs {
            list.sort_unstable();
            list.dedup();
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (node, list) in succs.iter().enumerate() {
            for &s in list {
                preds[s].push(node);
            }
        }
        Cfg { succs, preds }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The edge-reversed graph — backward analyses run the forward solver
    /// over this.
    #[must_use]
    pub fn reversed(&self) -> Cfg {
        Cfg {
            succs: self.preds.clone(),
            preds: self.succs.clone(),
        }
    }

    /// Whether `from → to` is an edge.
    #[must_use]
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        self.succs
            .get(from)
            .is_some_and(|list| list.binary_search(&to).is_ok())
    }
}

/// A built graph plus the side information the cache analysis needs.
#[derive(Clone, Debug)]
pub struct CfgBuild {
    /// The conservative graph.
    pub cfg: Cfg,
    /// Nodes that receive control by a jump, branch or call — any edge
    /// that is not the fall-through from the previous instruction. These
    /// always (re)start an instruction fetch.
    pub jump_target: Vec<bool>,
    /// The program entry node.
    pub entry: usize,
}

/// Accumulates successor edges plus the jump-target marks.
struct Edges {
    succs: Vec<Vec<usize>>,
    jump_target: Vec<bool>,
}

impl Edges {
    fn new(n: usize) -> Edges {
        Edges {
            succs: vec![Vec::new(); n],
            jump_target: vec![false; n],
        }
    }

    fn fall_through(&mut self, from: usize) {
        if from + 1 < self.succs.len() {
            self.succs[from].push(from + 1);
        }
    }

    fn jump(&mut self, from: usize, to: usize) {
        if to < self.succs.len() {
            self.succs[from].push(to);
            self.jump_target[to] = true;
        }
    }

    fn jump_all(&mut self, from: usize) {
        let n = self.succs.len();
        self.succs[from] = (0..n).collect();
        for t in &mut self.jump_target {
            *t = true;
        }
    }
}

/// Whether an instruction is the `mov pc, lr` return idiom (a plain
/// unshifted move of the link register into the PC).
fn is_return(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Dp {
            op: DpOp::Mov,
            rd: Reg::PC,
            op2: Operand2::Reg(Reg::LR, Shift::NONE),
            ..
        }
    )
}

fn writes_pc(instr: &Instr) -> bool {
    instr_meta(instr)
        .dests
        .into_iter()
        .flatten()
        .any(|r| r == Reg::PC)
}

/// Adds the successor edges shared by the native and FITS encodings of an
/// AR32 instruction at node `i`. `lr_returns` is the resolved edge set for
/// `mov pc, lr`, or `None` when `lr` is poisoned.
fn instr_edges(edges: &mut Edges, i: usize, instr: &Instr, lr_returns: Option<&[usize]>) {
    match instr {
        Instr::Branch { cond, link, offset } => {
            let target = i as i64 + 2 + i64::from(*offset);
            if target >= 0 {
                edges.jump(i, target as usize);
            }
            // Conditional branches may fall through; calls return there.
            if *cond != Cond::Al || *link {
                edges.fall_through(i);
            }
        }
        Instr::Swi { cond, imm } => {
            // imm 0 exits, imm 1 emits and continues, anything else halts
            // the simulator; untaken conditions always fall through.
            if *imm == 1 || *cond != Cond::Al {
                edges.fall_through(i);
            }
        }
        _ if is_return(instr) => {
            match lr_returns {
                Some(returns) => {
                    for &r in returns {
                        edges.jump(i, r);
                    }
                }
                None => edges.jump_all(i),
            }
            if instr.cond() != Cond::Al {
                edges.fall_through(i);
            }
        }
        _ if writes_pc(instr) => edges.jump_all(i),
        _ => edges.fall_through(i),
    }
}

/// Builds the conservative CFG of a native AR32 program (one node per
/// 32-bit instruction).
#[must_use]
pub fn native_cfg(program: &Program) -> CfgBuild {
    let text = &program.text;
    let n = text.len();
    let mut edges = Edges::new(n);

    // lr provenance: clean when only linking branches define it.
    let lr_clean = !text.iter().any(|instr| {
        !matches!(instr, Instr::Branch { link: true, .. })
            && instr_meta(instr)
                .dests
                .into_iter()
                .flatten()
                .any(|r| r == Reg::LR)
    });
    let returns: Vec<usize> = text
        .iter()
        .enumerate()
        .filter(|(_, instr)| matches!(instr, Instr::Branch { link: true, .. }))
        .map(|(i, _)| i + 1)
        .filter(|&r| r < n)
        .collect();
    let lr_returns = lr_clean.then_some(returns.as_slice());

    for (i, instr) in text.iter().enumerate() {
        instr_edges(&mut edges, i, instr, lr_returns);
    }
    let entry = program.entry.min(n.saturating_sub(1));
    let mut jump_target = edges.jump_target;
    if n > 0 {
        jump_target[entry] = true;
    }
    CfgBuild {
        cfg: Cfg::from_succs(edges.succs),
        jump_target,
        entry,
    }
}

/// Builds the conservative CFG of a translated FITS program (one node per
/// 16-bit instruction). `ops` holds the decoded words (`None` for
/// undecodable words, which get all-node edges); `targets` is the binary's
/// target dictionary of absolute code addresses.
#[must_use]
pub fn fits_cfg(ops: &[Option<FitsOp>], entry: usize, targets: &[u32]) -> CfgBuild {
    let n = ops.len();
    let mut edges = Edges::new(n);

    // Indices named by the target dictionary (invalid entries are CFI003
    // findings; here they simply contribute no edge).
    let dict_indices: Vec<usize> = targets
        .iter()
        .filter(|&&addr| addr % 2 == 0 && addr >= TEXT_BASE)
        .map(|&addr| ((addr - TEXT_BASE) / 2) as usize)
        .filter(|&idx| idx < n)
        .collect();

    let lr_clean = !ops.iter().any(|op| match op {
        Some(FitsOp::Plain(Instr::Branch { link: true, .. })) | Some(FitsOp::Jalr(_)) => false,
        Some(op) => fits_core::op_meta(op)
            .dests
            .into_iter()
            .flatten()
            .any(|r| r == Reg::LR),
        None => true, // undecodable: assume the worst
    });
    let returns: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|(_, op)| {
            matches!(
                op,
                Some(FitsOp::Plain(Instr::Branch { link: true, .. })) | Some(FitsOp::Jalr(_))
            )
        })
        .map(|(j, _)| j + 1)
        .filter(|&r| r < n)
        .collect();
    let lr_returns = lr_clean.then_some(returns.as_slice());

    for (j, op) in ops.iter().enumerate() {
        match op {
            Some(FitsOp::Plain(instr)) => instr_edges(&mut edges, j, instr, lr_returns),
            Some(FitsOp::Jalr(_)) => {
                // The operand is either a dictionary-materialized code
                // address or a clean return address.
                for &idx in &dict_indices {
                    edges.jump(j, idx);
                }
                match lr_returns {
                    Some(rs) => {
                        for &r in rs {
                            edges.jump(j, r);
                        }
                    }
                    None => edges.jump_all(j),
                }
            }
            Some(op) => {
                let pc_write = fits_core::op_meta(op)
                    .dests
                    .into_iter()
                    .flatten()
                    .any(|r| r == Reg::PC);
                if pc_write {
                    edges.jump_all(j);
                } else {
                    edges.fall_through(j);
                }
            }
            None => edges.jump_all(j),
        }
    }
    let entry = entry.min(n.saturating_sub(1));
    let mut jump_target = edges.jump_target;
    if n > 0 {
        jump_target[entry] = true;
    }
    CfgBuild {
        cfg: Cfg::from_succs(edges.succs),
        jump_target,
        entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_isa::Operand2 as Op2;

    fn prog(text: Vec<Instr>) -> Program {
        Program {
            text,
            ..Program::default()
        }
    }

    #[test]
    fn straight_line_and_branch_edges() {
        // 0: mov r0, #1 ; 1: b -3 (self) ; 2: swi 0
        let p = prog(vec![
            Instr::mov(Reg::R0, Op2::imm(1).unwrap()),
            Instr::Branch {
                cond: Cond::Al,
                link: false,
                offset: -3,
            },
            Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            },
        ]);
        let b = native_cfg(&p);
        assert_eq!(b.cfg.succs[0], vec![1]);
        assert_eq!(b.cfg.succs[1], vec![0], "b .-3 targets 1+2-3 = 0");
        assert!(b.cfg.succs[2].is_empty(), "swi 0 exits");
        assert!(b.jump_target[0], "entry and branch target");
        assert!(!b.jump_target[1]);
        assert_eq!(b.cfg.preds[0], vec![1]);
        assert!(b.cfg.reversed().succs[0].contains(&1));
    }

    #[test]
    fn call_and_return_edges_resolve_to_return_points() {
        // 0: bl +0 (target 2) ; 1: swi 0 ; 2: mov pc, lr
        let p = prog(vec![
            Instr::Branch {
                cond: Cond::Al,
                link: true,
                offset: 0,
            },
            Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            },
            Instr::mov(Reg::PC, Op2::reg(Reg::LR)),
        ]);
        let b = native_cfg(&p);
        assert_eq!(b.cfg.succs[0], vec![1, 2], "call edge plus return point");
        assert_eq!(b.cfg.succs[2], vec![1], "return resolves to after the bl");
        assert!(b.jump_target[1] && b.jump_target[2]);
    }

    #[test]
    fn poisoned_lr_falls_back_to_all_nodes() {
        // 0: mov lr, r0 ; 1: mov pc, lr ; 2: swi 0
        let p = prog(vec![
            Instr::mov(Reg::LR, Op2::reg(Reg::R0)),
            Instr::mov(Reg::PC, Op2::reg(Reg::LR)),
            Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            },
        ]);
        let b = native_cfg(&p);
        assert_eq!(b.cfg.succs[1], vec![0, 1, 2], "indirect: every node");
    }

    #[test]
    fn fits_branch_and_jalr_edges() {
        // FITS: 0: b +0 (target 2) ; 1: swi 0 ; 2: jalr r0 ; 3: swi 0
        let ops = vec![
            Some(FitsOp::Plain(Instr::Branch {
                cond: Cond::Al,
                link: false,
                offset: 0,
            })),
            Some(FitsOp::Plain(Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            })),
            Some(FitsOp::Jalr(Reg::R0)),
            Some(FitsOp::Plain(Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            })),
        ];
        // Dictionary names index 1 (TEXT_BASE + 2).
        let b = fits_cfg(&ops, 0, &[TEXT_BASE + 2]);
        assert_eq!(b.cfg.succs[0], vec![2]);
        assert_eq!(
            b.cfg.succs[2],
            vec![1, 3],
            "jalr: dictionary target plus its own return point"
        );
        assert!(b.jump_target[1] && b.jump_target[2] && b.jump_target[3]);
    }

    #[test]
    fn conditional_branch_keeps_fall_through() {
        let p = prog(vec![
            Instr::Branch {
                cond: Cond::Ne,
                link: false,
                offset: -1,
            },
            Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            },
        ]);
        let b = native_cfg(&p);
        assert_eq!(b.cfg.succs[0], vec![1], "target 0+2-1=1 plus fall-through");
        // Target and fall-through coincide here; check a distinct pair.
        let p2 = prog(vec![
            Instr::Branch {
                cond: Cond::Ne,
                link: false,
                offset: -2,
            },
            Instr::Swi {
                cond: Cond::Al,
                imm: 0,
            },
        ]);
        let b2 = native_cfg(&p2);
        assert_eq!(b2.cfg.succs[0], vec![0, 1]);
    }
}
