//! `CFI` — control-flow integrity of the translated binary.
//!
//! Rebuilds the control-flow structure of the FITS program and checks it
//! against the translation's ARM→FITS position map. Rules:
//! * `CFI001` — a PC-relative branch targets an instruction outside the
//!   text section.
//! * `CFI002` — a branch target is inside the text but not on a translation
//!   boundary (it lands mid-expansion of a different native instruction —
//!   a relaxation or offset-encoding bug).
//! * `CFI003` — a target-dictionary entry (the far-branch/far-call glue) is
//!   misaligned, outside the text, or not on a translation boundary.
//! * `CFI004` — the FITS entry point does not map the native entry point.
//! * `CFI005` *(warning)* — the last instruction can fall through past the
//!   end of the text section.
//! * `CFI006` — the mapping statistics do not account for the binary
//!   (emitted by [`crate::analyze`]; suppresses the boundary checks).

use std::collections::HashSet;

use fits_core::FitsOp;
use fits_isa::{Cond, Instr, Reg, TEXT_BASE};

use crate::{Ctx, Diagnostic};

pub(crate) fn analyze_cfi(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    let n = ctx.translation.fits.instrs.len();
    let Some(pos) = &ctx.pos else {
        return; // CFI006 already reported; boundaries are meaningless
    };
    let boundaries: HashSet<u32> = pos.iter().copied().collect();

    // CFI004: the entry point maps the native entry point.
    let arm_entry = ctx.program.entry;
    let expect_entry = pos.get(arm_entry).copied();
    if expect_entry != Some(ctx.translation.fits.entry as u32) {
        diags.push(Diagnostic::error(
            "CFI004",
            format!(
                "entry point {} does not map native entry arm[{arm_entry}] (expected {})",
                ctx.translation.fits.entry,
                expect_entry.map_or_else(|| "<none>".to_string(), |p| p.to_string()),
            ),
        ));
    }

    // CFI001/CFI002: every PC-relative branch lands on a boundary in text.
    for (j, op) in ctx.ops.iter().enumerate() {
        let Some(FitsOp::Plain(Instr::Branch { offset, .. })) = op else {
            continue;
        };
        // Branch displacements are relative to pc + 4, i.e. two
        // instructions past the branch.
        let target = j as i64 + 2 + i64::from(*offset);
        if target < 0 || target >= n as i64 {
            diags.push(
                Diagnostic::error(
                    "CFI001",
                    format!("branch target {target} is outside the text section (0..{n})"),
                )
                .at_fits(j),
            );
        } else if !boundaries.contains(&(target as u32)) {
            diags.push(
                Diagnostic::error(
                    "CFI002",
                    format!(
                        "branch target {target} is not on a translation boundary \
                         (lands mid-expansion)"
                    ),
                )
                .at_fits(j),
            );
        }
    }

    // CFI003: target-dictionary entries are valid FITS code addresses on
    // translation boundaries (only the translator appends them).
    for (k, &addr) in ctx.translation.fits.config.dicts.target.iter().enumerate() {
        let bad = if addr % 2 != 0 || addr < TEXT_BASE {
            true
        } else {
            let idx = (addr - TEXT_BASE) / 2;
            idx as usize >= n || !boundaries.contains(&idx)
        };
        if bad {
            diags.push(Diagnostic::error(
                "CFI003",
                format!(
                    "target dictionary entry {k} ({addr:#010x}) is not a valid FITS \
                     code address on a translation boundary"
                ),
            ));
        }
    }

    // CFI005: the program must end in something that diverts control.
    if let Some(Some(last)) = ctx.ops.last() {
        let terminates = match last {
            FitsOp::Plain(Instr::Branch { cond, link, .. }) => *cond == Cond::Al && !*link,
            FitsOp::Plain(Instr::Swi { .. }) | FitsOp::Jalr(_) => true,
            FitsOp::Plain(i) => i.writes().into_iter().any(|r| r == Reg::PC),
            _ => false,
        };
        if !terminates {
            diags.push(
                Diagnostic::warning(
                    "CFI005",
                    "control can fall through past the end of the text section",
                )
                .at_fits(n - 1),
            );
        }
    }
}
