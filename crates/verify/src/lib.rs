//! # fits-verify — static verification of synthesized FITS instruction sets
//!
//! Analyzes a `(Program, Synthesis, Translation)` triple **without executing
//! it**, complementing the flow's differential execution with proofs that do
//! not depend on input coverage. Four analysis families, each with its own
//! rule-code prefix:
//!
//! * **`ENC` — encoding soundness**: the opcode table is prefix-free and
//!   within the 16-bit opcode-space budget, operand layouts fit their
//!   instruction words, every instruction word decodes under the binary's own
//!   configuration (including dictionary-index bounds), and each word
//!   round-trips bit-exactly through the programmable decoder's pack/unpack.
//! * **`CFI` — control-flow integrity**: every PC-relative branch lands on a
//!   translation boundary inside the text section, every target-dictionary
//!   entry names a valid FITS code address, and the entry point maps the
//!   native entry point.
//! * **`DF` — dataflow**: no FITS instruction reads a register that is never
//!   defined (unless the native program has the same property), and 1-to-n
//!   expansions do not break live flag def/use chains by inserting or
//!   dropping flag writes.
//! * **`TV` — translation validation**: each native instruction's expansion
//!   is replayed against the native instruction on a small abstract machine
//!   over several register/flag/memory valuations; register, flag and
//!   store-sequence effects must agree (modulo the translator's `ip`
//!   scratch).
//!
//! A fifth family checks the *machine description* rather than a triple:
//!
//! * **`ISA` — spec validation** ([`lint_spec`]): `powerfits-isa-v1`
//!   documents are vetted before decode tables are built from them —
//!   ambiguous form overlap (`ISA001`), forms that do not round-trip
//!   through decode/encode (`ISA002`), dead entries (`ISA003`), specs
//!   that do not compile into an engine (`ISA004`) — and synthesized
//!   decoder configurations are checked against the FITS vocabulary
//!   spec (`ISA005`, [`validate_decoder_config`]).
//!
//! A sixth family lives in its own modules because it is an *analysis*
//! rather than a pass/fail check:
//!
//! * **`CA` — cache analysis** ([`ca`]): abstract-interpretation
//!   classification of every instruction fetch (always-hit / always-miss /
//!   persistent / unknown) against a cache geometry, built on a reusable
//!   worklist [`fixpoint`] solver and conservative [`cfg`] builders shared
//!   with the `DF` liveness analysis. Its `CA001`–`CA003` diagnostics
//!   audit an analysis result against rebuilt ground truth.
//!
//! A seventh family checks a *shared* configuration over a kernel set:
//!
//! * **`MULTI` — multi-application soundness** ([`verify_multi`]): a
//!   configuration synthesized from a merged profile must still pass
//!   `ISA005` vocabulary conformance, every member kernel's translated
//!   stream must decode under it (`MULTI001`, no per-kernel encoding
//!   fallout), and member binaries may diverge from the shared synthesis
//!   only by appending dictionary entries (`MULTI002`).
//!
//! [`analyze`] runs everything and returns a [`Report`];
//! [`verified_flow`] returns a [`FitsFlow`] that runs the same analyses as a
//! gate inside [`FitsFlow::run`], and the `fitslint` binary (in
//! `fits-bench`, which owns the kernel/scenario plumbing) drives them over
//! the kernel suite with rustc-style diagnostics or machine-readable JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::fmt;
use std::sync::Arc;

use fits_core::{decode_word, FitsFlow, FitsOp, FlowError, FlowValidator};
use fits_core::{Synthesis, Translation};
use fits_isa::{Program, TEXT_BASE};
use fits_kernels::kernels::{Kernel, Scale};

pub mod ca;
pub mod cfg;
mod cfi;
mod df;
mod enc;
pub mod fixpoint;
mod isa;
mod multi;
mod tv;

pub use ca::{analyze_fits_cache, analyze_native_cache, audit, CacheAnalysis, FetchClass};
pub use cfg::{fits_cfg, native_cfg, Cfg, CfgBuild};
pub use isa::{lint_spec, lint_spec_text, validate_decoder_config};
pub use multi::{verify_multi, MultiMemberBin};

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not a soundness violation; does not fail
    /// [`Report::is_clean`].
    Warning,
    /// A defect in the synthesized encoding or the translated binary.
    Error,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding, anchored to the FITS and/or native instruction it concerns.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Stable rule code (`ENC001`, `CFI002`, `DF001`, `TV003`, …).
    pub code: &'static str,
    /// Human-readable description of the defect.
    pub message: String,
    /// FITS instruction index the finding anchors to, if any.
    pub fits_index: Option<usize>,
    /// Native (ARM) instruction index the finding anchors to, if any.
    pub arm_index: Option<usize>,
    /// Disassembly line for the anchor, filled in by [`analyze`].
    pub snippet: Option<String>,
}

impl Diagnostic {
    /// A new error-severity diagnostic.
    #[must_use]
    pub fn error(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            fits_index: None,
            arm_index: None,
            snippet: None,
        }
    }

    /// A new warning-severity diagnostic.
    #[must_use]
    pub fn warning(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Anchors the diagnostic to a FITS instruction index.
    #[must_use]
    pub fn at_fits(mut self, index: usize) -> Diagnostic {
        self.fits_index = Some(index);
        self
    }

    /// Anchors the diagnostic to a native instruction index.
    #[must_use]
    pub fn at_arm(mut self, index: usize) -> Diagnostic {
        self.arm_index = Some(index);
        self
    }
}

/// The result of running every analysis family over one triple.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// What was analyzed (a kernel name, or `"program"`).
    pub name: String,
    /// All findings, in analysis order (`ENC`, `CFI`, `DF`, `TV`).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when no error-severity diagnostic was found.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Findings with a given rule-code prefix (e.g. `"CFI"`).
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.code.starts_with(prefix))
    }

    /// True when some finding carries exactly this rule code.
    #[must_use]
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders the findings rustc-style: severity, rule code, message and
    /// the disassembly-anchored span.
    #[must_use]
    pub fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}[{}]: {}", d.severity.as_str(), d.code, d.message);
            match (d.fits_index, d.arm_index) {
                (Some(j), _) => {
                    let pc = TEXT_BASE + 2 * j as u32;
                    let _ = writeln!(out, "  --> {}:fits[{j}] @ {pc:#010x}", self.name);
                }
                (None, Some(i)) => {
                    let pc = TEXT_BASE + 4 * i as u32;
                    let _ = writeln!(out, "  --> {}:arm[{i}] @ {pc:#010x}", self.name);
                }
                (None, None) => {
                    let _ = writeln!(out, "  --> {}:<configuration>", self.name);
                }
            }
            if let Some(s) = &d.snippet {
                let _ = writeln!(out, "   |  {s}");
            }
            if d.fits_index.is_some() {
                if let Some(i) = d.arm_index {
                    let _ = writeln!(out, "  note: expands arm[{i}]");
                }
            }
        }
        let errors = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self.diagnostics.len() - errors;
        let _ = writeln!(
            out,
            "{}: {errors} error(s), {warnings} warning(s)",
            self.name
        );
        out
    }

    /// Renders the findings as a JSON object (machine-readable `fitslint`
    /// output).
    #[must_use]
    pub fn render_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"name\":{},\"clean\":{},\"diagnostics\":[",
            json_string(&self.name),
            self.is_clean()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"severity\":{},\"code\":{},\"message\":{},\"fits_index\":{},\"arm_index\":{}}}",
                json_string(d.severity.as_str()),
                json_string(d.code),
                json_string(&d.message),
                json_opt(d.fits_index),
                json_opt(d.arm_index),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string into a JSON string literal (hand-rolled: the workspace
/// carries no serialization dependency).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Shared pre-decoded view of the triple under analysis.
pub(crate) struct Ctx<'a> {
    pub program: &'a Program,
    pub translation: &'a Translation,
    /// Decoded FITS ops; `None` where the word fails to decode (already
    /// reported as `ENC004`).
    pub ops: Vec<Option<FitsOp>>,
    /// ARM→FITS position prefix sums, when the mapping statistics are
    /// consistent with the binary.
    pub pos: Option<Vec<u32>>,
}

impl Ctx<'_> {
    /// The ARM instruction whose expansion contains FITS index `j`.
    pub fn arm_of(&self, j: usize) -> Option<usize> {
        let pos = self.pos.as_ref()?;
        let j = j as u32;
        match pos.binary_search(&j) {
            Ok(i) if i < self.program.text.len() => Some(i),
            Ok(i) => Some(i - 1),
            Err(i) => Some(i - 1),
        }
    }
}

/// Runs every analysis family over the triple and returns the findings.
///
/// The triple is the natural output of the flow's stages 1–3:
/// [`fits_core::profile`] → [`fits_core::synthesize`] →
/// [`fits_core::translate`].
#[must_use]
pub fn analyze(program: &Program, synthesis: &Synthesis, translation: &Translation) -> Report {
    let mut diags = Vec::new();

    // Pre-decode once; undecodable words become ENC004 findings and are
    // skipped by the later families.
    let config = &translation.fits.config;
    let ops: Vec<Option<FitsOp>> = translation
        .fits
        .instrs
        .iter()
        .enumerate()
        .map(|(j, &word)| match decode_word(config, word, j) {
            Ok(op) => Some(op),
            Err(e) => {
                diags.push(
                    Diagnostic::error(
                        "ENC004",
                        format!("word {:#06x} does not decode: {}", e.word, e.what),
                    )
                    .at_fits(j),
                );
                None
            }
        })
        .collect();

    // Position map, when the mapping statistics account for every word.
    let total: u32 = translation.stats.expansion.iter().sum();
    let pos = if translation.stats.expansion.len() == program.text.len()
        && total as usize == translation.fits.instrs.len()
    {
        Some(translation.stats.positions())
    } else {
        diags.push(Diagnostic::error(
            "CFI006",
            format!(
                "mapping statistics are inconsistent with the binary: \
                 {} expansion entries summing to {total} for {} native \
                 instructions and {} FITS words",
                translation.stats.expansion.len(),
                program.text.len(),
                translation.fits.instrs.len()
            ),
        ));
        None
    };

    let ctx = Ctx {
        program,
        translation,
        ops,
        pos,
    };

    enc::analyze_enc(&ctx, synthesis, &mut diags);
    cfi::analyze_cfi(&ctx, &mut diags);
    df::analyze_df(&ctx, &mut diags);
    tv::analyze_tv(&ctx, &mut diags);

    // Attach disassembly anchors.
    for d in &mut diags {
        if d.snippet.is_some() {
            continue;
        }
        if let Some(j) = d.fits_index {
            if d.arm_index.is_none() {
                d.arm_index = ctx.arm_of(j);
            }
            let word = translation.fits.instrs.get(j).copied().unwrap_or(0);
            let decoded = ctx
                .ops
                .get(j)
                .and_then(Option::as_ref)
                .map_or_else(|| "<undecodable>".to_string(), |op| format!("{op:?}"));
            d.snippet = Some(format!("{word:04x}  {decoded}"));
        } else if let Some(i) = d.arm_index {
            if let Some(instr) = program.text.get(i) {
                d.snippet = Some(format!("{instr}"));
            }
        }
    }

    Report {
        name: "program".to_string(),
        diagnostics: diags,
    }
}

/// The [`FlowValidator`] implementation: rejects the triple when any
/// analysis family reports an error.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticValidator;

impl FlowValidator for StaticValidator {
    fn validate(
        &self,
        program: &Program,
        synthesis: &Synthesis,
        translation: &Translation,
    ) -> Result<(), String> {
        let report = analyze(program, synthesis, translation);
        if report.is_clean() {
            Ok(())
        } else {
            Err(report.render_text())
        }
    }
}

/// A [`FitsFlow`] with the static validator installed: every accepted
/// synthesis/translation pair is verified by all four analysis families
/// before the flow's differential execution.
#[must_use]
pub fn verified_flow() -> FitsFlow {
    FitsFlow {
        validator: Some(Arc::new(StaticValidator)),
        ..FitsFlow::default()
    }
}

/// Runs the flow (without differential execution) on a program and lints
/// the accepted triple. Used by `fitslint` and the suite-wide tests.
///
/// # Errors
///
/// Propagates [`FlowError`] when profiling, synthesis or translation fail
/// outright (distinct from the lint findings in the returned [`Report`]).
pub fn lint_program(program: &Program, name: &str) -> Result<Report, FlowError> {
    let flow = FitsFlow {
        verify: false,
        ..FitsFlow::default()
    };
    let out = flow.run(program)?;
    let translation = Translation {
        fits: out.fits,
        stats: out.mapping,
    };
    let mut report = analyze(program, &out.synthesis, &translation);
    report.name = name.to_string();
    Ok(report)
}

/// Compiles one kernel at `scale` and lints its triple.
///
/// # Errors
///
/// Returns a rendered error string when compilation or the flow fail.
pub fn lint_kernel(kernel: Kernel, scale: Scale) -> Result<Report, String> {
    let program = kernel
        .compile(scale)
        .map_err(|e| format!("{}: compile failed: {e}", kernel.name()))?;
    lint_program(&program, kernel.name())
        .map_err(|e| format!("{}: flow failed: {e}", kernel.name()))
}
