//! `TV` — per-rule translation validation.
//!
//! Replays each native instruction and its FITS expansion side by side on a
//! small abstract machine (sixteen registers, the four flags, and a sparse
//! byte memory backed by a deterministic oracle), over several pseudo-random
//! valuations. The expansion must reproduce the native instruction's
//! register, flag and store-sequence effects exactly — modulo the
//! translator's `ip` scratch register, which expansions are allowed to
//! clobber. Control-flow instructions are excluded (the `CFI` family owns
//! them); `swi` expansions are checked structurally.
//!
//! Rules:
//! * `TV001` — an expansion computes a different register state.
//! * `TV002` — an expansion computes different flags.
//! * `TV003` — an expansion performs different memory stores.
//! * `TV004` — an expansion has the wrong shape (escapes its slice, loops,
//!   or maps a trap onto something else).

use std::collections::HashMap;

use fits_core::FitsOp;
use fits_isa::alu::{dp_eval, mul_flags, shifter_operand, Flags};
use fits_isa::{AddrOffset, Index, Instr, MemOp, Operand2, Reg};
use fits_sim::instr_meta;

use crate::{Ctx, Diagnostic};

const TRIALS: u32 = 4;

/// SplitMix64 finalizer — a pure mixing function (no runtime randomness, so
/// findings reproduce exactly).
fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The memory oracle: the byte "already in memory" at an address before the
/// instruction runs. Both sides of the comparison see the same memory.
fn oracle_byte(addr: u32) -> u8 {
    (mix64(u64::from(addr) ^ 0x00c0_ffee_0000_0000) >> 24) as u8
}

#[derive(Clone)]
struct AbsState {
    regs: [u32; 16],
    flags: Flags,
    overlay: HashMap<u32, u8>,
    stores: Vec<(u32, u32, u32)>,
}

impl AbsState {
    fn new(trial: u32) -> AbsState {
        let mut regs = [0u32; 16];
        for (j, r) in regs.iter_mut().enumerate() {
            *r = mix64((u64::from(trial) << 8) | j as u64) as u32;
        }
        let f = mix64(u64::from(trial) ^ 0xf1a9);
        AbsState {
            regs,
            flags: Flags {
                n: f & 1 != 0,
                z: f & 2 != 0,
                c: f & 4 != 0,
                v: f & 8 != 0,
            },
            overlay: HashMap::new(),
            stores: Vec::new(),
        }
    }

    fn read(&self, r: Reg) -> u32 {
        self.regs[usize::from(r.index())]
    }

    fn write(&mut self, r: Reg, v: u32) {
        self.regs[usize::from(r.index())] = v;
    }

    fn load(&self, addr: u32, size: u32, signed: bool) -> u32 {
        let mut v = 0u32;
        for b in 0..size {
            let a = addr.wrapping_add(b);
            let byte = self
                .overlay
                .get(&a)
                .copied()
                .unwrap_or_else(|| oracle_byte(a));
            v |= u32::from(byte) << (8 * b);
        }
        if signed && size < 4 {
            let shift = 32 - 8 * size;
            ((v << shift) as i32 >> shift) as u32
        } else {
            v
        }
    }

    fn store(&mut self, addr: u32, size: u32, v: u32) {
        for b in 0..size {
            self.overlay
                .insert(addr.wrapping_add(b), (v >> (8 * b)) as u8);
        }
        let mask = if size >= 4 {
            u32::MAX
        } else {
            (1 << (8 * size)) - 1
        };
        self.stores.push((addr, size, v & mask));
    }
}

/// Executes one non-control-flow instruction; `Err` means the shape is
/// outside the interpreter (the caller then skips validation, never
/// reporting a false positive).
fn step_instr(st: &mut AbsState, instr: &Instr) -> Result<(), &'static str> {
    if !instr.cond().holds(st.flags) {
        return Ok(());
    }
    match instr {
        Instr::Dp {
            op,
            set_flags,
            rd,
            rn,
            op2,
            ..
        } => {
            let (b, carry) = shifter_operand(op2, st.flags.c, |r| st.read(r));
            let a = st.read(*rn);
            let r = dp_eval(*op, a, b, carry, st.flags);
            if *set_flags {
                st.flags = r.flags;
            }
            if !op.is_compare() {
                st.write(*rd, r.value);
            }
            Ok(())
        }
        Instr::Mul {
            set_flags,
            rd,
            rm,
            rs,
            acc,
            ..
        } => {
            let mut v = st.read(*rm).wrapping_mul(st.read(*rs));
            if let Some(ra) = acc {
                v = v.wrapping_add(st.read(*ra));
            }
            if *set_flags {
                st.flags = mul_flags(v, st.flags);
            }
            st.write(*rd, v);
            Ok(())
        }
        Instr::Mem {
            op,
            rd,
            rn,
            offset,
            index,
            ..
        } => {
            if *index != Index::PreNoWb {
                return Err("writeback addressing");
            }
            let addr = match offset {
                AddrOffset::Imm(d) => st.read(*rn).wrapping_add(*d as u32),
                AddrOffset::Reg {
                    rm,
                    shift,
                    subtract,
                } => {
                    let (v, _) =
                        shifter_operand(&Operand2::Reg(*rm, *shift), st.flags.c, |r| st.read(r));
                    if *subtract {
                        st.read(*rn).wrapping_sub(v)
                    } else {
                        st.read(*rn).wrapping_add(v)
                    }
                }
            };
            let size = op.size();
            let signed = matches!(op, MemOp::Ldrsb | MemOp::Ldrsh);
            if op.is_load() {
                let v = st.load(addr, size, signed);
                st.write(*rd, v);
            } else {
                let v = st.read(*rd);
                st.store(addr, size, v);
            }
            Ok(())
        }
        Instr::Branch { .. } | Instr::Swi { .. } => Err("control flow"),
    }
}

fn step_fits(st: &mut AbsState, op: &FitsOp) -> Result<(), &'static str> {
    match op {
        FitsOp::Plain(i) => step_instr(st, i),
        FitsOp::WideImm {
            op,
            set_flags,
            rd,
            rn,
            imm,
        } => {
            // Mirrors the executor: wide immediates behave like unrotated
            // ARM immediates (shifter carry-out = carry-in).
            let a = if op.ignores_rn() { 0 } else { st.read(*rn) };
            let r = dp_eval(*op, a, *imm, st.flags.c, st.flags);
            if *set_flags {
                st.flags = r.flags;
            }
            if !op.is_compare() {
                st.write(*rd, r.value);
            }
            Ok(())
        }
        FitsOp::WideMem { op, rd, rb, disp } => {
            let addr = st.read(*rb).wrapping_add(*disp as u32);
            let size = op.size();
            let signed = matches!(op, MemOp::Ldrsb | MemOp::Ldrsh);
            if op.is_load() {
                let v = st.load(addr, size, signed);
                st.write(*rd, v);
            } else {
                let v = st.read(*rd);
                st.store(addr, size, v);
            }
            Ok(())
        }
        FitsOp::Jalr(_) => Err("indirect call in a non-branch expansion"),
    }
}

/// Runs an expansion slice, interpreting intra-slice branches (predication
/// hops). A branch to exactly one-past-the-end exits the slice.
fn run_slice(st: &mut AbsState, ops: &[FitsOp]) -> Result<(), &'static str> {
    let mut k: i64 = 0;
    let mut fuel = 16 + 4 * ops.len();
    while (k as usize) < ops.len() {
        if fuel == 0 {
            return Err("expansion does not terminate");
        }
        fuel -= 1;
        match &ops[k as usize] {
            FitsOp::Plain(Instr::Branch {
                cond, link, offset, ..
            }) => {
                if *link {
                    return Err("linking branch in a non-branch expansion");
                }
                if cond.holds(st.flags) {
                    k += 2 + i64::from(*offset);
                    if k < 0 || k as usize > ops.len() {
                        return Err("expansion branch escapes its slice");
                    }
                } else {
                    k += 1;
                }
            }
            op => {
                step_fits(st, op)?;
                k += 1;
            }
        }
    }
    Ok(())
}

pub(crate) fn analyze_tv(ctx: &Ctx<'_>, diags: &mut Vec<Diagnostic>) {
    let Some(pos) = &ctx.pos else {
        return; // CFI006: slices are meaningless
    };

    'instrs: for (i, instr) in ctx.program.text.iter().enumerate() {
        let slice_range = pos[i] as usize..pos[i + 1] as usize;
        let anchor = pos[i] as usize;

        // Collect the decoded slice; skip if anything failed to decode
        // (ENC004 already reported).
        let mut slice: Vec<FitsOp> = Vec::with_capacity(slice_range.len());
        for j in slice_range {
            match ctx.ops.get(j).and_then(Option::as_ref) {
                Some(op) => slice.push(*op),
                None => continue 'instrs,
            }
        }

        // Traps: checked structurally — exactly one trap with the same
        // number, plus (for predicated traps) branch-around glue.
        if let Instr::Swi { imm, .. } = instr {
            let traps: Vec<&FitsOp> = slice
                .iter()
                .filter(|op| matches!(op, FitsOp::Plain(Instr::Swi { .. })))
                .collect();
            let ok = traps.len() == 1
                && matches!(traps[0], FitsOp::Plain(Instr::Swi { imm: fi, .. }) if fi == imm)
                && slice.iter().all(|op| {
                    matches!(op, FitsOp::Plain(Instr::Swi { .. } | Instr::Branch { .. }))
                });
            if !ok {
                diags.push(
                    Diagnostic::error(
                        "TV004",
                        format!("trap {imm:#x} does not map onto a single trap expansion"),
                    )
                    .at_fits(anchor)
                    .at_arm(i),
                );
            }
            continue;
        }

        // Control flow is CFI's domain; PC-involved instructions (indirect
        // jumps, PC-relative arithmetic) are not simulated.
        if matches!(instr, Instr::Branch { .. }) {
            continue;
        }
        let meta = instr_meta(instr);
        let touches_pc = meta
            .sources
            .into_iter()
            .chain(meta.dests)
            .flatten()
            .any(|r| r == Reg::PC);
        if touches_pc {
            continue;
        }

        for trial in 0..TRIALS {
            let mut native = AbsState::new(trial);
            let mut fits = native.clone();
            if step_instr(&mut native, instr).is_err() {
                continue 'instrs; // shape outside the interpreter
            }
            if let Err(what) = run_slice(&mut fits, &slice) {
                diags.push(
                    Diagnostic::error("TV004", format!("malformed expansion: {what}"))
                        .at_fits(anchor)
                        .at_arm(i),
                );
                continue 'instrs;
            }

            for r in 0..16u8 {
                let reg = Reg::new(r);
                if reg == Reg::IP || reg == Reg::PC {
                    continue; // translator scratch / control
                }
                if native.read(reg) != fits.read(reg) {
                    diags.push(
                        Diagnostic::error(
                            "TV001",
                            format!(
                                "expansion does not preserve r{r}: native {:#010x}, \
                                 translated {:#010x} (valuation {trial})",
                                native.read(reg),
                                fits.read(reg)
                            ),
                        )
                        .at_fits(anchor)
                        .at_arm(i),
                    );
                    continue 'instrs;
                }
            }
            if native.flags != fits.flags {
                diags.push(
                    Diagnostic::error(
                        "TV002",
                        format!(
                            "expansion does not preserve flags: native {:?}, translated \
                             {:?} (valuation {trial})",
                            native.flags, fits.flags
                        ),
                    )
                    .at_fits(anchor)
                    .at_arm(i),
                );
                continue 'instrs;
            }
            if native.stores != fits.stores {
                diags.push(
                    Diagnostic::error(
                        "TV003",
                        format!(
                            "expansion does not preserve memory effects: native stores \
                             {:?}, translated {:?} (valuation {trial})",
                            native.stores, fits.stores
                        ),
                    )
                    .at_fits(anchor)
                    .at_arm(i),
                );
                continue 'instrs;
            }
        }
    }
}
