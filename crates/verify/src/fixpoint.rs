//! Generic worklist fixpoint solver over a control-flow graph.
//!
//! The analyses in this crate (flag liveness in `df`, the abstract cache
//! domains in `ca`) are all instances of the same scheme: propagate
//! abstract states along CFG edges, joining at merge points, until nothing
//! changes. This module factors that scheme out once — a [`Domain`]
//! supplies the lattice (state type, join, transfer, entry state) and
//! [`solve`] runs a worklist to the least fixpoint, switching from join to
//! [`Domain::widen`] on nodes that keep changing so that tall lattices
//! still terminate promptly.
//!
//! States are per-node `Option<S>`: `None` is bottom — "no path reaches
//! this node" — so unreachable code stays distinguishable from code
//! reached with an empty abstract state. Backward analyses run the same
//! solver over [`Cfg::reversed`](crate::cfg::Cfg::reversed); the solution's
//! `input` then holds what the forward view calls the output state.

use crate::cfg::Cfg;

/// A join-semilattice dataflow domain over CFG nodes.
pub trait Domain {
    /// The abstract state attached to each program point.
    type State: Clone;

    /// The state flowing into the analysis entry nodes (for a cache
    /// analysis: the cold, empty cache).
    fn entry_state(&self) -> Self::State;

    /// Joins `other` into `into`, returning whether `into` changed.
    /// Must be monotone: the result over-approximates both operands.
    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool;

    /// The effect of executing `node` on a state flowing through it.
    fn transfer(&self, node: usize, input: &Self::State) -> Self::State;

    /// Accelerated join used once a node has been revisited more than the
    /// solver's `widen_after` threshold: may jump further up the lattice
    /// than the plain join to force convergence. The default is the plain
    /// join, which is already a correct widening for finite-height
    /// domains.
    fn widen(&self, into: &mut Self::State, other: &Self::State) -> bool {
        self.join(into, other)
    }
}

/// The fixpoint: per-node input and output states (`None` = unreachable),
/// plus the number of node visits the worklist performed.
#[derive(Clone, Debug)]
pub struct Solution<S> {
    /// State just before each node executes (the join over its in-edges).
    pub input: Vec<Option<S>>,
    /// State just after each node executes (`transfer` of `input`).
    pub output: Vec<Option<S>>,
    /// Total worklist visits — a convergence diagnostic.
    pub passes: usize,
}

/// Runs the worklist to the least fixpoint of `dom` over `cfg`.
///
/// `entries` are the nodes that receive [`Domain::entry_state`]; nodes not
/// reachable from them keep `None` states. `widen_after` is the per-node
/// revisit budget before joins escalate to [`Domain::widen`].
pub fn solve<D: Domain>(
    cfg: &Cfg,
    dom: &D,
    entries: &[usize],
    widen_after: usize,
) -> Solution<D::State> {
    let n = cfg.len();
    let mut input: Vec<Option<D::State>> = vec![None; n];
    let mut output: Vec<Option<D::State>> = vec![None; n];
    let mut visits = vec![0usize; n];
    let mut on_list = vec![false; n];
    let mut list: Vec<usize> = Vec::new();
    let mut passes = 0usize;

    for &e in entries {
        if e < n && input[e].is_none() {
            input[e] = Some(dom.entry_state());
            if !on_list[e] {
                on_list[e] = true;
                list.push(e);
            }
        }
    }

    while let Some(node) = list.pop() {
        on_list[node] = false;
        passes += 1;
        visits[node] += 1;
        let Some(state) = &input[node] else { continue };
        let out = dom.transfer(node, state);
        for &succ in &cfg.succs[node] {
            let changed = match &mut input[succ] {
                Some(existing) => {
                    if visits[succ] > widen_after {
                        dom.widen(existing, &out)
                    } else {
                        dom.join(existing, &out)
                    }
                }
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
            };
            if changed && !on_list[succ] {
                on_list[succ] = true;
                list.push(succ);
            }
        }
        output[node] = Some(out);
    }

    Solution {
        input,
        output,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Constant propagation of a single counter bounded at a ceiling —
    /// enough lattice to exercise joins, loops and widening.
    struct Bounded {
        /// Per-node increment.
        inc: Vec<u32>,
        cap: u32,
    }

    impl Domain for Bounded {
        type State = u32;

        fn entry_state(&self) -> u32 {
            0
        }

        fn join(&self, into: &mut u32, other: &u32) -> bool {
            if *other > *into {
                *into = *other;
                true
            } else {
                false
            }
        }

        fn transfer(&self, node: usize, input: &u32) -> u32 {
            (*input + self.inc[node]).min(self.cap)
        }

        fn widen(&self, into: &mut u32, other: &u32) -> bool {
            if *other > *into {
                *into = self.cap;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn straight_line_propagates() {
        // 0 -> 1 -> 2
        let cfg = Cfg::from_succs(vec![vec![1], vec![2], vec![]]);
        let dom = Bounded {
            inc: vec![1, 1, 1],
            cap: 100,
        };
        let sol = solve(&cfg, &dom, &[0], 1000);
        assert_eq!(sol.input, vec![Some(0), Some(1), Some(2)]);
        assert_eq!(sol.output, vec![Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn unreachable_nodes_stay_bottom() {
        let cfg = Cfg::from_succs(vec![vec![1], vec![], vec![1]]);
        let sol = solve(
            &cfg,
            &Bounded {
                inc: vec![0, 0, 0],
                cap: 10,
            },
            &[0],
            1000,
        );
        assert!(sol.input[2].is_none());
        assert!(sol.output[2].is_none());
        assert!(sol.input[1].is_some());
    }

    #[test]
    fn loop_reaches_fixpoint_at_cap() {
        // 0 -> 1 -> 1 (self loop) — the counter climbs to the cap.
        let cfg = Cfg::from_succs(vec![vec![1], vec![1]]);
        let dom = Bounded {
            inc: vec![0, 1],
            cap: 7,
        };
        let sol = solve(&cfg, &dom, &[0], 1000);
        assert_eq!(sol.input[1], Some(7));
        assert_eq!(sol.output[1], Some(7));
    }

    #[test]
    fn widening_converges_faster_than_join() {
        let cfg = Cfg::from_succs(vec![vec![1], vec![1]]);
        let dom = Bounded {
            inc: vec![0, 1],
            cap: 1_000_000,
        };
        let widened = solve(&cfg, &dom, &[0], 3);
        assert_eq!(widened.input[1], Some(1_000_000), "widened to the cap");
        assert!(
            widened.passes < 100,
            "widening must converge promptly, took {}",
            widened.passes
        );
    }

    #[test]
    fn join_at_merge_takes_maximum() {
        // Diamond: 0 -> {1, 2} -> 3, different increments on the arms.
        let cfg = Cfg::from_succs(vec![vec![1, 2], vec![3], vec![3], vec![]]);
        let dom = Bounded {
            inc: vec![0, 5, 2, 0],
            cap: 100,
        };
        let sol = solve(&cfg, &dom, &[0], 1000);
        assert_eq!(sol.input[3], Some(5));
    }
}
