//! `CA` — static I-cache analysis by abstract interpretation.
//!
//! Classifies every instruction fetch of a program as **always-hit**,
//! **always-miss**, **persistent** (at most one miss over the whole run)
//! or **unknown**, from the program text alone, for a given cache geometry
//! ([`AbstractCacheParams`]). Three classic abstract domains run on the
//! shared [fixpoint](crate::fixpoint) solver over the conservative
//! [CFG](crate::cfg):
//!
//! * **must** (Ferdinand-style age vectors): an upper bound on each
//!   text line's LRU age; a line with a bounded age at a fetch is
//!   guaranteed cached → always-hit. Under pseudo-random replacement ages
//!   carry no meaning, so the transfer degrades soundly: any possible
//!   miss clears the whole set's guarantees.
//! * **may** (ever-possibly-loaded): a monotone over-approximation of the
//!   lines any path may have loaded. A line outside the may set at a
//!   fetch cannot be cached (the cache starts cold) → always-miss. No
//!   eviction is modeled, which keeps the domain sound for *any*
//!   replacement policy.
//! * **persistence** (per set): when the distinct text lines that can map
//!   to a set fit its associativity, no line of that set is ever evicted
//!   (the simulated caches always prefer an invalid way as victim), so
//!   each line misses at most once — first-miss/persistent.
//!
//! The word-level view matters because the simulator fetches 32-bit words
//! and skips the fetch while execution stays inside the word it last
//! fetched (`last_fetch_word`). Only *fetch points* — the entry, the first
//! instruction of each word, and jump targets — can start a real access,
//! so a word's class is the join over its fetch points, and per-block
//! energy envelopes charge each word of a block once per execution except
//! possibly the first.
//!
//! Treating every node as an access in the transfers stays sound under the
//! fetch filter: inside an unbroken same-word run no other I-cache access
//! occurs, so the just-fetched line genuinely is the most recent access
//! (must), and extra insertions only grow the may set.
//!
//! The `CA` diagnostics audit an analysis *result* against independently
//! rebuilt ground truth — the seams that let the seeded-fault tests prove
//! the audit catches a cooked analysis:
//! * `CA001` — a fetch claimed always-hit whose line the may/must states
//!   do not support (an unsound hit claim).
//! * `CA002` — the analysis geometry disagrees with the machine's actual
//!   cache configuration.
//! * `CA003` — the analyzed CFG is missing an edge of the rebuilt CFG
//!   (a dropped path makes every domain unsound).

use fits_core::FitsOp;
use fits_isa::{Program, TEXT_BASE};
use fits_power::AccessEnergyBounds;
use fits_scenario::AbstractCacheParams;
use fits_sim::{CacheConfig, Replacement};

use crate::cfg::{fits_cfg, native_cfg, Cfg, CfgBuild};
use crate::fixpoint::{solve, Domain};
use crate::Diagnostic;

/// Age marker for "not guaranteed cached" in the must domain.
const AGE_NONE: u8 = u8::MAX;

/// Revisit budget before the solver escalates joins to widening.
const WIDEN_AFTER: usize = 64;

/// Static classification of a fetch (a node or a fetch word).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchClass {
    /// Every execution of this fetch hits the cache.
    AlwaysHit,
    /// Every execution of this fetch misses the cache.
    AlwaysMiss,
    /// The line misses at most once over the whole run.
    Persistent,
    /// Nothing is guaranteed.
    Unknown,
    /// No path from the entry reaches this fetch.
    Unreachable,
}

impl FetchClass {
    /// Stable lowercase name (JSON field values).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FetchClass::AlwaysHit => "always-hit",
            FetchClass::AlwaysMiss => "always-miss",
            FetchClass::Persistent => "persistent",
            FetchClass::Unknown => "unknown",
            FetchClass::Unreachable => "unreachable",
        }
    }
}

/// Per-fetch-word classification — the unit the simulator's fetch path
/// (and the per-PC trace histogram) actually counts.
#[derive(Clone, Debug)]
pub struct WordSummary {
    /// Word index from [`TEXT_BASE`] (stride 4 bytes).
    pub index: usize,
    /// Word-aligned byte address.
    pub addr: u32,
    /// Cache set this word maps to.
    pub set: u32,
    /// Absolute line number (`addr / line_bytes`).
    pub line: u32,
    /// Join of the classes of the word's reachable fetch points.
    pub class: FetchClass,
    /// Whether the word's line lives in a persistent set.
    pub persistent_line: bool,
}

/// A basic block with its per-execution fetch-energy envelope.
#[derive(Clone, Debug)]
pub struct BlockSummary {
    /// First node (instruction index) of the block.
    pub first: usize,
    /// Last node of the block (inclusive).
    pub last: usize,
    /// Byte address of the first node.
    pub addr: u32,
    /// Whether any node of the block is reachable.
    pub reachable: bool,
}

/// The complete static cache analysis of one instruction stream.
#[derive(Clone, Debug)]
pub struct CacheAnalysis {
    /// Geometry the analysis ran against.
    pub params: AbstractCacheParams,
    /// Bytes per instruction: 4 (native AR32) or 2 (FITS).
    pub instr_bytes: u32,
    /// Entry node.
    pub entry: usize,
    /// The CFG the solver ran on.
    pub cfg: Cfg,
    /// Nodes that receive control by a non-fall-through edge.
    pub jump_target: Vec<bool>,
    /// Nodes that can start a real (unfiltered) instruction fetch.
    pub fetch_point: Vec<bool>,
    /// Per-node classification.
    pub node_class: Vec<FetchClass>,
    /// Per-set persistence (length = `params.sets`).
    pub persistent_set: Vec<bool>,
    /// Per-fetch-word classification.
    pub words: Vec<WordSummary>,
    /// Basic blocks in address order.
    pub blocks: Vec<BlockSummary>,
    /// Solver visits spent on (must, may).
    pub passes: (usize, usize),
    /// Per node: accessed line is in the node's must state (guaranteed
    /// cached). Supports the `CA001` audit.
    node_line_in_must: Vec<bool>,
    /// Per node: accessed line is in the node's may state (possibly
    /// cached). Supports the `CA001` audit.
    node_line_in_may: Vec<bool>,
}

/// Dense line table of a text section: maps nodes to line indices and
/// lines to sets.
struct LineMap {
    /// Dense line index per node.
    node_line: Vec<usize>,
    /// Cache set per dense line.
    line_set: Vec<u32>,
}

impl LineMap {
    fn new(n: usize, instr_bytes: u32, params: &AbstractCacheParams) -> LineMap {
        let first_line = params.line_of(TEXT_BASE);
        let node_line: Vec<usize> = (0..n)
            .map(|i| (params.line_of(TEXT_BASE + instr_bytes * i as u32) - first_line) as usize)
            .collect();
        let lines = node_line.last().map_or(0, |&l| l + 1);
        // A line's set is its absolute line number modulo the set count.
        let line_set: Vec<u32> = (0..lines)
            .map(|l| (first_line + l as u32) % params.sets)
            .collect();
        LineMap {
            node_line,
            line_set,
        }
    }
}

/// The must domain: per-line upper bounds on LRU age (`AGE_NONE` = no
/// guarantee). Under [`Replacement::PseudoRandom`] only presence is
/// tracked and any possible miss wipes the set.
struct MustDomain<'a> {
    map: &'a LineMap,
    ways: u8,
    policy: Replacement,
}

impl Domain for MustDomain<'_> {
    type State = Vec<u8>;

    fn entry_state(&self) -> Vec<u8> {
        // Cold cache: nothing is guaranteed present.
        vec![AGE_NONE; self.map.line_set.len()]
    }

    fn join(&self, into: &mut Vec<u8>, other: &Vec<u8>) -> bool {
        let mut changed = false;
        for (a, &b) in into.iter_mut().zip(other) {
            if b > *a {
                *a = b;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, node: usize, input: &Vec<u8>) -> Vec<u8> {
        let mut st = input.clone();
        let l = self.map.node_line[node];
        let set = self.map.line_set[l];
        match self.policy {
            Replacement::Lru => {
                // Ferdinand must-update: same-set lines younger than the
                // accessed line age by one (falling out at `ways`); the
                // accessed line becomes most-recent.
                let a = st[l];
                for (m, &s) in self.map.line_set.iter().enumerate() {
                    if s != set || m == l || st[m] == AGE_NONE || st[m] >= a {
                        continue;
                    }
                    st[m] += 1;
                    if st[m] >= self.ways {
                        st[m] = AGE_NONE;
                    }
                }
            }
            Replacement::PseudoRandom => {
                // A possible miss may evict any line of the set; a
                // guaranteed hit evicts nothing.
                if st[l] == AGE_NONE {
                    for (m, &s) in self.map.line_set.iter().enumerate() {
                        if s == set {
                            st[m] = AGE_NONE;
                        }
                    }
                }
            }
        }
        st[l] = 0;
        st
    }

    fn widen(&self, into: &mut Vec<u8>, other: &Vec<u8>) -> bool {
        // Jump straight to "no guarantee" on any still-rising age.
        let mut changed = false;
        for (a, &b) in into.iter_mut().zip(other) {
            if b > *a {
                *a = AGE_NONE;
                changed = true;
            }
        }
        changed
    }
}

/// The may domain: the monotone set of lines any path may have loaded so
/// far. No eviction — sound for every replacement policy.
struct MayDomain<'a> {
    map: &'a LineMap,
}

impl Domain for MayDomain<'_> {
    type State = Vec<bool>;

    fn entry_state(&self) -> Vec<bool> {
        vec![false; self.map.line_set.len()]
    }

    fn join(&self, into: &mut Vec<bool>, other: &Vec<bool>) -> bool {
        let mut changed = false;
        for (a, &b) in into.iter_mut().zip(other) {
            if b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }

    fn transfer(&self, node: usize, input: &Vec<bool>) -> Vec<bool> {
        let mut st = input.clone();
        st[self.map.node_line[node]] = true;
        st
    }
}

/// Analyzes a native AR32 program (4-byte instructions).
#[must_use]
pub fn analyze_native_cache(program: &Program, params: AbstractCacheParams) -> CacheAnalysis {
    analyze_native_cache_with(program, params, native_cfg(program))
}

/// Native analysis over a caller-supplied CFG build.
///
/// Exists so the seeded-fault tests can hand in a doctored graph and prove
/// [`audit`] reports `CA003`; normal callers use [`analyze_native_cache`].
#[doc(hidden)]
#[must_use]
pub fn analyze_native_cache_with(
    _program: &Program,
    params: AbstractCacheParams,
    build: CfgBuild,
) -> CacheAnalysis {
    analyze_stream(params, 4, build)
}

/// Analyzes a translated FITS program (2-byte instructions): `ops` are the
/// decoded words (`None` for undecodable ones), `targets` the binary's
/// target dictionary.
#[must_use]
pub fn analyze_fits_cache(
    ops: &[Option<FitsOp>],
    entry: usize,
    targets: &[u32],
    params: AbstractCacheParams,
) -> CacheAnalysis {
    analyze_fits_cache_with(params, fits_cfg(ops, entry, targets))
}

/// FITS analysis over a caller-supplied CFG build (`CA003` test seam).
#[doc(hidden)]
#[must_use]
pub fn analyze_fits_cache_with(params: AbstractCacheParams, build: CfgBuild) -> CacheAnalysis {
    analyze_stream(params, 2, build)
}

fn analyze_stream(params: AbstractCacheParams, instr_bytes: u32, build: CfgBuild) -> CacheAnalysis {
    let CfgBuild {
        cfg,
        jump_target,
        entry,
    } = build;
    let n = cfg.len();
    let map = LineMap::new(n, instr_bytes, &params);

    let must = MustDomain {
        map: &map,
        // Ages are u8: an associativity beyond the marker value cannot be
        // tracked and degrades (soundly) to earlier eviction.
        ways: u8::try_from(params.ways.min(u32::from(AGE_NONE) - 1)).unwrap_or(AGE_NONE - 1),
        policy: params.policy,
    };
    let may = MayDomain { map: &map };
    let must_sol = solve(&cfg, &must, &[entry], WIDEN_AFTER);
    let may_sol = solve(&cfg, &may, &[entry], WIDEN_AFTER);

    // Per-set persistence: distinct reachable lines per set vs ways.
    let mut line_reachable = vec![false; map.line_set.len()];
    for (node, input) in must_sol.input.iter().enumerate() {
        if input.is_some() {
            line_reachable[map.node_line[node]] = true;
        }
    }
    let mut set_lines = vec![0u32; params.sets as usize];
    for (l, &reach) in line_reachable.iter().enumerate() {
        if reach {
            set_lines[map.line_set[l] as usize] += 1;
        }
    }
    let persistent_set: Vec<bool> = set_lines.iter().map(|&c| c <= params.ways).collect();

    // Node classification.
    let mut node_class = vec![FetchClass::Unreachable; n];
    let mut node_line_in_must = vec![false; n];
    let mut node_line_in_may = vec![false; n];
    for node in 0..n {
        let l = map.node_line[node];
        let (Some(must_in), Some(may_in)) = (&must_sol.input[node], &may_sol.input[node]) else {
            continue;
        };
        node_line_in_must[node] = must_in[l] != AGE_NONE;
        node_line_in_may[node] = may_in[l];
        node_class[node] = if node_line_in_must[node] {
            FetchClass::AlwaysHit
        } else if !node_line_in_may[node] {
            FetchClass::AlwaysMiss
        } else if persistent_set[map.line_set[l] as usize] {
            FetchClass::Persistent
        } else {
            FetchClass::Unknown
        };
    }

    // Fetch points: the entry, word-aligned nodes, and jump targets.
    let fetch_point: Vec<bool> = (0..n)
        .map(|node| {
            node == entry || (node as u32 * instr_bytes).is_multiple_of(4) || jump_target[node]
        })
        .collect();

    let nodes_per_word = (4 / instr_bytes) as usize;
    let n_words = n.div_ceil(nodes_per_word);
    let words: Vec<WordSummary> = (0..n_words)
        .map(|w| {
            let nodes = (w * nodes_per_word)..((w + 1) * nodes_per_word).min(n);
            let addr = TEXT_BASE + 4 * w as u32;
            let line = params.line_of(addr);
            WordSummary {
                index: w,
                addr,
                set: params.set_of(addr),
                line,
                class: join_word_class(
                    nodes.filter(|&i| fetch_point[i]).map(|i| node_class[i]),
                    persistent_set[params.set_of(addr) as usize],
                ),
                persistent_line: persistent_set[params.set_of(addr) as usize],
            }
        })
        .collect();

    // Basic blocks: leaders are node 0, jump targets, and successors of
    // nodes that do not fall through.
    let mut leader = vec![false; n];
    if n > 0 {
        leader[0] = true;
        leader[entry] = true;
    }
    for node in 0..n {
        if jump_target[node] {
            leader[node] = true;
        }
        if node + 1 < n && !cfg.has_edge(node, node + 1) {
            leader[node + 1] = true;
        }
    }
    let mut blocks = Vec::new();
    let mut start = 0usize;
    for (node, &is_leader) in leader.iter().enumerate().skip(1) {
        if is_leader {
            blocks.push(BlockSummary {
                first: start,
                last: node - 1,
                addr: TEXT_BASE + instr_bytes * start as u32,
                reachable: (start..node).any(|i| node_class[i] != FetchClass::Unreachable),
            });
            start = node;
        }
    }
    if n > 0 {
        blocks.push(BlockSummary {
            first: start,
            last: n - 1,
            addr: TEXT_BASE + instr_bytes * start as u32,
            reachable: (start..n).any(|i| node_class[i] != FetchClass::Unreachable),
        });
    }

    CacheAnalysis {
        params,
        instr_bytes,
        entry,
        cfg,
        jump_target,
        fetch_point,
        node_class,
        persistent_set,
        words,
        blocks,
        passes: (must_sol.passes, may_sol.passes),
        node_line_in_must,
        node_line_in_may,
    }
}

/// Joins the classes of a word's reachable fetch points.
fn join_word_class(classes: impl Iterator<Item = FetchClass>, persistent_line: bool) -> FetchClass {
    let mut all_hit = true;
    let mut all_miss = true;
    let mut any = false;
    for c in classes {
        if c == FetchClass::Unreachable {
            continue;
        }
        any = true;
        all_hit &= c == FetchClass::AlwaysHit;
        all_miss &= c == FetchClass::AlwaysMiss;
    }
    if !any {
        FetchClass::Unreachable
    } else if all_hit {
        FetchClass::AlwaysHit
    } else if all_miss {
        FetchClass::AlwaysMiss
    } else if persistent_line {
        FetchClass::Persistent
    } else {
        FetchClass::Unknown
    }
}

impl CacheAnalysis {
    /// The fetch word containing a node.
    #[must_use]
    pub fn word_of(&self, node: usize) -> usize {
        node * self.instr_bytes as usize / 4
    }

    /// Counts of words per class: (always-hit, always-miss, persistent,
    /// unknown, unreachable).
    #[must_use]
    pub fn word_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for w in &self.words {
            match w.class {
                FetchClass::AlwaysHit => c.0 += 1,
                FetchClass::AlwaysMiss => c.1 += 1,
                FetchClass::Persistent => c.2 += 1,
                FetchClass::Unknown => c.3 += 1,
                FetchClass::Unreachable => c.4 += 1,
            }
        }
        c
    }

    /// The fetch-energy envelope of one word's real accesses, per access:
    /// an always-hit word costs hit energy, an always-miss word miss
    /// energy, anything else brackets both.
    #[must_use]
    pub fn word_energy(&self, word: usize, bounds: &AccessEnergyBounds) -> (f64, f64) {
        let class = self.words[word].class;
        let lo = if class == FetchClass::AlwaysMiss {
            bounds.miss_min_j
        } else {
            bounds.hit_min_j
        };
        let hi = if class == FetchClass::AlwaysHit {
            bounds.hit_max_j
        } else {
            bounds.miss_max_j
        };
        (lo, hi)
    }

    /// Per-execution fetch-energy envelopes of every block, parallel to
    /// [`CacheAnalysis::blocks`].
    ///
    /// Executing a block touches each of its fetch words once — except the
    /// first word, which may already be resident in the fetch buffer when
    /// the block is entered mid-word, so only the upper bound charges it.
    /// Unreachable blocks never execute and get `(0, 0)`.
    #[must_use]
    pub fn block_envelopes(&self, bounds: &AccessEnergyBounds) -> Vec<(f64, f64)> {
        self.blocks
            .iter()
            .map(|b| {
                if !b.reachable {
                    return (0.0, 0.0);
                }
                let first_word = self.word_of(b.first);
                let last_word = self.word_of(b.last);
                let mut lo = 0.0;
                let mut hi = 0.0;
                for w in first_word..=last_word {
                    let (e_lo, e_hi) = self.word_energy(w, bounds);
                    if w != first_word {
                        lo += e_lo;
                    }
                    hi += e_hi;
                }
                (lo, hi)
            })
            .collect()
    }

    /// Overrides one node's classification and rebuilds the containing
    /// word's class. `CA001` test seam: the audit must notice a fetch
    /// upgraded to always-hit against the domain evidence.
    #[doc(hidden)]
    pub fn force_class(&mut self, node: usize, class: FetchClass) {
        self.node_class[node] = class;
        let w = self.word_of(node);
        let nodes_per_word = (4 / self.instr_bytes) as usize;
        let nodes = (w * nodes_per_word)..((w + 1) * nodes_per_word).min(self.node_class.len());
        self.words[w].class = join_word_class(
            nodes
                .filter(|&i| self.fetch_point[i])
                .map(|i| self.node_class[i]),
            self.words[w].persistent_line,
        );
    }

    /// Overrides the recorded geometry. `CA002` test seam: the audit must
    /// notice an analysis run against the wrong associativity.
    #[doc(hidden)]
    pub fn force_params(&mut self, params: AbstractCacheParams) {
        self.params = params;
    }
}

/// Audits an analysis against independently rebuilt ground truth: the
/// machine's actual I-cache configuration and a freshly built CFG.
/// Returns `CA001`–`CA003` findings (empty for a sound analysis).
#[must_use]
pub fn audit(
    analysis: &CacheAnalysis,
    rebuilt: &CfgBuild,
    icache: &CacheConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Anchor findings to the right instruction space.
    let anchor = |d: Diagnostic, node: usize| {
        if analysis.instr_bytes == 4 {
            d.at_arm(node)
        } else {
            d.at_fits(node)
        }
    };

    // CA002: the analysis must have run against this machine's geometry.
    if !analysis.params.matches(icache) {
        diags.push(Diagnostic::error(
            "CA002",
            format!(
                "analysis geometry ({} sets x {} ways x {} B lines, {:?}) does not match \
                 the machine's I-cache ({} sets x {} ways x {} B lines, {:?})",
                analysis.params.sets,
                analysis.params.ways,
                analysis.params.line_bytes,
                analysis.params.policy,
                icache.sets(),
                icache.ways,
                icache.line_bytes,
                icache.replacement,
            ),
        ));
    }

    // CA003: every edge of the rebuilt CFG must be in the analyzed CFG.
    if rebuilt.cfg.len() != analysis.cfg.len() {
        diags.push(Diagnostic::error(
            "CA003",
            format!(
                "analyzed CFG has {} nodes but the program has {}",
                analysis.cfg.len(),
                rebuilt.cfg.len()
            ),
        ));
    } else {
        for (from, succs) in rebuilt.cfg.succs.iter().enumerate() {
            for &to in succs {
                if !analysis.cfg.has_edge(from, to) {
                    diags.push(anchor(
                        Diagnostic::error(
                            "CA003",
                            format!(
                                "CFG edge {from} -> {to} of the program is missing from \
                                 the analyzed graph: the fixpoint ignored a path"
                            ),
                        ),
                        from,
                    ));
                }
            }
        }
    }

    // CA001: an always-hit claim needs the domains' backing — the line in
    // the node's must state (and a fortiori its may state).
    for (node, &class) in analysis.node_class.iter().enumerate() {
        if class == FetchClass::AlwaysHit
            && !(analysis.node_line_in_must[node] && analysis.node_line_in_may[node])
        {
            diags.push(anchor(
                Diagnostic::error(
                    "CA001",
                    format!(
                        "fetch at node {node} is classified always-hit but the abstract \
                         states do not guarantee its line is cached (unsound hit claim)"
                    ),
                ),
                node,
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_isa::{Cond, Instr, Operand2, Reg};

    fn params(sets: u32, ways: u32, line_bytes: u32, policy: Replacement) -> AbstractCacheParams {
        AbstractCacheParams {
            sets,
            ways,
            line_bytes,
            policy,
        }
    }

    fn straight(n: usize) -> Program {
        let mut text: Vec<Instr> = (0..n.saturating_sub(1))
            .map(|_| Instr::mov(Reg::R0, Operand2::imm(1).unwrap()))
            .collect();
        text.push(Instr::Swi {
            cond: Cond::Al,
            imm: 0,
        });
        Program {
            text,
            ..Program::default()
        }
    }

    /// A straight-line program that fits the cache: the first access of
    /// each line misses (cold), every other access hits.
    #[test]
    fn straight_line_small_program_is_cold_miss_then_hits() {
        // 16 instructions = 64 bytes = 2 lines of 32 B; 4 sets, 2 ways LRU.
        let p = straight(16);
        let a = analyze_native_cache(&p, params(4, 2, 32, Replacement::Lru));
        for (i, &class) in a.node_class.iter().enumerate() {
            let first_of_line = (TEXT_BASE + 4 * i as u32).is_multiple_of(32);
            if first_of_line {
                assert_eq!(class, FetchClass::AlwaysMiss, "node {i}");
            } else {
                assert_eq!(class, FetchClass::AlwaysHit, "node {i}");
            }
        }
        // Every set holds at most its ways of text lines here: persistent.
        assert!(a.persistent_set.iter().all(|&p| p));
    }

    /// A loop whose body fits the cache: first iteration may miss, later
    /// iterations hit — lines are persistent, loop-head fetches are not
    /// always-miss (they re-execute) and not always-hit (cold start).
    #[test]
    fn looping_program_is_persistent_when_it_fits() {
        // 0..6: body; 6: conditional branch back to 0; 7: swi 0.
        let mut text: Vec<Instr> = (0..6)
            .map(|_| Instr::mov(Reg::R0, Operand2::imm(1).unwrap()))
            .collect();
        text.push(Instr::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -8, // 6 + 2 - 8 = 0
        });
        text.push(Instr::Swi {
            cond: Cond::Al,
            imm: 0,
        });
        let p = Program {
            text,
            ..Program::default()
        };
        let a = analyze_native_cache(&p, params(4, 2, 32, Replacement::Lru));
        // 8 instructions = 1 line. The loop head's line is loaded on the
        // back edge path, so it is not always-miss; cold entry means not
        // always-hit; one line in the set means persistent.
        assert_eq!(a.node_class[0], FetchClass::Persistent);
        // Mid-line nodes always hit: the line was fetched at node 0 on
        // every path and nothing evicts it.
        assert_eq!(a.node_class[3], FetchClass::AlwaysHit);
    }

    /// A program larger than the cache cannot promise persistence for the
    /// conflicting sets.
    #[test]
    fn conflicting_lines_demote_to_unknown() {
        // 64 instructions = 256 B over a tiny 2-set 1-way 32 B cache: 8
        // lines onto 2 sets.
        let mut text: Vec<Instr> = (0..62)
            .map(|_| Instr::mov(Reg::R0, Operand2::imm(1).unwrap()))
            .collect();
        text.push(Instr::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -64, // 62 + 2 - 64 = 0: loop the whole text
        });
        text.push(Instr::Swi {
            cond: Cond::Al,
            imm: 0,
        });
        let p = Program {
            text,
            ..Program::default()
        };
        let a = analyze_native_cache(&p, params(2, 1, 32, Replacement::Lru));
        assert!(a.persistent_set.iter().all(|&p| !p));
        assert_eq!(a.node_class[0], FetchClass::Unknown);
        // Within a line, the immediately preceding fetch loaded it and
        // direct-mapped LRU cannot evict it in between: still always-hit.
        assert_eq!(a.node_class[1], FetchClass::AlwaysHit);
    }

    /// Pseudo-random replacement keeps within-line hits but drops LRU
    /// cross-line reasoning on possible misses.
    #[test]
    fn pseudo_random_clears_set_on_possible_miss() {
        let p = straight(16);
        let a = analyze_native_cache(&p, params(1, 2, 32, Replacement::PseudoRandom));
        // Two lines, one set, 2 ways: under LRU both fit (all later
        // accesses hit). Under random-must, the second line's cold miss
        // clears the first line's guarantee, but within-line hits hold.
        assert_eq!(a.node_class[0], FetchClass::AlwaysMiss);
        assert_eq!(a.node_class[1], FetchClass::AlwaysHit);
        assert_eq!(a.node_class[8], FetchClass::AlwaysMiss, "second line cold");
        assert_eq!(a.node_class[9], FetchClass::AlwaysHit);
    }

    #[test]
    fn audit_is_clean_on_sound_analysis() {
        let p = straight(16);
        let prm = params(4, 2, 32, Replacement::Lru);
        let a = analyze_native_cache(&p, prm);
        let cfg = CacheConfig {
            name: "t".to_string(),
            size_bytes: 4 * 2 * 32,
            ways: 2,
            line_bytes: 32,
            replacement: Replacement::Lru,
        };
        assert!(audit(&a, &native_cfg(&p), &cfg).is_empty());
    }

    #[test]
    fn block_envelopes_follow_word_classes() {
        let p = straight(16);
        let a = analyze_native_cache(&p, params(4, 2, 32, Replacement::Lru));
        let bounds = AccessEnergyBounds {
            hit_min_j: 1.0,
            hit_max_j: 2.0,
            miss_min_j: 10.0,
            miss_max_j: 20.0,
        };
        let envs = a.block_envelopes(&bounds);
        assert_eq!(envs.len(), a.blocks.len());
        // One straight-line block of 16 words: 2 always-miss (cold line
        // fronts), 14 always-hit. Lower bound skips the first word.
        let (lo, hi) = envs[0];
        assert!((lo - (10.0 + 14.0 * 1.0)).abs() < 1e-12, "lo {lo}");
        assert!((hi - (2.0 * 20.0 + 14.0 * 2.0)).abs() < 1e-12, "hi {hi}");
    }
}
