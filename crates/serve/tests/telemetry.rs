//! Telemetry-plane integration: tracing must observe without perturbing.
//!
//! The differential contract: a daemon with tracing on and a daemon with
//! tracing off serve byte-identical POST bodies — the span plane only
//! ever adds headers and side channels. On top of that, the flight
//! recorder's slowest exemplars must carry engine-side phases nested
//! under `execute`, the Prometheus rendering must parse, and the access
//! log's emit/drop counters must be visible in `/metrics`.

#![allow(clippy::unwrap_used)]

use fits_obs::json::{parse, Value};
use fits_serve::client;
use fits_serve::server::{spawn, ServerConfig, ServerHandle};
use fits_serve::{validate_flight_json, validate_prometheus, validate_serve_json};

fn boot(tracing: bool, access_log: Option<std::path::PathBuf>) -> ServerHandle {
    spawn(&ServerConfig {
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 16,
        tracing,
        access_log,
        ..ServerConfig::default()
    })
    .expect("bind")
}

#[test]
fn tracing_on_and_off_serve_byte_identical_bodies() {
    let traced = boot(true, None);
    let untraced = boot(false, None);
    for (target, body) in [
        ("/synthesize", "{\"kernel\": \"crc32\"}"),
        ("/simulate", "{\"kernel\": \"fft\"}"),
        ("/analyze", "{\"kernel\": \"crc32\", \"static_only\": true}"),
        ("/synthesize", "{\"kernel\": \"no-such-kernel\"}"),
    ] {
        let (status_a, body_a) = client::post(traced.addr, target, body).expect("traced");
        let (status_b, body_b) = client::post(untraced.addr, target, body).expect("untraced");
        assert_eq!(status_a, status_b, "{target} {body}");
        assert_eq!(
            body_a, body_b,
            "{target} {body}: tracing must not alter response bodies"
        );
    }
    // Both daemons echo trace ids regardless of the tracing switch...
    let with = client::request_raw(untraced.addr, "GET", "/healthz", "").unwrap();
    assert!(with.header("x-fits-trace").is_some());
    // ...but only the traced one accumulates span trees.
    let (_, flight_off) = client::get(untraced.addr, "/debug/flight").unwrap();
    let doc = parse(&flight_off).unwrap();
    if let Some(Value::Arr(slowest)) = doc.get("slowest") {
        for summary in slowest {
            if let Some(Value::Arr(spans)) = summary.get("spans") {
                assert!(spans.is_empty(), "tracing off must not record spans");
            }
        }
    }
    traced.stop();
    untraced.stop();
}

#[test]
fn flight_recorder_nests_engine_phases_under_execute() {
    let handle = boot(true, None);
    let addr = handle.addr;
    // A cold /synthesize forces a real pipeline run (profile, synthesis,
    // verification) under this request's `execute` span.
    let (status, _) = client::post(addr, "/synthesize", "{\"kernel\": \"sha\"}").unwrap();
    assert_eq!(status, 200);
    let (status, flight) = client::get(addr, "/debug/flight").unwrap();
    assert_eq!(status, 200);
    assert!(validate_flight_json(&flight).unwrap() > 0, "has exemplars");
    let doc = parse(&flight).unwrap();
    let Some(Value::Arr(slowest)) = doc.get("slowest") else {
        panic!("flight dump lacks slowest[]");
    };
    let synth = slowest
        .iter()
        .find(|s| s.get("endpoint").and_then(Value::as_str) == Some("synthesize"))
        .expect("synthesize exemplar recorded");
    let Some(Value::Arr(spans)) = synth.get("spans") else {
        panic!("exemplar lacks spans");
    };
    let execute = spans
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some("execute"))
        .expect("execute span present");
    let Some(Value::Arr(children)) = execute.get("children") else {
        panic!("execute span lacks children");
    };
    let child_names: Vec<&str> = children
        .iter()
        .filter_map(|c| c.get("name").and_then(Value::as_str))
        .collect();
    assert!(
        child_names.contains(&"profile") && child_names.contains(&"synthesize"),
        "engine phases must nest under execute, got {child_names:?}"
    );
    // Request-plane phases sit beside execute at the top level.
    let top_names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Value::as_str))
        .collect();
    for phase in ["queue-wait", "parse", "cache-lookup", "serialize"] {
        assert!(
            top_names.contains(&phase),
            "missing {phase} in {top_names:?}"
        );
    }
    handle.stop();
}

#[test]
fn prometheus_rendering_parses_and_metrics_expose_log_counters() {
    let log_path = std::env::temp_dir().join(format!(
        "fits-telemetry-access-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log_path);
    let handle = boot(true, Some(log_path.clone()));
    let addr = handle.addr;
    let (status, _) = client::post(addr, "/synthesize", "{\"kernel\": \"crc32\"}").unwrap();
    assert_eq!(status, 200);

    let (status, text) = client::get(addr, "/metrics?format=text").unwrap();
    assert_eq!(status, 200);
    let samples = validate_prometheus(&text).expect("valid exposition");
    assert!(samples > 20, "expected a full exposition, got {samples}");
    assert!(text.contains("fitsd_request_latency_microseconds_bucket{le=\"+Inf\"}"));
    assert!(text.contains("fitsd_access_log_dropped_total 0"));

    let (status, json) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert_eq!(validate_serve_json(&json).unwrap(), "metrics");
    let doc = parse(&json).unwrap();
    let log = doc.get("log").expect("log object");
    let emitted = log.get("emitted").and_then(Value::as_f64).unwrap();
    assert!(
        emitted >= 1.0,
        "emitted lines visible in /metrics: {emitted}"
    );
    assert_eq!(log.get("dropped").and_then(Value::as_f64), Some(0.0));

    handle.stop();
    let log_text = std::fs::read_to_string(&log_path).expect("access log written");
    let stats = fits_obs::validate_access_jsonl(&log_text).expect("log schema");
    assert!(stats.requests >= 3);
    let _ = std::fs::remove_file(&log_path);
}
