//! Loopback integration: a real `fitsd` instance under a 32-client
//! thundering herd.
//!
//! Every client must succeed, every response must be byte-identical to a
//! direct library call with a fresh artifact cache (the purity contract
//! the cache and coalescer rest on), and the herd must actually exercise
//! both sharing layers (coalesced joins and cache hits observed).
//!
//! The same run audits the telemetry plane: the service counters must
//! reconcile exactly (`requests == ok + 4xx + 5xx`, and every POST is
//! exactly one of execute/coalesce/hit), and every `X-Fits-Trace` the
//! clients saw must appear exactly once in the JSONL access log.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;
use std::sync::Arc;

use fits_bench::ArtifactsPool;
use fits_kernels::kernels::Kernel;
use fits_serve::client;
use fits_serve::server::{spawn, ServerConfig};
use fits_serve::{validate_serve_json, PostRequest};

const CLIENTS: usize = 32;

fn jobs() -> Vec<(&'static str, String)> {
    let k0 = Kernel::ALL[0].name();
    let k1 = Kernel::ALL[1].name();
    // A user-supplied machine description (the shipped AR32 text with a
    // respelled comment): same semantics, distinct content hash, so it
    // must get its own cache slot while producing identical numbers.
    let respelled = fits_isa::spec::AR32_SPEC_TEXT.replace(
        "# --- branches and traps ---",
        "# --- branches and traps (respelled) ---",
    );
    vec![
        ("/synthesize", format!("{{\"kernel\": \"{k0}\"}}")),
        ("/synthesize", format!("{{\"kernel\": \"{k1}\"}}")),
        ("/simulate", format!("{{\"kernel\": \"{k0}\"}}")),
        (
            "/simulate",
            format!("{{\"kernel\": \"{k1}\", \"scenario\": \"small-embedded\"}}"),
        ),
        (
            "/analyze",
            format!("{{\"kernel\": \"{k0}\", \"static_only\": true}}"),
        ),
        (
            "/synthesize",
            format!(
                "{{\"kernel\": \"{k0}\", \"isa\": \"{}\"}}",
                fits_obs::json::escape(&respelled)
            ),
        ),
        // A shared-ISA synthesis over both kernels: the multi pipeline
        // must coalesce and cache exactly like the single-kernel ones.
        (
            "/synthesize-multi",
            format!("{{\"kernels\": [\"{k0}\", \"{k1}\"]}}"),
        ),
    ]
}

/// What a direct (serverless) evaluation of each job returns.
fn direct_bodies(jobs: &[(&'static str, String)]) -> Vec<String> {
    let pool = ArtifactsPool::new();
    jobs.iter()
        .map(|(target, body)| {
            let request = PostRequest::from_target(target, body)
                .expect("job parses")
                .expect("job target is known");
            let artifacts = pool.for_config(request.synth(), request.isa());
            request.compute(&artifacts).expect("direct compute")
        })
        .collect()
}

#[test]
fn thundering_herd_is_coalesced_cached_and_bit_identical() {
    let log_path =
        std::env::temp_dir().join(format!("fits-loopback-access-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let handle = spawn(&ServerConfig {
        workers: 8,
        queue_capacity: 256,
        cache_capacity: 64,
        access_log: Some(log_path.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr;
    let jobs = Arc::new(jobs());

    // 32 clients, each walking all jobs from a rotated start so identical
    // requests overlap in flight. Each response's trace id rides along.
    let results: Vec<Vec<(usize, u16, String, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let jobs = Arc::clone(&jobs);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..jobs.len() {
                        let idx = (c + i) % jobs.len();
                        let (target, body) = &jobs[idx];
                        let response = client::request_raw(addr, "POST", target, body)
                            .expect("request succeeds");
                        let trace = response
                            .header("x-fits-trace")
                            .expect("every response carries a trace id")
                            .to_string();
                        out.push((idx, response.status, response.body, trace));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Zero errors, schema-valid, and byte-identical to the direct library
    // evaluation of the same request.
    let direct = direct_bodies(&jobs);
    let mut checked = 0usize;
    let mut traces: Vec<&str> = Vec::new();
    for per_client in &results {
        for (idx, status, text, trace) in per_client {
            assert_eq!(*status, 200, "job {idx} failed: {text}");
            let endpoint = validate_serve_json(text).expect("response schema");
            assert_eq!(format!("/{endpoint}"), jobs[*idx].0);
            assert_eq!(
                text, &direct[*idx],
                "served body for job {idx} differs from the direct library call"
            );
            traces.push(trace);
            checked += 1;
        }
    }
    assert_eq!(checked, CLIENTS * jobs.len());

    // Both sharing layers were exercised: at most one execution per
    // distinct job, the rest split between coalescing and the cache.
    let metrics = &handle.state().metrics;
    let executions = metrics.executions.get();
    let hits = metrics.cache_hits.get();
    let joins = metrics.coalesced_joins.get();
    assert_eq!(
        executions,
        jobs.len() as u64,
        "one execution per distinct job"
    );
    assert!(hits > 0, "expected cache hits, got {hits}");
    assert!(joins > 0, "expected coalesced joins, got {joins}");
    assert_eq!(
        executions + hits + joins,
        (CLIENTS * jobs.len()) as u64,
        "every request is exactly one of execute/coalesce/hit"
    );

    // The counters reconcile exactly: every routed request is exactly one
    // of 2xx/4xx/5xx, and every POST exactly one of execute/coalesce/hit.
    assert_eq!(
        metrics.requests.get(),
        metrics.ok.get() + metrics.client_errors.get() + metrics.server_errors.get(),
        "requests must equal ok + 4xx + 5xx"
    );
    assert_eq!(metrics.client_errors.get(), 0);
    assert_eq!(metrics.server_errors.get(), 0);

    // The wire metrics agree with the in-process counters.
    let (status, body) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert_eq!(validate_serve_json(&body).unwrap(), "metrics");
    assert!(body.contains(&format!("\"executions\": {executions}")));

    // Stopping flushes the access log; every trace id the clients saw must
    // appear in it exactly once, and the log must schema-validate.
    let handle_commit = handle.state().commit.clone();
    handle.stop();
    let log_text = std::fs::read_to_string(&log_path).expect("access log exists");
    let stats = fits_obs::validate_access_jsonl(&log_text).expect("access log schema");
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for trace in &stats.traces {
        *seen.entry(trace.as_str()).or_default() += 1;
    }
    for trace in &traces {
        assert_eq!(
            seen.get(trace).copied(),
            Some(1),
            "trace {trace} must appear exactly once in the access log"
        );
    }
    // The POSTs plus the one /metrics GET above are the only requests.
    assert_eq!(stats.requests, (CLIENTS * jobs.len() + 1) as u64);
    assert_eq!(stats.commit, handle_commit);
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn validation_failures_are_structured_400s_end_to_end() {
    let handle = spawn(&ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr;
    for (target, body, pointer) in [
        ("/synthesize", "{}", "/kernel"),
        (
            "/synthesize",
            "{\"kernel\": \"crc32\", \"scale\": -3}",
            "/scale",
        ),
        (
            "/simulate",
            "{\"kernel\": \"crc32\", \"scenario\": \"huge\"}",
            "/scenario",
        ),
        (
            "/sweep",
            "{\"kernels\": [\"crc32\"], \"tech\": [\"1nm\"]}",
            "/tech/0",
        ),
        (
            "/synthesize",
            "{\"kernel\": \"crc32\", \"synth\": {\"space_budget\": 7}}",
            "/synth/space_budget",
        ),
        (
            "/analyze",
            "{\"kernel\": \"crc32\", \"static_only\": \"yes\"}",
            "/static_only",
        ),
        (
            "/synthesize-multi",
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [0, 0]}",
            "/weights",
        ),
        (
            "/synthesize-multi",
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [1, -2]}",
            "/weights",
        ),
    ] {
        let (status, text) = client::post(addr, target, body).expect("request");
        assert_eq!(status, 400, "{target} {body}: {text}");
        assert_eq!(validate_serve_json(&text).unwrap(), "error");
        assert!(
            text.contains(&format!("\"pointer\": \"{pointer}\"")),
            "{target} {body}: wrong pointer in {text}"
        );
    }
    // Validation failures never reach the pipeline.
    assert_eq!(handle.state().metrics.executions.get(), 0);
    handle.stop();
}

#[test]
fn proportional_multi_weights_share_one_cache_slot() {
    let handle = spawn(&ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr;
    // Four spellings of the same merged profile: reordered members,
    // scaled integer weights, fractional weights, and a padded request
    // whose extra member carries weight zero. One execution serves all.
    let spellings = [
        "{\"kernels\": [\"bitcount\", \"crc32\"]}".to_string(),
        "{\"kernels\": [\"crc32\", \"bitcount\"], \"weights\": [3, 3]}".to_string(),
        "{\"kernels\": [\"bitcount\", \"crc32\"], \"weights\": [0.5, 0.5]}".to_string(),
        "{\"kernels\": [\"bitcount\", \"sha\", \"crc32\"], \"weights\": [2, 0, 2]}".to_string(),
    ];
    let mut bodies = Vec::new();
    for body in &spellings {
        let (status, text) = client::post(addr, "/synthesize-multi", body).expect("request");
        assert_eq!(status, 200, "{body}: {text}");
        assert_eq!(validate_serve_json(&text).unwrap(), "synthesize-multi");
        bodies.push(text);
    }
    for text in &bodies[1..] {
        assert_eq!(
            text, &bodies[0],
            "proportional weight spellings must serve identical bytes"
        );
    }
    let metrics = &handle.state().metrics;
    assert_eq!(
        metrics.executions.get(),
        1,
        "all spellings canonicalize onto one execution"
    );
    assert_eq!(
        metrics.cache_hits.get(),
        (spellings.len() - 1) as u64,
        "every respelling after the first is a cache hit"
    );
    handle.stop();
}
