//! Loopback integration: a real `fitsd` instance under a 32-client
//! thundering herd.
//!
//! Every client must succeed, every response must be byte-identical to a
//! direct library call with a fresh artifact cache (the purity contract
//! the cache and coalescer rest on), and the herd must actually exercise
//! both sharing layers (coalesced joins and cache hits observed).

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use fits_bench::ArtifactsPool;
use fits_kernels::kernels::Kernel;
use fits_serve::client;
use fits_serve::server::{spawn, ServerConfig};
use fits_serve::{validate_serve_json, PostRequest};

const CLIENTS: usize = 32;

fn jobs() -> Vec<(&'static str, String)> {
    let k0 = Kernel::ALL[0].name();
    let k1 = Kernel::ALL[1].name();
    vec![
        ("/synthesize", format!("{{\"kernel\": \"{k0}\"}}")),
        ("/synthesize", format!("{{\"kernel\": \"{k1}\"}}")),
        ("/simulate", format!("{{\"kernel\": \"{k0}\"}}")),
        (
            "/simulate",
            format!("{{\"kernel\": \"{k1}\", \"scenario\": \"small-embedded\"}}"),
        ),
        (
            "/analyze",
            format!("{{\"kernel\": \"{k0}\", \"static_only\": true}}"),
        ),
    ]
}

/// What a direct (serverless) evaluation of each job returns.
fn direct_bodies(jobs: &[(&'static str, String)]) -> Vec<String> {
    let pool = ArtifactsPool::new();
    jobs.iter()
        .map(|(target, body)| {
            let request = PostRequest::from_target(target, body)
                .expect("job parses")
                .expect("job target is known");
            let artifacts = pool.for_synth(request.synth());
            request.compute(&artifacts).expect("direct compute")
        })
        .collect()
}

#[test]
fn thundering_herd_is_coalesced_cached_and_bit_identical() {
    let handle = spawn(&ServerConfig {
        workers: 8,
        queue_capacity: 256,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr;
    let jobs = Arc::new(jobs());

    // 32 clients, each walking all jobs from a rotated start so identical
    // requests overlap in flight.
    let results: Vec<Vec<(usize, u16, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let jobs = Arc::clone(&jobs);
                s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..jobs.len() {
                        let idx = (c + i) % jobs.len();
                        let (target, body) = &jobs[idx];
                        let (status, text) =
                            client::post(addr, target, body).expect("request succeeds");
                        out.push((idx, status, text));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Zero errors, schema-valid, and byte-identical to the direct library
    // evaluation of the same request.
    let direct = direct_bodies(&jobs);
    let mut checked = 0usize;
    for per_client in &results {
        for (idx, status, text) in per_client {
            assert_eq!(*status, 200, "job {idx} failed: {text}");
            let endpoint = validate_serve_json(text).expect("response schema");
            assert_eq!(format!("/{endpoint}"), jobs[*idx].0);
            assert_eq!(
                text, &direct[*idx],
                "served body for job {idx} differs from the direct library call"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, CLIENTS * jobs.len());

    // Both sharing layers were exercised: at most one execution per
    // distinct job, the rest split between coalescing and the cache.
    let metrics = &handle.state().metrics;
    let executions = metrics.executions.get();
    let hits = metrics.cache_hits.get();
    let joins = metrics.coalesced_joins.get();
    assert_eq!(
        executions,
        jobs.len() as u64,
        "one execution per distinct job"
    );
    assert!(hits > 0, "expected cache hits, got {hits}");
    assert!(joins > 0, "expected coalesced joins, got {joins}");
    assert_eq!(
        executions + hits + joins,
        (CLIENTS * jobs.len()) as u64,
        "every request is exactly one of execute/coalesce/hit"
    );

    // The wire metrics agree with the in-process counters.
    let (status, body) = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(status, 200);
    assert_eq!(validate_serve_json(&body).unwrap(), "metrics");
    assert!(body.contains(&format!("\"executions\": {executions}")));

    handle.stop();
}

#[test]
fn validation_failures_are_structured_400s_end_to_end() {
    let handle = spawn(&ServerConfig {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 4,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = handle.addr;
    for (target, body, pointer) in [
        ("/synthesize", "{}", "/kernel"),
        (
            "/synthesize",
            "{\"kernel\": \"crc32\", \"scale\": -3}",
            "/scale",
        ),
        (
            "/simulate",
            "{\"kernel\": \"crc32\", \"scenario\": \"huge\"}",
            "/scenario",
        ),
        (
            "/sweep",
            "{\"kernels\": [\"crc32\"], \"tech\": [\"1nm\"]}",
            "/tech/0",
        ),
        (
            "/synthesize",
            "{\"kernel\": \"crc32\", \"synth\": {\"space_budget\": 7}}",
            "/synth/space_budget",
        ),
        (
            "/analyze",
            "{\"kernel\": \"crc32\", \"static_only\": \"yes\"}",
            "/static_only",
        ),
    ] {
        let (status, text) = client::post(addr, target, body).expect("request");
        assert_eq!(status, 400, "{target} {body}: {text}");
        assert_eq!(validate_serve_json(&text).unwrap(), "error");
        assert!(
            text.contains(&format!("\"pointer\": \"{pointer}\"")),
            "{target} {body}: wrong pointer in {text}"
        );
    }
    // Validation failures never reach the pipeline.
    assert_eq!(handle.state().metrics.executions.get(), 0);
    handle.stop();
}
