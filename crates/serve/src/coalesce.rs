//! Request coalescing: concurrent identical requests share one execution.
//!
//! The expensive endpoints are pure functions of their canonical request
//! string, so when N identical requests are in flight at once only the
//! first (the *leader*) should run the pipeline; the other N-1
//! (*followers*) block on the leader's slot and wake with the shared
//! result. This is what turns a thundering herd of `fitsctl bench`
//! clients into one `Artifacts` computation.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The outcome a leader publishes: the response status and body shared
/// with every follower (and, for successes, the result cache).
pub type Shared = Arc<(u16, Arc<String>)>;

#[derive(Debug, Default)]
struct Slot {
    done: Mutex<Option<Shared>>,
    cv: Condvar,
}

impl Slot {
    fn wait(&self) -> Shared {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(result) = done.as_ref() {
                return Arc::clone(result);
            }
            done = self
                .cv
                .wait(done)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn fill(&self, result: Shared) {
        let mut done = self
            .done
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *done = Some(result);
        self.cv.notify_all();
    }
}

/// What [`Coalescer::claim`] decided for this request.
pub enum Claim {
    /// This request runs the computation; it MUST call
    /// [`Coalescer::complete`] with the same canonical key, even on
    /// failure, or followers block until their socket timeout.
    Leader,
    /// An identical request is already running; the contained result is
    /// its (awaited) outcome.
    Follower(Shared),
}

/// The in-flight request table.
#[derive(Debug, Default)]
pub struct Coalescer {
    inflight: Mutex<HashMap<String, Arc<Slot>>>,
}

impl Coalescer {
    /// An empty table.
    #[must_use]
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Slot>>> {
        self.inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims `canonical`: the first claimant becomes the leader, later
    /// claimants block until the leader completes and receive its result.
    #[must_use]
    pub fn claim(&self, canonical: &str) -> Claim {
        let slot = {
            let mut inflight = self.lock();
            match inflight.get(canonical) {
                Some(slot) => Some(Arc::clone(slot)),
                None => {
                    inflight.insert(canonical.to_string(), Arc::new(Slot::default()));
                    None
                }
            }
        };
        match slot {
            // Waiting happens outside the table lock, so unrelated
            // requests keep claiming while followers sleep.
            Some(slot) => Claim::Follower(slot.wait()),
            None => Claim::Leader,
        }
    }

    /// Publishes the leader's result and retires the in-flight entry. New
    /// claims for the same canonical string after this point start a fresh
    /// computation (or, for successes, hit the result cache first).
    pub fn complete(&self, canonical: &str, result: Shared) {
        let slot = self.lock().remove(canonical);
        if let Some(slot) = slot {
            slot.fill(result);
        }
    }

    /// Number of requests currently in flight.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn one_leader_many_followers_share_one_result() {
        let co = Arc::new(Coalescer::new());
        let executions = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let co = Arc::clone(&co);
            let executions = Arc::clone(&executions);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                match co.claim("k") {
                    Claim::Leader => {
                        // Give followers a moment to pile onto the slot.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        executions.fetch_add(1, Ordering::SeqCst);
                        let result: Shared = Arc::new((200, Arc::new("body".to_string())));
                        co.complete("k", Arc::clone(&result));
                        result
                    }
                    Claim::Follower(shared) => shared,
                }
            }));
        }
        let results: Vec<Shared> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one leader");
        for r in &results {
            assert_eq!(r.0, 200);
            assert_eq!(*r.1, "body");
        }
        assert_eq!(co.inflight(), 0, "slot retired after completion");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let co = Coalescer::new();
        assert!(matches!(co.claim("a"), Claim::Leader));
        assert!(matches!(co.claim("b"), Claim::Leader));
        co.complete("a", Arc::new((200, Arc::new(String::new()))));
        co.complete("b", Arc::new((200, Arc::new(String::new()))));
        // After completion a new claim leads again.
        assert!(matches!(co.claim("a"), Claim::Leader));
        co.complete("a", Arc::new((200, Arc::new(String::new()))));
    }
}
