//! The `fitsd` server: accept loop, bounded worker pool, the
//! cache → coalesce → compute request pipeline, and the telemetry plane
//! threaded through all of it.
//!
//! ```text
//! accept ──try_push──▶ JobQueue ──pop──▶ worker ──▶ route
//!    │ Full                                           │ POST
//!    ▼                                                ▼
//!  503 + Retry-After              cache hit? ── yes ─▶ respond (X-Cache: hit)
//!                                      │ no
//!                                 claim canonical
//!                                 ├─ Follower ───────▶ respond (X-Cache: coalesced)
//!                                 └─ Leader ─ compute ▶ cache.put + complete
//! ```
//!
//! Every request gets a trace id (echoed as `X-Fits-Trace`) and, with
//! tracing on, a per-request span tree covering queue-wait / parse /
//! cache-lookup / coalesce-wait / execute / serialize / write. Engine
//! phases (profile, synthesis, replay pricing) land *inside* the
//! `execute` span through the [`fits_obs::ScopedObserver`] installed for
//! the duration of the compute call. Completed requests feed three sinks:
//! the metrics plane (lifetime + windowed), the JSONL access log (bounded
//! channel, never blocks the request path), and the in-memory flight
//! recorder behind `GET /debug/flight`.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use fits_bench::ArtifactsPool;
use fits_core::TeeObserver;
use fits_obs::event::{event_line, Level};
use fits_obs::{
    AccessRecord, EventLog, FlightRecorder, RequestSummary, ScopedObserver, ScopedSpans,
    SpanRegistry,
};

use crate::api::{self, ApiError, PostRequest};
use crate::cache::{content_address, fnv64, ResultCache};
use crate::coalesce::{Claim, Coalescer};
use crate::http::{read_request, write_response, Response};
use crate::metrics::{MetricsContext, ServeMetrics};
use crate::queue::{JobQueue, PushError};

/// Tunables for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job-queue capacity; pushes beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Result-cache capacity in responses (0 disables caching).
    pub cache_capacity: usize,
    /// Per-request span tracing. Trace ids are always issued; this gates
    /// span collection (and therefore flight-recorder span trees and
    /// access-log phase entries). Response *bodies* are byte-identical
    /// either way — tracing only ever adds headers and side channels.
    pub tracing: bool,
    /// JSONL access-log path (`None` disables the log entirely).
    pub access_log: Option<PathBuf>,
    /// Access-log channel capacity (lines in flight to the writer
    /// thread); overflow is dropped and counted, never waited on.
    pub log_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: 128,
            cache_capacity: 256,
            tracing: true,
            access_log: None,
            log_capacity: 1024,
        }
    }
}

/// Everything the worker and accept threads share.
pub struct ServerState {
    /// Artifact caches, one per synthesis-option set. Carries a scoped
    /// observer so engine stages report into the in-flight request's
    /// span tree (plus the lifetime span registry).
    pub pool: ArtifactsPool,
    /// Finished-response cache.
    pub cache: ResultCache,
    /// In-flight request table.
    pub coalescer: Coalescer,
    /// The backpressure queue of accepted connections, stamped with their
    /// accept time so queue-wait is measurable.
    pub queue: JobQueue<(TcpStream, Instant)>,
    /// Service counters, latency (lifetime + windowed) and gauges.
    pub metrics: ServeMetrics,
    /// Recent-request ring + slowest-N exemplars (`GET /debug/flight`).
    pub flight: FlightRecorder,
    /// The JSONL access/event log (disabled unless configured).
    pub log: EventLog,
    /// Worker-thread count (reported in `/metrics`).
    pub workers: usize,
    /// Whether per-request span tracing is on.
    pub tracing: bool,
    /// The build's git commit (stamped into healthz and the log meta).
    pub commit: String,
    started: Instant,
    trace_nonce: u64,
    trace_seq: AtomicU64,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(config: &ServerConfig) -> ServerState {
        let metrics = ServeMetrics::new();
        // Engine stages tee into two sinks: the thread-scoped per-request
        // registry (nested under that request's `execute` span) and the
        // lifetime registry in /metrics (flat, top-level).
        let observer = TeeObserver::new()
            .with(Arc::new(ScopedObserver))
            .with(Arc::new(metrics.spans.clone()));
        let commit = fits_bench::stamp::git_commit();
        let log = match &config.access_log {
            Some(path) => match EventLog::to_file(path, config.log_capacity, &commit) {
                Ok(log) => log,
                Err(e) => {
                    eprintln!(
                        "fitsd: access log {}: {e}; logging disabled",
                        path.display()
                    );
                    EventLog::disabled()
                }
            },
            None => EventLog::disabled(),
        };
        let nonce_seed = format!(
            "{}:{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_nanos())
        );
        ServerState {
            pool: ArtifactsPool::new().with_flow_observer(Arc::new(observer)),
            cache: ResultCache::new(config.cache_capacity),
            coalescer: Coalescer::new(),
            queue: JobQueue::new(config.queue_capacity),
            metrics,
            flight: FlightRecorder::default(),
            log,
            workers: config.workers,
            tracing: config.tracing,
            commit,
            started: Instant::now(),
            trace_nonce: fnv64(nonce_seed.as_bytes()),
            trace_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// A fresh trace id: a per-process nonce plus a sequence number, so
    /// ids are unique within a run and distinguishable across restarts.
    #[must_use]
    pub fn next_trace(&self) -> String {
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        format!("{:08x}-{seq:06x}", self.trace_nonce as u32)
    }

    /// Seconds since the daemon started.
    #[must_use]
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The gauge values and log counters a metrics render needs.
    #[must_use]
    pub fn metrics_context(&self) -> MetricsContext {
        MetricsContext {
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            workers: self.workers,
            cache_entries: self.cache.len(),
            uptime_s: self.uptime_s(),
            log_emitted: self.log.emitted(),
            log_dropped: self.log.dropped(),
        }
    }
}

/// A running daemon: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    /// The bound socket address (resolved port included).
    pub addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared state (tests inspect counters through this).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops the daemon: closes the queue (pending requests still drain),
    /// unblocks the accept loop, joins every thread, dumps the flight
    /// recorder into the event log, and flushes the log.
    pub fn stop(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        // The accept loop is parked in accept(2); a throwaway connection
        // wakes it so it can observe the shutdown flag.
        drop(TcpStream::connect(self.addr));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(ticker) = self.ticker.take() {
            let _ = ticker.join();
        }
        self.state.log.emit(event_line(
            Level::Info,
            &format!("shutdown flight dump: {}", self.state.flight.render_json()),
        ));
        self.state.log.close();
    }
}

/// Binds and starts a daemon.
///
/// # Errors
///
/// Socket bind failures.
pub fn spawn(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState::new(config));
    state.log.emit(event_line(
        Level::Info,
        &format!("fitsd listening on {addr} ({} workers)", config.workers),
    ));

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("fitsd-worker-{i}"))
                .spawn(move || {
                    while let Some((mut stream, accepted)) = state.queue.pop() {
                        handle_connection(&state, &mut stream, accepted);
                    }
                })
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    // Queue-depth and cache-size gauges are sampled on a ticker (several
    // times per second), not per request, so an idle daemon still has a
    // truthful last-minute view.
    let ticker = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("fitsd-gauges".to_string())
            .spawn(move || {
                while !state.shutdown.load(Ordering::SeqCst) {
                    state.metrics.queue_gauge.sample(state.queue.depth() as u64);
                    state.metrics.cache_gauge.sample(state.cache.len() as u64);
                    std::thread::sleep(std::time::Duration::from_millis(250));
                }
            })?
    };

    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("fitsd-accept".to_string())
            .spawn(move || accept_loop(&listener, &state))?
    };

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        ticker: Some(ticker),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &ServerState) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Err(((mut stream, _), err)) = state.queue.try_push((stream, Instant::now())) {
            match err {
                PushError::Full => shed(state, &mut stream),
                PushError::Closed => return,
            }
        }
    }
}

/// Answers 503 with `Retry-After` directly from the accept thread — the
/// whole point of bounding the queue is that overload costs one small
/// write, not a worker slot. Sheds still get a trace id and a `warn`
/// event-log line, but stay out of the request counters (`rejected` is
/// their ledger).
fn shed(state: &ServerState, stream: &mut TcpStream) {
    state.metrics.rejected.inc();
    let trace = state.next_trace();
    let err = ApiError {
        code: "overloaded",
        pointer: String::new(),
        message: "job queue is full; retry shortly".to_string(),
    };
    let response = Response::json(503, err.body())
        .with_header("Retry-After", "1".to_string())
        .with_header("X-Fits-Trace", trace.clone());
    let _ = stream.set_write_timeout(Some(crate::http::IO_TIMEOUT));
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let _ = write_response(stream, &response);
    state.log.emit(event_line(
        Level::Warn,
        &format!("shed trace={trace}: job queue full"),
    ));
    // Drain the unread request before closing, or the kernel answers the
    // client's pending bytes with RST and it never sees the 503.
    use std::io::Read;
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn handle_connection(state: &ServerState, stream: &mut TcpStream, accepted: Instant) {
    let start = Instant::now();
    let trace = state.next_trace();
    let spans = state.tracing.then(SpanRegistry::new);
    if let Some(reg) = &spans {
        reg.add("queue-wait", start.duration_since(accepted));
    }
    let parse_started = Instant::now();
    let request = match read_request(stream) {
        Ok(request) => request,
        Err(err) => {
            if let Some(reg) = &spans {
                reg.add("parse", parse_started.elapsed());
            }
            // Includes oversized heads/bodies; the error body still follows
            // the response schema so clients can always parse what they get.
            let api_err = ApiError {
                code: "bad_request",
                pointer: String::new(),
                message: err.to_string(),
            };
            let status = match err {
                crate::http::HttpError::BodyTooLarge => 413,
                _ => 400,
            };
            respond(
                state,
                stream,
                &trace,
                "-",
                "http",
                start,
                spans.as_ref(),
                Response::json(status, api_err.body()),
            );
            return;
        }
    };
    if let Some(reg) = &spans {
        reg.add("parse", parse_started.elapsed());
    }

    let endpoint = request.path().trim_start_matches('/').to_string();
    let response = match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => {
            Response::json(200, api::healthz_body(state.uptime_s(), &state.commit))
        }
        ("GET", "/metrics") => {
            let ctx = state.metrics_context();
            if request.query_param("format") == Some("text") {
                Response::text(200, state.metrics.render_prometheus(&ctx))
            } else {
                Response::json(200, state.metrics.render_json(&ctx))
            }
        }
        ("GET", "/debug/flight") => Response::json(200, state.flight.render_json()),
        ("POST", "/synthesize" | "/simulate" | "/analyze" | "/sweep" | "/synthesize-multi") => {
            handle_post(state, request.path(), &request.body, spans.as_ref())
        }
        (
            "GET" | "POST",
            "/healthz" | "/metrics" | "/debug/flight" | "/synthesize" | "/simulate" | "/analyze"
            | "/sweep" | "/synthesize-multi",
        ) => {
            let err = ApiError {
                code: "method_not_allowed",
                pointer: String::new(),
                message: format!("{} not supported on {}", request.method, request.path()),
            };
            Response::json(405, err.body())
        }
        _ => {
            let err = ApiError {
                code: "not_found",
                pointer: String::new(),
                message: format!("no such endpoint {:?}", request.path()),
            };
            Response::json(404, err.body())
        }
    };
    respond(
        state,
        stream,
        &trace,
        &request.method,
        &endpoint,
        start,
        spans.as_ref(),
        response,
    );
}

/// Writes the response (with the trace id echoed), then fans the finished
/// request out to the three telemetry sinks: metrics, access log, flight
/// recorder.
#[allow(clippy::too_many_arguments)]
fn respond(
    state: &ServerState,
    stream: &mut TcpStream,
    trace: &str,
    method: &str,
    endpoint: &str,
    start: Instant,
    spans: Option<&SpanRegistry>,
    response: Response,
) {
    let response = response.with_header("X-Fits-Trace", trace.to_string());
    let status = response.status;
    let write_started = Instant::now();
    let _ = write_response(stream, &response);
    if let Some(reg) = spans {
        reg.add("write", write_started.elapsed());
    }
    let wall = start.elapsed();
    state.metrics.finish(endpoint, status, wall);
    let cache = response
        .headers
        .iter()
        .find(|(name, _)| *name == "X-Cache")
        .map_or("-", |(_, v)| v.as_str());
    let us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
    let phases = spans.map(SpanRegistry::snapshot).unwrap_or_default();
    state.log.emit(
        AccessRecord {
            trace,
            method,
            endpoint,
            status,
            cache,
            us,
            phases: &phases,
        }
        .line(),
    );
    state.flight.record(
        RequestSummary {
            seq: 0,
            trace: trace.to_string(),
            method: method.to_string(),
            endpoint: endpoint.to_string(),
            status,
            cache: cache.to_string(),
            us,
        },
        phases,
    );
}

fn handle_post(
    state: &ServerState,
    target: &str,
    body: &str,
    spans: Option<&SpanRegistry>,
) -> Response {
    let parse_started = Instant::now();
    let parsed = PostRequest::from_target(target, body);
    if let Some(reg) = spans {
        // Merges with the head-read parse span by name.
        reg.add("parse", parse_started.elapsed());
    }
    let request = match parsed {
        Ok(Some(request)) => request,
        Ok(None) => unreachable!("router only passes known POST targets"),
        Err(err) => return Response::json(400, err.body()),
    };
    let canonical = request.canonical();
    let address = content_address(&canonical);

    let lookup_started = Instant::now();
    let cached = state.cache.get(&canonical);
    if let Some(reg) = spans {
        reg.add("cache-lookup", lookup_started.elapsed());
    }
    if let Some(cached) = cached {
        state.metrics.cache_hits.inc();
        return serialize(spans, 200, &cached)
            .with_header("X-Fits-Key", address)
            .with_header("X-Cache", "hit".to_string());
    }

    let claim_started = Instant::now();
    match state.coalescer.claim(&canonical) {
        Claim::Follower(shared) => {
            if let Some(reg) = spans {
                reg.add("coalesce-wait", claim_started.elapsed());
            }
            state.metrics.coalesced_joins.inc();
            serialize(spans, shared.0, &shared.1)
                .with_header("X-Fits-Key", address)
                .with_header("X-Cache", "coalesced".to_string())
        }
        Claim::Leader => {
            state.metrics.executions.inc();
            let artifacts = state.pool.for_config(request.synth(), request.isa());
            // Install the per-request registry as this thread's scoped
            // span sink for the duration of the compute call: engine
            // stages (profile, synthesis, replay pricing) nest under the
            // open `execute` span.
            let result = {
                let _install = spans.map(ScopedSpans::install);
                let exec_guard = spans.map(|reg| reg.enter("execute"));
                let result = request.compute(&artifacts);
                drop(exec_guard);
                result
            };
            let (status, body) = match result {
                Ok(body) => (200, body),
                Err(err) => (500, api::internal_error_body(&err)),
            };
            let shared_body = Arc::new(body);
            if status == 200 {
                state.cache.put(&canonical, Arc::clone(&shared_body));
            }
            // Publish even on failure, or followers hang to their timeout.
            state
                .coalescer
                .complete(&canonical, Arc::new((status, Arc::clone(&shared_body))));
            serialize(spans, status, &shared_body)
                .with_header("X-Fits-Key", address)
                .with_header("X-Cache", "miss".to_string())
        }
    }
}

/// Builds the response from a shared body, timing the copy as the
/// `serialize` phase.
fn serialize(spans: Option<&SpanRegistry>, status: u16, body: &Arc<String>) -> Response {
    let started = Instant::now();
    let response = Response::json(status, (**body).clone());
    if let Some(reg) = spans {
        reg.add("serialize", started.elapsed());
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    #[test]
    fn boots_serves_health_and_stops() {
        let handle = spawn(&ServerConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr;
        let response = client::request_raw(addr, "GET", "/healthz", "").expect("healthz");
        assert_eq!(response.status, 200);
        assert_eq!(api::validate_serve_json(&response.body).unwrap(), "healthz");
        let trace = response
            .header("x-fits-trace")
            .expect("every response carries a trace id")
            .to_string();
        assert!(!trace.is_empty());
        let (status, body) = client::get(addr, "/metrics").expect("metrics");
        assert_eq!(status, 200);
        assert_eq!(api::validate_serve_json(&body).unwrap(), "metrics");
        let (status, text) = client::get(addr, "/metrics?format=text").expect("text metrics");
        assert_eq!(status, 200);
        assert!(crate::metrics::validate_prometheus(&text).unwrap() > 0);
        let (status, flight) = client::get(addr, "/debug/flight").expect("flight");
        assert_eq!(status, 200);
        api::validate_flight_json(&flight).expect("flight dump validates");
        let (status, _) = client::get(addr, "/nope").expect("404");
        assert_eq!(status, 404);
        let (status, _) = client::post(addr, "/healthz", "").expect("405");
        assert_eq!(status, 405);
        let (status, _) = client::post(addr, "/debug/flight", "").expect("405");
        assert_eq!(status, 405);
        // Trace ids are unique per request.
        let second = client::request_raw(addr, "GET", "/healthz", "").expect("healthz again");
        assert_ne!(second.header("x-fits-trace"), Some(trace.as_str()));
        handle.stop();
    }

    #[test]
    fn zero_capacity_queue_sheds_with_retry_after() {
        let handle = spawn(&ServerConfig {
            workers: 1,
            queue_capacity: 0,
            cache_capacity: 8,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr;
        let response = client::request_raw(addr, "GET", "/healthz", "").expect("shed");
        assert_eq!(response.status, 503);
        assert!(
            response
                .headers
                .iter()
                .any(|(n, v)| n == "retry-after" && v == "1"),
            "503 must carry Retry-After: {:?}",
            response.headers
        );
        assert!(
            response.header("x-fits-trace").is_some(),
            "sheds get trace ids too"
        );
        assert_eq!(api::validate_serve_json(&response.body).unwrap(), "error");
        assert_eq!(handle.state().metrics.rejected.get(), 1);
        handle.stop();
    }

    #[test]
    fn structured_400_for_a_bad_body() {
        let handle = spawn(&ServerConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr;
        let (status, body) =
            client::post(addr, "/synthesize", "{\"kernel\": \"zzz\"}").expect("post");
        assert_eq!(status, 400);
        assert_eq!(api::validate_serve_json(&body).unwrap(), "error");
        assert!(body.contains("\"pointer\": \"/kernel\""));
        handle.stop();
    }
}
