//! The `fitsd` server: accept loop, bounded worker pool, and the
//! cache → coalesce → compute request pipeline.
//!
//! ```text
//! accept ──try_push──▶ JobQueue ──pop──▶ worker ──▶ route
//!    │ Full                                           │ POST
//!    ▼                                                ▼
//!  503 + Retry-After              cache hit? ── yes ─▶ respond (X-Cache: hit)
//!                                      │ no
//!                                 claim canonical
//!                                 ├─ Follower ───────▶ respond (X-Cache: coalesced)
//!                                 └─ Leader ─ compute ▶ cache.put + complete
//! ```

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use fits_bench::ArtifactsPool;

use crate::api::{self, ApiError, PostRequest};
use crate::cache::{content_address, ResultCache};
use crate::coalesce::{Claim, Coalescer};
use crate::http::{read_request, write_response, Response};
use crate::metrics::ServeMetrics;
use crate::queue::{JobQueue, PushError};

/// Tunables for one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job-queue capacity; pushes beyond it are shed with 503.
    pub queue_capacity: usize,
    /// Result-cache capacity in responses (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: 128,
            cache_capacity: 256,
        }
    }
}

/// Everything the worker and accept threads share.
pub struct ServerState {
    /// Artifact caches, one per synthesis-option set.
    pub pool: ArtifactsPool,
    /// Finished-response cache.
    pub cache: ResultCache,
    /// In-flight request table.
    pub coalescer: Coalescer,
    /// The backpressure queue of accepted connections.
    pub queue: JobQueue<TcpStream>,
    /// Service counters and latency.
    pub metrics: ServeMetrics,
    /// Worker-thread count (reported in `/metrics`).
    pub workers: usize,
    shutdown: AtomicBool,
}

impl ServerState {
    fn new(config: &ServerConfig) -> ServerState {
        ServerState {
            pool: ArtifactsPool::new(),
            cache: ResultCache::new(config.cache_capacity),
            coalescer: Coalescer::new(),
            queue: JobQueue::new(config.queue_capacity),
            metrics: ServeMetrics::new(),
            workers: config.workers,
            shutdown: AtomicBool::new(false),
        }
    }
}

/// A running daemon: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    /// The bound socket address (resolved port included).
    pub addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The shared state (tests inspect counters through this).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Stops the daemon: closes the queue (pending requests still drain),
    /// unblocks the accept loop, and joins every thread.
    pub fn stop(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        // The accept loop is parked in accept(2); a throwaway connection
        // wakes it so it can observe the shutdown flag.
        drop(TcpStream::connect(self.addr));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds and starts a daemon.
///
/// # Errors
///
/// Socket bind failures.
pub fn spawn(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState::new(config));

    let workers = (0..config.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("fitsd-worker-{i}"))
                .spawn(move || {
                    while let Some(mut stream) = state.queue.pop() {
                        handle_connection(&state, &mut stream);
                    }
                })
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    let accept = {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("fitsd-accept".to_string())
            .spawn(move || accept_loop(&listener, &state))?
    };

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &ServerState) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Err((mut stream, err)) = state.queue.try_push(stream) {
            match err {
                PushError::Full => shed(state, &mut stream),
                PushError::Closed => return,
            }
        }
    }
}

/// Answers 503 with `Retry-After` directly from the accept thread — the
/// whole point of bounding the queue is that overload costs one small
/// write, not a worker slot.
fn shed(state: &ServerState, stream: &mut TcpStream) {
    state.metrics.rejected.inc();
    let body = format!(
        "{{\n  \"schema\": \"{}\",\n  \"endpoint\": \"error\",\n  \"error\": {{\
         \"code\": \"overloaded\", \"pointer\": \"\", \
         \"message\": \"job queue is full; retry shortly\"}}\n}}\n",
        api::SCHEMA,
    );
    let response = Response::json(503, body).with_header("Retry-After", "1".to_string());
    let _ = stream.set_write_timeout(Some(crate::http::IO_TIMEOUT));
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let _ = write_response(stream, &response);
    // Drain the unread request before closing, or the kernel answers the
    // client's pending bytes with RST and it never sees the 503.
    use std::io::Read;
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn handle_connection(state: &ServerState, stream: &mut TcpStream) {
    let start = Instant::now();
    let request = match read_request(stream) {
        Ok(request) => request,
        Err(err) => {
            // Includes oversized heads/bodies; the error body still follows
            // the response schema so clients can always parse what they get.
            let api_err = ApiError {
                code: "bad_request",
                pointer: String::new(),
                message: err.to_string(),
            };
            let status = match err {
                crate::http::HttpError::BodyTooLarge => 413,
                _ => 400,
            };
            respond(
                state,
                stream,
                "http",
                start,
                Response::json(status, api_err.body()),
            );
            return;
        }
    };

    let endpoint = request.target.trim_start_matches('/').to_string();
    let response = match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => Response::json(200, api::healthz_body()),
        ("GET", "/metrics") => Response::json(
            200,
            state.metrics.render_json(
                state.queue.depth(),
                state.queue.capacity(),
                state.workers,
                state.cache.len(),
            ),
        ),
        ("POST", "/synthesize" | "/simulate" | "/analyze" | "/sweep") => {
            handle_post(state, &request.target, &request.body)
        }
        (
            "GET" | "POST",
            "/healthz" | "/metrics" | "/synthesize" | "/simulate" | "/analyze" | "/sweep",
        ) => {
            let err = ApiError {
                code: "method_not_allowed",
                pointer: String::new(),
                message: format!("{} not supported on {}", request.method, request.target),
            };
            Response::json(405, err.body())
        }
        _ => {
            let err = ApiError {
                code: "not_found",
                pointer: String::new(),
                message: format!("no such endpoint {:?}", request.target),
            };
            Response::json(404, err.body())
        }
    };
    respond(state, stream, &endpoint, start, response);
}

fn respond(
    state: &ServerState,
    stream: &mut TcpStream,
    endpoint: &str,
    start: Instant,
    response: Response,
) {
    let status = response.status;
    let _ = write_response(stream, &response);
    state.metrics.finish(endpoint, status, start.elapsed());
}

fn handle_post(state: &ServerState, target: &str, body: &str) -> Response {
    let request = match PostRequest::from_target(target, body) {
        Ok(Some(request)) => request,
        Ok(None) => unreachable!("router only passes known POST targets"),
        Err(err) => return Response::json(400, err.body()),
    };
    let canonical = request.canonical();
    let address = content_address(&canonical);

    if let Some(cached) = state.cache.get(&canonical) {
        state.metrics.cache_hits.inc();
        return Response::json(200, (*cached).clone())
            .with_header("X-Fits-Key", address)
            .with_header("X-Cache", "hit".to_string());
    }

    match state.coalescer.claim(&canonical) {
        Claim::Follower(shared) => {
            state.metrics.coalesced_joins.inc();
            Response::json(shared.0, (*shared.1).clone())
                .with_header("X-Fits-Key", address)
                .with_header("X-Cache", "coalesced".to_string())
        }
        Claim::Leader => {
            state.metrics.executions.inc();
            let artifacts = state.pool.for_synth(request.synth());
            let (status, body) = match request.compute(&artifacts) {
                Ok(body) => (200, body),
                Err(err) => (500, api::internal_error_body(&err)),
            };
            let shared_body = Arc::new(body);
            if status == 200 {
                state.cache.put(&canonical, Arc::clone(&shared_body));
            }
            // Publish even on failure, or followers hang to their timeout.
            state
                .coalescer
                .complete(&canonical, Arc::new((status, Arc::clone(&shared_body))));
            Response::json(status, (*shared_body).clone())
                .with_header("X-Fits-Key", address)
                .with_header("X-Cache", "miss".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;

    #[test]
    fn boots_serves_health_and_stops() {
        let handle = spawn(&ServerConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr;
        let (status, body) = client::get(addr, "/healthz").expect("healthz");
        assert_eq!(status, 200);
        assert_eq!(api::validate_serve_json(&body).unwrap(), "healthz");
        let (status, body) = client::get(addr, "/metrics").expect("metrics");
        assert_eq!(status, 200);
        assert_eq!(api::validate_serve_json(&body).unwrap(), "metrics");
        let (status, _) = client::get(addr, "/nope").expect("404");
        assert_eq!(status, 404);
        let (status, _) = client::post(addr, "/healthz", "").expect("405");
        assert_eq!(status, 405);
        handle.stop();
    }

    #[test]
    fn zero_capacity_queue_sheds_with_retry_after() {
        let handle = spawn(&ServerConfig {
            workers: 1,
            queue_capacity: 0,
            cache_capacity: 8,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr;
        let response = client::request_raw(addr, "GET", "/healthz", "").expect("shed");
        assert_eq!(response.status, 503);
        assert!(
            response
                .headers
                .iter()
                .any(|(n, v)| n == "retry-after" && v == "1"),
            "503 must carry Retry-After: {:?}",
            response.headers
        );
        assert_eq!(api::validate_serve_json(&response.body).unwrap(), "error");
        assert_eq!(handle.state().metrics.rejected.get(), 1);
        handle.stop();
    }

    #[test]
    fn structured_400_for_a_bad_body() {
        let handle = spawn(&ServerConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServerConfig::default()
        })
        .expect("bind");
        let addr = handle.addr;
        let (status, body) =
            client::post(addr, "/synthesize", "{\"kernel\": \"zzz\"}").expect("post");
        assert_eq!(status, 400);
        assert_eq!(api::validate_serve_json(&body).unwrap(), "error");
        assert!(body.contains("\"pointer\": \"/kernel\""));
        handle.stop();
    }
}
