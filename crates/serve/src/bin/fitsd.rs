//! `fitsd` — the PowerFITS measurement daemon.
//!
//! Serves the synthesis/simulation pipeline over HTTP/1.1 + JSON on
//! `std::net` alone:
//!
//! ```text
//! POST /synthesize   synthesize a kernel's FITS ISA, report code sizes
//! POST /simulate     both ISAs at one machine point, energy + savings
//! POST /sweep        a scenario grid over a kernel list
//! GET  /metrics      service counters, latency, per-endpoint spans
//! GET  /healthz      liveness
//! ```
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-serve --bin fitsd -- --addr 127.0.0.1:4717
//! fitsd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//! ```
//!
//! Concurrent identical requests share one execution (coalescing) and
//! finished responses are cached by canonical request, so a thundering
//! herd of identical clients costs one pipeline run.

use std::io::Write;

use fits_serve::server::{spawn, ServerConfig};

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4717".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| usage("--addr needs a value"));
            }
            "--workers" => {
                config.workers = parse_num(&mut args, "--workers").max(1);
            }
            "--queue" => {
                config.queue_capacity = parse_num(&mut args, "--queue");
            }
            "--cache" => {
                config.cache_capacity = parse_num(&mut args, "--cache");
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    config
}

fn parse_num(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    let v = args
        .next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")));
    v.parse()
        .unwrap_or_else(|_| usage(&format!("invalid {flag} value: {v}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fitsd: {err}");
    }
    eprintln!("usage: fitsd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let config = parse_args();
    let handle = match spawn(&config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("fitsd: bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "fitsd: listening on http://{} ({} workers, queue {}, cache {})",
        handle.addr, config.workers, config.queue_capacity, config.cache_capacity
    );
    // CI pipes stdout; flush so the listening line is visible immediately.
    let _ = std::io::stdout().flush();

    // The accept loop and workers carry the service; the main thread only
    // keeps the process alive (stopping fitsd is SIGTERM's job).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
