//! `fitsd` — the PowerFITS measurement daemon.
//!
//! Serves the synthesis/simulation pipeline over HTTP/1.1 + JSON on
//! `std::net` alone:
//!
//! ```text
//! POST /synthesize    synthesize a kernel's FITS ISA, report code sizes
//! POST /simulate      both ISAs at one machine point, energy + savings
//! POST /sweep         a scenario grid over a kernel list
//! GET  /metrics       counters, latency, windowed views (?format=text
//!                     for Prometheus exposition)
//! GET  /debug/flight  recent requests + slowest span trees
//! GET  /healthz       liveness, uptime, build commit, schema version
//! ```
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p fits-serve --bin fitsd -- --addr 127.0.0.1:4717
//! fitsd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!       [--access-log PATH] [--log-capacity N] [--no-tracing]
//! ```
//!
//! Concurrent identical requests share one execution (coalescing) and
//! finished responses are cached by canonical request, so a thundering
//! herd of identical clients costs one pipeline run. With `--access-log`
//! every request is appended as one schema-versioned JSONL record
//! (trace id, phases, outcome); the writer sits behind a bounded channel
//! and drops (counted in `/metrics`) rather than ever blocking a worker.

use std::io::Write;
use std::sync::Arc;

use fits_serve::server::{spawn, ServerConfig};

fn parse_args() -> ServerConfig {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4717".to_string(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| usage("--addr needs a value"));
            }
            "--workers" => {
                config.workers = parse_num(&mut args, "--workers").max(1);
            }
            "--queue" => {
                config.queue_capacity = parse_num(&mut args, "--queue");
            }
            "--cache" => {
                config.cache_capacity = parse_num(&mut args, "--cache");
            }
            "--access-log" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| usage("--access-log needs a value"));
                config.access_log = Some(path.into());
            }
            "--log-capacity" => {
                config.log_capacity = parse_num(&mut args, "--log-capacity").max(1);
            }
            "--no-tracing" => {
                config.tracing = false;
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    config
}

fn parse_num(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    let v = args
        .next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")));
    v.parse()
        .unwrap_or_else(|_| usage(&format!("invalid {flag} value: {v}")))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fitsd: {err}");
    }
    eprintln!(
        "usage: fitsd [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]\n\
         \x20            [--access-log PATH] [--log-capacity N] [--no-tracing]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn main() {
    let config = parse_args();
    let handle = match spawn(&config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("fitsd: bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "fitsd: listening on http://{} ({} workers, queue {}, cache {}, tracing {})",
        handle.addr,
        config.workers,
        config.queue_capacity,
        config.cache_capacity,
        if config.tracing { "on" } else { "off" }
    );
    // CI pipes stdout; flush so the listening line is visible immediately.
    let _ = std::io::stdout().flush();

    // A panic anywhere in the process dumps the flight recorder to stderr
    // before the default handler reports the panic itself — the last
    // moments of request history survive the crash.
    let state = Arc::clone(handle.state());
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        eprintln!("fitsd: panic; flight recorder dump follows");
        eprintln!("{}", state.flight.render_json());
        default_hook(info);
    }));

    // The accept loop and workers carry the service; the main thread only
    // keeps the process alive (stopping fitsd is SIGTERM's job).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
