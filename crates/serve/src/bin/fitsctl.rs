//! `fitsctl` — client and load generator for `fitsd`.
//!
//! Usage:
//!
//! ```text
//! fitsctl [--addr HOST:PORT] COMMAND [ARGS]
//!
//!   health                    GET /healthz
//!   metrics [--text]          GET /metrics (--text: Prometheus exposition)
//!   flight                    GET /debug/flight (recent + slowest traces)
//!   top [--interval SECS] [--count N]
//!                             live per-endpoint request rates and latency
//!   checklog PATH             schema-validate a JSONL access log
//!   wait [--timeout SECS]     poll /healthz until the daemon answers
//!   synthesize [JSON]         POST /synthesize (default {"kernel":"crc32"})
//!   simulate   [JSON]         POST /simulate   (default {"kernel":"crc32"})
//!   analyze    [JSON]         POST /analyze    (default {"kernel":"crc32"})
//!   sweep      [JSON]         POST /sweep      (default {} = full grid)
//!   synthesize-multi [JSON]   POST /synthesize-multi
//!                             (default {"kernels": ["crc32", "sha"]})
//!   smoke                     drive every endpoint once, validate schemas
//!   bench [--clients N] [--passes N] [--expect-hit-rate F]
//!                             load-generate the full kernel suite
//! ```
//!
//! Every response body is validated against the `powerfits-serve-v1`
//! schema before it is accepted; any violation is a failure. `wait`
//! additionally asserts the daemon speaks the expected `schema_version`,
//! so a version skew fails fast instead of mid-run. `bench`
//! fans the full 21-kernel suite out over `--clients` threads for
//! `--passes` passes and demands zero failed requests and byte-identical
//! bodies across clients; with `--expect-hit-rate` it also enforces a
//! minimum cache-hit rate on the final pass (the acceptance gate is 0.9).
//! `top` polls `/metrics` and renders the sliding last-minute window
//! (req/s, p50/p99) per endpoint x status class next to the lifetime
//! hit/coalesce/shed rates.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fits_kernels::kernels::Kernel;
use fits_obs::json::{parse, Value};
use fits_obs::validate_access_jsonl;
use fits_serve::client::{get, post, request_raw};
use fits_serve::{validate_flight_json, validate_prometheus, validate_serve_json, SCHEMA_VERSION};

struct Options {
    addr: String,
    command: String,
    rest: Vec<String>,
}

fn parse_args() -> Options {
    let mut addr = "127.0.0.1:4717".to_string();
    let mut command = String::new();
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" if command.is_empty() => {
                addr = args.next().unwrap_or_else(|| usage("--addr needs a value"));
            }
            "--help" | "-h" if command.is_empty() => usage(""),
            _ if command.is_empty() => command = arg,
            _ => rest.push(arg),
        }
    }
    if command.is_empty() {
        usage("a command is required");
    }
    Options {
        addr,
        command,
        rest,
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("fitsctl: {err}");
    }
    eprintln!(
        "usage: fitsctl [--addr HOST:PORT] COMMAND\n\
         commands: health | metrics [--text] | flight | \
         top [--interval SECS] [--count N] | checklog PATH | \
         wait [--timeout SECS] | \
         synthesize [JSON] | simulate [JSON] | analyze [JSON] | sweep [JSON] | \
         synthesize-multi [JSON] | \
         smoke | bench [--clients N] [--passes N] [--expect-hit-rate F]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn fail(what: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("fitsctl: {what}: {err}");
    std::process::exit(1);
}

fn resolve(addr: &str) -> SocketAddr {
    match addr.to_socket_addrs() {
        Ok(mut addrs) => match addrs.next() {
            Some(a) => a,
            None => fail("resolve", &format!("{addr} resolved to nothing")),
        },
        Err(e) => fail(&format!("resolve {addr}"), &e),
    }
}

/// Fetches, validates, and prints one response; exits nonzero on a non-2xx
/// status or a schema violation.
fn checked(addr: SocketAddr, method: &str, target: &str, body: &str) -> String {
    let result = if method == "GET" {
        get(addr, target)
    } else {
        post(addr, target, body)
    };
    let (status, text) = match result {
        Ok(r) => r,
        Err(e) => fail(&format!("{method} {target}"), &e),
    };
    if let Err(e) = validate_serve_json(&text) {
        fail(&format!("{method} {target} schema"), &e);
    }
    if !(200..300).contains(&status) {
        eprintln!("fitsctl: {method} {target}: HTTP {status}");
        eprintln!("{text}");
        std::process::exit(1);
    }
    text
}

fn cmd_wait(addr: SocketAddr, rest: &[String]) {
    let mut timeout = Duration::from_secs(120);
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timeout" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--timeout needs a value"));
                let secs: u64 = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --timeout value: {v}")));
                timeout = Duration::from_secs(secs);
            }
            other => usage(&format!("unknown wait argument: {other}")),
        }
    }
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok((200, body)) = get(addr, "/healthz") {
            if validate_serve_json(&body).is_ok() {
                // A healthy daemon speaking the wrong schema version is a
                // deployment bug; fail fast rather than mid-run.
                let version = parse(&body)
                    .ok()
                    .and_then(|doc| doc.get("schema_version").and_then(Value::as_f64));
                match version {
                    Some(v) if v == SCHEMA_VERSION as f64 => {
                        println!("fitsctl: {addr} is up (schema v{SCHEMA_VERSION})");
                        return;
                    }
                    Some(v) => fail(
                        "wait",
                        &format!("{addr} answers schema_version {v}, want {SCHEMA_VERSION}"),
                    ),
                    None => fail("wait", &format!("{addr} /healthz lacks schema_version")),
                }
            }
        }
        if Instant::now() >= deadline {
            fail("wait", &format!("{addr} not healthy after {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// `GET /debug/flight`, validated against `powerfits-flight-v1`.
fn cmd_flight(addr: SocketAddr) {
    let (status, body) = match get(addr, "/debug/flight") {
        Ok(r) => r,
        Err(e) => fail("GET /debug/flight", &e),
    };
    if status != 200 {
        fail("GET /debug/flight", &format!("HTTP {status}"));
    }
    if let Err(e) = validate_flight_json(&body) {
        fail("flight schema", &e);
    }
    println!("{body}");
}

/// `GET /metrics?format=text`, validated as Prometheus exposition.
fn cmd_metrics_text(addr: SocketAddr) {
    let (status, body) = match get(addr, "/metrics?format=text") {
        Ok(r) => r,
        Err(e) => fail("GET /metrics?format=text", &e),
    };
    if status != 200 {
        fail("GET /metrics?format=text", &format!("HTTP {status}"));
    }
    if let Err(e) = validate_prometheus(&body) {
        fail("prometheus exposition", &e);
    }
    print!("{body}");
}

/// Schema-validates a JSONL access log written by `fitsd --access-log`
/// and prints its summary counts.
fn cmd_checklog(rest: &[String]) {
    let path = rest
        .first()
        .unwrap_or_else(|| usage("checklog needs a PATH"));
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => fail(&format!("read {path}"), &e),
    };
    match validate_access_jsonl(&text) {
        Ok(stats) => println!(
            "fitsctl: {path} ok: {} requests, {} events, {} distinct traces (commit {})",
            stats.requests,
            stats.events,
            stats.traces.len(),
            stats.commit
        ),
        Err(e) => fail(&format!("checklog {path}"), &e),
    }
}

fn field(doc: &Value, key: &str) -> f64 {
    doc.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

/// One rendered frame of `fitsctl top`: the lifetime header plus the
/// sliding last-minute window per endpoint x status class.
fn render_top(addr: SocketAddr, doc: &Value) -> String {
    let mut out = String::new();
    let requests = field(doc, "requests");
    let hits = field(doc, "cache_hits");
    let coalesced = field(doc, "coalesced_joins");
    let posts = field(doc, "executions") + hits + coalesced;
    let pct = |part: f64| {
        if posts > 0.0 {
            100.0 * part / posts
        } else {
            0.0
        }
    };
    out.push_str(&format!(
        "fitsd {addr}  up {}s  queue {}/{}  cache {}  log {}/{} emitted/dropped\n",
        field(doc, "uptime_s"),
        field(doc, "queue_depth"),
        field(doc, "queue_capacity"),
        field(doc, "cache_entries"),
        doc.get("log").map_or(0.0, |l| field(l, "emitted")),
        doc.get("log").map_or(0.0, |l| field(l, "dropped")),
    ));
    out.push_str(&format!(
        "lifetime: {requests} requests ({} ok, {} 4xx, {} 5xx, {} shed)  \
         hit {:.1}%  coalesced {:.1}%\n",
        field(doc, "ok"),
        field(doc, "client_errors"),
        field(doc, "server_errors"),
        field(doc, "rejected"),
        pct(hits),
        pct(coalesced),
    ));
    out.push_str(&format!(
        "{:<14} {:<5} {:>8} {:>6} {:>9} {:>9} {:>9}\n",
        "last 60s", "class", "req/s", "count", "p50(us)", "p99(us)", "max(us)"
    ));
    let mut rows = 0;
    if let Some(Value::Arr(cells)) = doc.get("window") {
        for cell in cells {
            let endpoint = cell.get("endpoint").and_then(Value::as_str).unwrap_or("?");
            let class = cell.get("class").and_then(Value::as_str).unwrap_or("?");
            out.push_str(&format!(
                "{endpoint:<14} {class:<5} {:>8.3} {:>6} {:>9} {:>9} {:>9}\n",
                field(cell, "rate_per_sec"),
                field(cell, "count"),
                field(cell, "p50"),
                field(cell, "p99"),
                field(cell, "max"),
            ));
            rows += 1;
        }
    }
    if rows == 0 {
        out.push_str("(no requests in the last 60s)\n");
    }
    out
}

fn cmd_top(addr: SocketAddr, rest: &[String]) {
    let mut interval = Duration::from_secs(2);
    let mut count: Option<u64> = None;
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        let mut num = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--interval" => {
                let v = num("--interval");
                let secs: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --interval value: {v}")));
                if secs <= 0.0 || !secs.is_finite() {
                    usage("--interval must be positive");
                }
                interval = Duration::from_secs_f64(secs);
            }
            "--count" => {
                let v = num("--count");
                let n: u64 = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --count value: {v}")));
                count = Some(n.max(1));
            }
            other => usage(&format!("unknown top argument: {other}")),
        }
    }
    // Only repaint in place when stdout is a real terminal; piped output
    // gets plain appended frames.
    use std::io::IsTerminal;
    let ansi = std::io::stdout().is_terminal();
    let mut frame = 0u64;
    loop {
        let (status, body) = match get(addr, "/metrics") {
            Ok(r) => r,
            Err(e) => fail("GET /metrics", &e),
        };
        if status != 200 {
            fail("GET /metrics", &format!("HTTP {status}"));
        }
        let doc = match parse(&body) {
            Ok(doc) => doc,
            Err(e) => fail("parse /metrics", &e),
        };
        let rendered = render_top(addr, &doc);
        if ansi {
            // Clear screen + home, then the frame.
            print!("\x1b[2J\x1b[H{rendered}");
        } else {
            print!("{rendered}");
        }
        use std::io::Write;
        let _ = std::io::stdout().flush();
        frame += 1;
        if count.is_some_and(|n| frame >= n) {
            return;
        }
        std::thread::sleep(interval);
    }
}

fn cmd_smoke(addr: SocketAddr) {
    checked(addr, "GET", "/healthz", "");
    let body = checked(addr, "POST", "/synthesize", "{\"kernel\": \"crc32\"}");
    // Re-issuing the identical request must serve the identical bytes.
    let again = checked(addr, "POST", "/synthesize", "{\"kernel\": \"crc32\"}");
    if body != again {
        fail("smoke", &"repeated /synthesize responses differ");
    }
    checked(addr, "POST", "/simulate", "{\"kernel\": \"crc32\"}");
    // The cache analysis must come back sound for a healthy daemon; the
    // static-only variant exercises the bounds report without a trace.
    let analyzed = checked(
        addr,
        "POST",
        "/analyze",
        "{\"kernel\": \"crc32\", \"static_only\": true}",
    );
    if !analyzed.contains("\"sound\": true") {
        fail("smoke", &"/analyze reported unsound cache bounds");
    }
    checked(
        addr,
        "POST",
        "/sweep",
        "{\"kernels\": [\"crc32\", \"sha\"], \"icache_bytes\": [16384, 8192]}",
    );
    // Shared-ISA synthesis must accept the pair, and a proportional
    // weight respelling must come back byte-identical (one execution,
    // one cache entry).
    let multi = checked(
        addr,
        "POST",
        "/synthesize-multi",
        "{\"kernels\": [\"crc32\", \"sha\"]}",
    );
    if !multi.contains("\"accepted\": true") {
        fail("smoke", &"/synthesize-multi did not accept the pair");
    }
    let respelled = checked(
        addr,
        "POST",
        "/synthesize-multi",
        "{\"kernels\": [\"sha\", \"crc32\"], \"weights\": [2, 2]}",
    );
    if multi != respelled {
        fail(
            "smoke",
            &"respelled /synthesize-multi weights broke canonicalization",
        );
    }
    // A degenerate weight vector must be a structured 400 at /weights.
    match post(
        addr,
        "/synthesize-multi",
        "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [0, 0]}",
    ) {
        Ok((400, text)) => {
            if !text.contains("\"pointer\": \"/weights\"") {
                fail("smoke", &"all-zero weights 400 lacks a /weights pointer");
            }
        }
        Ok((status, _)) => fail(
            "smoke",
            &format!("all-zero weights answered HTTP {status}, want 400"),
        ),
        Err(e) => fail("smoke zero-weight request", &e),
    }
    // A bad body must come back as a schema-valid structured 400.
    match post(addr, "/synthesize", "{\"kernel\": \"no-such-kernel\"}") {
        Ok((400, text)) => match validate_serve_json(&text) {
            Ok(endpoint) if endpoint == "error" => {}
            Ok(endpoint) => fail("smoke", &format!("400 body has endpoint {endpoint:?}")),
            Err(e) => fail("smoke 400 schema", &e),
        },
        Ok((status, _)) => fail(
            "smoke",
            &format!("bad body answered HTTP {status}, want 400"),
        ),
        Err(e) => fail("smoke bad-body request", &e),
    }
    checked(addr, "GET", "/metrics", "");
    println!("fitsctl: smoke ok");
}

struct BenchOptions {
    clients: usize,
    passes: usize,
    expect_hit_rate: Option<f64>,
}

fn parse_bench(rest: &[String]) -> BenchOptions {
    let mut opts = BenchOptions {
        clients: 8,
        passes: 2,
        expect_hit_rate: None,
    };
    let mut args = rest.iter();
    while let Some(arg) = args.next() {
        let mut num = |flag: &str| -> String {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
                .clone()
        };
        match arg.as_str() {
            "--clients" => {
                let v = num("--clients");
                opts.clients = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --clients value: {v}")));
            }
            "--passes" => {
                let v = num("--passes");
                opts.passes = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --passes value: {v}")));
            }
            "--expect-hit-rate" => {
                let v = num("--expect-hit-rate");
                let rate: f64 = v
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("invalid --expect-hit-rate value: {v}")));
                opts.expect_hit_rate = Some(rate);
            }
            other => usage(&format!("unknown bench argument: {other}")),
        }
    }
    if opts.clients == 0 || opts.passes == 0 {
        usage("--clients and --passes must be at least 1");
    }
    opts
}

#[derive(Default)]
struct ClientReport {
    bodies: Vec<Option<String>>,
    failures: u64,
    retries: u64,
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// One request with retry-on-503: the load generator honors the daemon's
/// backpressure instead of counting sheds as failures.
fn bench_request(
    addr: SocketAddr,
    target: &str,
    body: &str,
    report: &mut ClientReport,
) -> Option<String> {
    for _attempt in 0..100 {
        match request_raw(addr, "POST", target, body) {
            Ok(response) if response.status == 503 => {
                report.retries += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(response) => {
                if response.status != 200 || validate_serve_json(&response.body).is_err() {
                    report.failures += 1;
                    return None;
                }
                match response.header("x-cache") {
                    Some("hit") => report.hits += 1,
                    Some("coalesced") => report.coalesced += 1,
                    _ => report.misses += 1,
                }
                return Some(response.body);
            }
            Err(_) => {
                report.failures += 1;
                return None;
            }
        }
    }
    report.failures += 1;
    None
}

fn cmd_bench(addr: SocketAddr, rest: &[String]) {
    let opts = parse_bench(rest);
    let jobs: Arc<Vec<(String, String)>> = Arc::new(
        Kernel::ALL
            .iter()
            .flat_map(|k| {
                [
                    (
                        "/synthesize".to_string(),
                        format!("{{\"kernel\": \"{}\"}}", k.name()),
                    ),
                    (
                        "/simulate".to_string(),
                        format!("{{\"kernel\": \"{}\"}}", k.name()),
                    ),
                ]
            })
            .collect(),
    );
    println!(
        "fitsctl: bench {} jobs x {} clients x {} passes against {addr}",
        jobs.len(),
        opts.clients,
        opts.passes
    );

    let mut exit_code = 0;
    for pass in 1..=opts.passes {
        let started = Instant::now();
        let reports: Vec<ClientReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..opts.clients)
                .map(|client| {
                    let jobs = Arc::clone(&jobs);
                    s.spawn(move || {
                        let mut report = ClientReport {
                            bodies: vec![None; jobs.len()],
                            ..ClientReport::default()
                        };
                        // Each client starts at a different rotation so
                        // identical jobs overlap in flight (coalescing food).
                        let offset = client * jobs.len() / opts.clients.max(1);
                        for i in 0..jobs.len() {
                            let idx = (offset + i) % jobs.len();
                            let (target, body) = &jobs[idx];
                            report.bodies[idx] = bench_request(addr, target, body, &mut report);
                        }
                        report
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(report) => report,
                    Err(_) => ClientReport {
                        failures: 1,
                        ..ClientReport::default()
                    },
                })
                .collect()
        });

        let failures: u64 = reports.iter().map(|r| r.failures).sum();
        let retries: u64 = reports.iter().map(|r| r.retries).sum();
        let hits: u64 = reports.iter().map(|r| r.hits).sum();
        let misses: u64 = reports.iter().map(|r| r.misses).sum();
        let coalesced: u64 = reports.iter().map(|r| r.coalesced).sum();
        let total = hits + misses + coalesced;
        let hit_rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        };

        // Byte-identical across clients, job by job.
        let mut mismatches = 0u64;
        for job in 0..jobs.len() {
            let mut reference: Option<&String> = None;
            for report in &reports {
                if let Some(body) = &report.bodies[job] {
                    match reference {
                        None => reference = Some(body),
                        Some(r) if r == body => {}
                        Some(_) => mismatches += 1,
                    }
                }
            }
        }

        println!(
            "fitsctl: pass {pass}: {total} ok, {failures} failed, {retries} retries, \
             {hits} hit / {coalesced} coalesced / {misses} miss (hit rate {:.1}%), \
             {mismatches} body mismatches, {:.2?}",
            hit_rate * 100.0,
            started.elapsed()
        );
        if failures > 0 || mismatches > 0 {
            exit_code = 1;
        }
        if pass == opts.passes {
            if let Some(expect) = opts.expect_hit_rate {
                if hit_rate < expect {
                    eprintln!(
                        "fitsctl: final-pass hit rate {:.3} below required {expect:.3}",
                        hit_rate
                    );
                    exit_code = 1;
                }
            }
        }
    }

    // Close with the server's own view of the run.
    let (status, metrics) = match get(addr, "/metrics") {
        Ok(r) => r,
        Err(e) => fail("GET /metrics", &e),
    };
    if status == 200 && validate_serve_json(&metrics).is_ok() {
        println!("{metrics}");
    }
    if exit_code != 0 {
        eprintln!("fitsctl: bench FAILED");
    }
    std::process::exit(exit_code);
}

fn main() {
    let opts = parse_args();
    let addr = resolve(&opts.addr);
    match opts.command.as_str() {
        "health" => println!("{}", checked(addr, "GET", "/healthz", "")),
        "metrics" if opts.rest.first().is_some_and(|a| a == "--text") => cmd_metrics_text(addr),
        "metrics" => println!("{}", checked(addr, "GET", "/metrics", "")),
        "flight" => cmd_flight(addr),
        "top" => cmd_top(addr, &opts.rest),
        "checklog" => cmd_checklog(&opts.rest),
        "wait" => cmd_wait(addr, &opts.rest),
        "smoke" => cmd_smoke(addr),
        "synthesize" | "simulate" | "analyze" | "sweep" | "synthesize-multi" => {
            let default = match opts.command.as_str() {
                "sweep" => "{}",
                "synthesize-multi" => "{\"kernels\": [\"crc32\", \"sha\"]}",
                _ => "{\"kernel\": \"crc32\"}",
            };
            let body = opts.rest.first().map_or(default, String::as_str);
            let target = format!("/{}", opts.command);
            println!("{}", checked(addr, "POST", &target, body));
        }
        "bench" => cmd_bench(addr, &opts.rest),
        other => usage(&format!("unknown command: {other}")),
    }
}
