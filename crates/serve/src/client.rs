//! A minimal HTTP/1.1 client for `fitsctl`, the loopback tests, and the
//! CI smoke job. One request per connection, mirroring the server's
//! `Connection: close` contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Per-request socket timeout. Generous because a cold `/sweep` over the
/// full suite synthesizes every kernel once.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// One parsed response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// The value of `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

fn io_err(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Socket failures or an unparseable response.
pub fn request_raw(
    addr: SocketAddr,
    method: &str,
    target: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: fitsd\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let raw = String::from_utf8(raw).map_err(|_| io_err("non-utf8 response"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io_err("response missing header terminator"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io_err("bad status line"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// `GET target` → `(status, body)`.
///
/// # Errors
///
/// See [`request_raw`].
pub fn get(addr: SocketAddr, target: &str) -> std::io::Result<(u16, String)> {
    let r = request_raw(addr, "GET", target, "")?;
    Ok((r.status, r.body))
}

/// `POST target` with a JSON body → `(status, body)`.
///
/// # Errors
///
/// See [`request_raw`].
pub fn post(addr: SocketAddr, target: &str, body: &str) -> std::io::Result<(u16, String)> {
    let r = request_raw(addr, "POST", target, body)?;
    Ok((r.status, r.body))
}
