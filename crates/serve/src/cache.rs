//! The content-addressed result cache.
//!
//! Responses are pure functions of a *canonical request string* (endpoint
//! plus every parameter in a fixed order, see [`crate::api`]), so the
//! canonical string is the content address: equal strings → byte-identical
//! responses. The cache maps canonical strings to finished response bodies
//! with least-recently-used eviction; the FNV-1a hash of the string
//! ([`fnv64`]) is the compact address surfaced to clients in the
//! `X-Fits-Key` header and the metrics.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a over a byte string — the compact form of a content
/// address. Stable across runs and platforms (no `RandomState`), so cache
/// keys in logs and headers are comparable between daemon instances.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `fnv64` rendered as the 16-digit hex address clients see.
#[must_use]
pub fn content_address(canonical: &str) -> String {
    format!("{:016x}", fnv64(canonical.as_bytes()))
}

#[derive(Debug)]
struct Entry {
    body: Arc<String>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// An LRU map from canonical request strings to response bodies.
///
/// Sized in entries, not bytes: response bodies are small (a few KB) and
/// bounded by the API shape, so entry count is the honest unit. A capacity
/// of 0 disables caching entirely (every lookup misses, nothing is
/// stored).
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` responses.
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The cached body for `canonical`, refreshing its recency.
    #[must_use]
    pub fn get(&self, canonical: &str) -> Option<Arc<String>> {
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(canonical)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.body))
    }

    /// Stores a finished response, evicting least-recently-used entries to
    /// stay within capacity.
    pub fn put(&self, canonical: &str, body: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(entry) = inner.map.get_mut(canonical) {
            // A coalesced duplicate finished while we computed; keep the
            // stored body (they are identical by construction).
            entry.last_used = tick;
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&oldest);
        }
        inner.map.insert(
            canonical.to_string(),
            Entry {
                body,
                last_used: tick,
            },
        );
    }

    /// Number of cached responses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_separates_inputs() {
        // Reference FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"synthesize|crc32"), fnv64(b"synthesize|sha"));
        assert_eq!(content_address("x").len(), 16);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(2);
        cache.put("a", Arc::new("A".to_string()));
        cache.put("b", Arc::new("B".to_string()));
        assert_eq!(cache.get("a").as_deref().map(String::as_str), Some("A"));
        // "b" is now the coldest; inserting "c" must evict it.
        cache.put("c", Arc::new("C".to_string()));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.put("a", Arc::new("A".to_string()));
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn put_keeps_the_first_body_for_a_key() {
        let cache = ResultCache::new(4);
        let first = Arc::new("one".to_string());
        cache.put("k", Arc::clone(&first));
        cache.put("k", Arc::new("two".to_string()));
        assert!(Arc::ptr_eq(&cache.get("k").unwrap(), &first));
    }
}
