//! A bounded MPMC job queue — the daemon's backpressure point.
//!
//! The accept loop pushes connections; worker threads pop them. When the
//! queue is full the push fails immediately and the accept loop answers
//! `503 Service Unavailable` with `Retry-After`, so overload sheds
//! cheaply at the door instead of stacking latency invisibly.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue usable from any number of producer and consumer
/// threads.
#[derive(Debug)]
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
}

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — the caller should shed the job.
    Full,
    /// The queue was closed — the daemon is shutting down.
    Closed,
}

impl<T> JobQueue<T> {
    /// An open queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the backpressure signal),
    /// [`PushError::Closed`] after [`JobQueue::close`]. The item rides
    /// back in the error so the caller can reject it gracefully.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.lock();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means "no more work ever" (worker shutdown).
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .cv
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake with `None` once empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Current depth (the `/metrics` gauge).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_and_rides_the_item_back() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = JobQueue::new(0);
        assert_eq!(q.try_push(1).unwrap_err().1, PushError::Full);
    }

    #[test]
    fn close_drains_then_wakes_consumers_with_none() {
        let q = Arc::new(JobQueue::new(8));
        q.try_push(1).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(q.try_push(2).unwrap_err().1, PushError::Closed);
        assert_eq!(consumer.join().unwrap(), vec![1]);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q = Arc::new(JobQueue::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        std::thread::scope(|s| {
            for p in 0..4 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..100 {
                        q.try_push(p * 100 + i).unwrap();
                    }
                });
            }
        });
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
