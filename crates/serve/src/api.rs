//! The JSON API: request schemas, canonical keys, response bodies.
//!
//! Every request body is schema-validated with the `fits_obs::json`
//! machinery *before* any work is scheduled; violations come back as
//! structured 400s carrying an error code and a JSON-pointer to the
//! offending field — a malformed request can never panic a worker.
//!
//! Every POST endpoint is a **pure function** of its canonical request
//! string ([`SynthesizeRequest::canonical`] and friends): no timestamps,
//! no host stamps, fixed key order. That purity is what makes the
//! content-addressed cache and the coalescer sound — equal canonical
//! strings may share one execution and one response body, byte for byte.

use std::sync::Arc;

use fits_bench::{
    cache_bounds_report_with, isa_json, price_shared_member, run_kernel_scenarios, synth_key,
    Artifacts, ExperimentError,
};
use fits_core::{synthesize_multi, MultiError, MultiMember, MultiOptions, SynthOptions};
use fits_isa::spec::{builtin_ar32, IsaSpec, SpecCatalog};
use fits_kernels::kernels::{Kernel, Scale};
use fits_obs::json::{escape, parse, Value};
use fits_scenario::{tech_preset, ScenarioMatrix, ScenarioSpec, PRESET_NAMES, TECH_NAMES};

/// The response schema identifier every body carries.
pub const SCHEMA: &str = "powerfits-serve-v1";
/// Largest accepted workload scale (`Scale::experiment()` is 4096).
pub const MAX_SCALE: u32 = 4096;
/// Most I-cache sizes one sweep request may ask for.
pub const MAX_SWEEP_SIZES: usize = 8;

/// A structured request rejection: machine-readable code, JSON pointer to
/// the offending field, human-readable message. Renders as the 400 body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ApiError {
    /// Stable error code (`"parse"`, `"missing_field"`, `"bad_type"`,
    /// `"bad_value"`, `"unknown_field"`).
    pub code: &'static str,
    /// JSON pointer to the offending field (`"/synth/reg_bits"`; empty
    /// for document-level failures).
    pub pointer: String,
    /// What went wrong.
    pub message: String,
}

impl ApiError {
    fn new(code: &'static str, pointer: &str, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            pointer: pointer.to_string(),
            message: message.into(),
        }
    }

    /// The 400 response body for this rejection.
    #[must_use]
    pub fn body(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"error\",\n  \"error\": {{\
             \"code\": \"{}\", \"pointer\": \"{}\", \"message\": \"{}\"}}\n}}\n",
            escape(self.code),
            escape(&self.pointer),
            escape(&self.message),
        )
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {:?}: {}", self.code, self.pointer, self.message)
    }
}

impl std::error::Error for ApiError {}

// ---------------------------------------------------------------- helpers

fn parse_body(body: &str) -> Result<Value, ApiError> {
    if body.trim().is_empty() {
        // An absent body means "all defaults" — canonicalized as {}.
        return Ok(Value::Obj(Vec::new()));
    }
    parse(body).map_err(|e| ApiError::new("parse", "", e.to_string()))
}

fn members<'a>(v: &'a Value, pointer: &str) -> Result<&'a [(String, Value)], ApiError> {
    match v {
        Value::Obj(m) => Ok(m),
        _ => Err(ApiError::new("bad_type", pointer, "expected an object")),
    }
}

fn reject_unknown(v: &Value, pointer: &str, allowed: &[&str]) -> Result<(), ApiError> {
    for (key, _) in members(v, pointer)? {
        if !allowed.contains(&key.as_str()) {
            return Err(ApiError::new(
                "unknown_field",
                &format!("{pointer}/{key}"),
                format!("unknown field (allowed: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn opt_str<'a>(v: &'a Value, pointer: &str, key: &str) -> Result<Option<&'a str>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s)),
        Some(_) => Err(ApiError::new(
            "bad_type",
            &format!("{pointer}/{key}"),
            "expected a string",
        )),
    }
}

fn opt_bool(v: &Value, pointer: &str, key: &str) -> Result<Option<bool>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ApiError::new(
            "bad_type",
            &format!("{pointer}/{key}"),
            "expected a boolean",
        )),
    }
}

fn opt_f64(v: &Value, pointer: &str, key: &str) -> Result<Option<f64>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(ApiError::new(
            "bad_type",
            &format!("{pointer}/{key}"),
            "expected a number",
        )),
    }
}

fn opt_uint(
    v: &Value,
    pointer: &str,
    key: &str,
    min: u64,
    max: u64,
) -> Result<Option<u64>, ApiError> {
    let Some(n) = opt_f64(v, pointer, key)? else {
        return Ok(None);
    };
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let int = n as u64;
    if n.fract() != 0.0 || n < 0.0 || !(min..=max).contains(&int) {
        return Err(ApiError::new(
            "bad_value",
            &format!("{pointer}/{key}"),
            format!("expected an integer in [{min}, {max}], got {n}"),
        ));
    }
    Ok(Some(int))
}

fn kernel_field(v: &Value, pointer: &str) -> Result<Kernel, ApiError> {
    let name = opt_str(v, pointer, "kernel")?.ok_or_else(|| {
        ApiError::new(
            "missing_field",
            &format!("{pointer}/kernel"),
            "a kernel name is required",
        )
    })?;
    Kernel::from_name(name).ok_or_else(|| {
        ApiError::new(
            "bad_value",
            &format!("{pointer}/kernel"),
            format!("unknown kernel {name:?}"),
        )
    })
}

fn scale_field(v: &Value, pointer: &str) -> Result<Scale, ApiError> {
    let n = opt_uint(v, pointer, "scale", 1, u64::from(MAX_SCALE))?.map_or_else(
        || Scale::test().n,
        |n| u32::try_from(n).unwrap_or(MAX_SCALE),
    );
    Ok(Scale { n })
}

/// Parses the optional `"synth"` override object on top of a scenario's
/// default options.
fn synth_field(v: &Value, pointer: &str, base: SynthOptions) -> Result<SynthOptions, ApiError> {
    let Some(synth) = v.get("synth") else {
        return Ok(base);
    };
    let sp = format!("{pointer}/synth");
    reject_unknown(
        synth,
        &sp,
        &["toggle_aware", "reg_bits", "space_budget", "max_dict_bits"],
    )?;
    let mut options = base;
    if let Some(b) = opt_bool(synth, &sp, "toggle_aware")? {
        options.toggle_aware = b;
    }
    if let Some(bits) = opt_uint(synth, &sp, "reg_bits", 3, 4)? {
        options.reg_bits = u8::try_from(bits).unwrap_or(4);
    }
    if let Some(budget) = opt_f64(synth, &sp, "space_budget")? {
        if !(budget > 0.0 && budget <= 1.0) {
            return Err(ApiError::new(
                "bad_value",
                &format!("{sp}/space_budget"),
                format!("expected a fraction in (0, 1], got {budget}"),
            ));
        }
        options.space_budget = budget;
    }
    if let Some(bits) = opt_uint(synth, &sp, "max_dict_bits", 0, 12)? {
        options.max_dict_bits = u8::try_from(bits).unwrap_or(6);
    }
    Ok(options)
}

/// Parses the optional `"isa"` field: `"builtin"` (or absence, or text
/// hash-identical to the shipped spec) selects the built-in catalog; any
/// other value must be a complete `powerfits-isa-v1` document describing a
/// 32-bit replacement for the AR32 execution ISA. The document is linted
/// with the `ISA` verification family before any work is scheduled, so a
/// spec with ambiguous or non-round-tripping forms is rejected as a 400,
/// never handed to the pipeline.
fn isa_field(v: &Value, pointer: &str) -> Result<Option<Arc<SpecCatalog>>, ApiError> {
    let Some(text) = opt_str(v, pointer, "isa")? else {
        return Ok(None);
    };
    if text == "builtin" {
        return Ok(None);
    }
    let ip = format!("{pointer}/isa");
    let spec = IsaSpec::load(text)
        .map_err(|e| ApiError::new("bad_value", &ip, format!("ISA spec rejected: {e}")))?;
    if spec.word_width != 32 {
        return Err(ApiError::new(
            "bad_value",
            &ip,
            format!(
                "only a 32-bit (AR32-shaped) spec can replace the execution ISA, \
                 got word-width {}",
                spec.word_width
            ),
        ));
    }
    let report = fits_verify::lint_spec(&spec);
    if let Some(d) = report.diagnostics.first() {
        return Err(ApiError::new(
            "bad_value",
            &ip,
            format!("ISA spec fails validation ({}): {}", d.code, d.message),
        ));
    }
    if spec.hash() == builtin_ar32().hash() {
        // Respellings of the shipped spec share the builtin cache slots.
        return Ok(None);
    }
    Ok(Some(Arc::new(SpecCatalog {
        ar32: Arc::new(spec),
        ..SpecCatalog::default()
    })))
}

/// The canonical-key suffix for a request's ISA catalog: empty for the
/// built-in catalog (keeping pre-existing keys stable), the catalog's
/// content hash otherwise.
fn isa_suffix(isa: Option<&Arc<SpecCatalog>>) -> String {
    isa.map_or_else(String::new, |c| format!("|isa={}", c.hash_hex()))
}

fn scenario_fields(v: &Value, pointer: &str) -> Result<(String, ScenarioSpec), ApiError> {
    let preset = opt_str(v, pointer, "scenario")?
        .unwrap_or("sa1100")
        .to_string();
    let tech = opt_str(v, pointer, "tech")?;
    let icache = opt_uint(v, pointer, "icache_bytes", 256, 1 << 24)?
        .map(|n| u32::try_from(n).unwrap_or(u32::MAX));
    let spec = ScenarioSpec::resolve(&preset, tech, icache).map_err(|e| {
        let field = match &e {
            fits_scenario::ScenarioError::UnknownPreset { .. } => "scenario",
            fits_scenario::ScenarioError::UnknownTech { .. } => "tech",
            _ => "icache_bytes",
        };
        ApiError::new("bad_value", &format!("{pointer}/{field}"), e.to_string())
    })?;
    let canonical = format!(
        "preset={preset}|tech={}|icache={}",
        tech.unwrap_or("-"),
        icache.map_or_else(|| "-".to_string(), |b| b.to_string()),
    );
    Ok((canonical, spec))
}

// ---------------------------------------------------------------- requests

/// A validated `POST /synthesize` request.
#[derive(Clone, Debug)]
pub struct SynthesizeRequest {
    /// The kernel to synthesize for.
    pub kernel: Kernel,
    /// Workload scale.
    pub scale: Scale,
    /// Synthesis options (defaults overlaid with the `"synth"` object).
    pub synth: SynthOptions,
    /// A replacement ISA catalog, or `None` for the shipped one.
    pub isa: Option<Arc<SpecCatalog>>,
}

impl SynthesizeRequest {
    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// A structured [`ApiError`] naming the offending field.
    pub fn from_body(body: &str) -> Result<SynthesizeRequest, ApiError> {
        let v = parse_body(body)?;
        reject_unknown(&v, "", &["kernel", "scale", "synth", "isa"])?;
        Ok(SynthesizeRequest {
            kernel: kernel_field(&v, "")?,
            scale: scale_field(&v, "")?,
            synth: synth_field(&v, "", SynthOptions::default())?,
            isa: isa_field(&v, "")?,
        })
    }

    /// The canonical request string (the cache/coalescing key).
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "synthesize|kernel={}|n={}|synth={}{}",
            self.kernel.name(),
            self.scale.n,
            synth_key(&self.synth),
            isa_suffix(self.isa.as_ref()),
        )
    }
}

/// A validated `POST /simulate` request.
#[derive(Clone, Debug)]
pub struct SimulateRequest {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Workload scale.
    pub scale: Scale,
    /// The resolved machine point.
    pub scenario: ScenarioSpec,
    /// Synthesis options for the FITS side.
    pub synth: SynthOptions,
    /// A replacement ISA catalog, or `None` for the shipped one.
    pub isa: Option<Arc<SpecCatalog>>,
    scenario_canonical: String,
}

impl SimulateRequest {
    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// A structured [`ApiError`] naming the offending field.
    pub fn from_body(body: &str) -> Result<SimulateRequest, ApiError> {
        let v = parse_body(body)?;
        reject_unknown(
            &v,
            "",
            &[
                "kernel",
                "scale",
                "scenario",
                "tech",
                "icache_bytes",
                "synth",
                "isa",
            ],
        )?;
        let kernel = kernel_field(&v, "")?;
        let scale = scale_field(&v, "")?;
        let (scenario_canonical, scenario) = scenario_fields(&v, "")?;
        let synth = synth_field(&v, "", scenario.synth.clone())?;
        Ok(SimulateRequest {
            kernel,
            scale,
            scenario,
            synth,
            isa: isa_field(&v, "")?,
            scenario_canonical,
        })
    }

    /// The canonical request string (the cache/coalescing key). Built from
    /// the *request* fields, not the derived scenario id — two presets can
    /// resize to the same id while describing different machines.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "simulate|kernel={}|n={}|{}|synth={}{}",
            self.kernel.name(),
            self.scale.n,
            self.scenario_canonical,
            synth_key(&self.synth),
            isa_suffix(self.isa.as_ref()),
        )
    }
}

/// A validated `POST /analyze` request — static I-cache analysis for one
/// kernel, with an optional traced differential.
#[derive(Clone, Debug)]
pub struct AnalyzeRequest {
    /// The kernel to analyze.
    pub kernel: Kernel,
    /// Workload scale.
    pub scale: Scale,
    /// The resolved machine point.
    pub scenario: ScenarioSpec,
    /// Synthesis options for the FITS side.
    pub synth: SynthOptions,
    /// Skip the traced run and report the static bounds alone.
    pub static_only: bool,
    /// A replacement ISA catalog, or `None` for the shipped one.
    pub isa: Option<Arc<SpecCatalog>>,
    scenario_canonical: String,
}

impl AnalyzeRequest {
    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// A structured [`ApiError`] naming the offending field.
    pub fn from_body(body: &str) -> Result<AnalyzeRequest, ApiError> {
        let v = parse_body(body)?;
        reject_unknown(
            &v,
            "",
            &[
                "kernel",
                "scale",
                "scenario",
                "tech",
                "icache_bytes",
                "synth",
                "static_only",
                "isa",
            ],
        )?;
        let kernel = kernel_field(&v, "")?;
        let scale = scale_field(&v, "")?;
        let (scenario_canonical, scenario) = scenario_fields(&v, "")?;
        let synth = synth_field(&v, "", scenario.synth.clone())?;
        let static_only = opt_bool(&v, "", "static_only")?.unwrap_or(false);
        Ok(AnalyzeRequest {
            kernel,
            scale,
            scenario,
            synth,
            static_only,
            isa: isa_field(&v, "")?,
            scenario_canonical,
        })
    }

    /// The canonical request string (the cache/coalescing key). The traced
    /// differential is deterministic, so the body stays a pure function of
    /// this key even with `static_only = false`.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "analyze|kernel={}|n={}|{}|static={}|synth={}{}",
            self.kernel.name(),
            self.scale.n,
            self.scenario_canonical,
            self.static_only,
            synth_key(&self.synth),
            isa_suffix(self.isa.as_ref()),
        )
    }
}

/// A validated `POST /sweep` request.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// Kernels to sweep (defaults to the full suite).
    pub kernels: Vec<Kernel>,
    /// Workload scale.
    pub scale: Scale,
    /// The grid to measure.
    pub matrix: ScenarioMatrix,
    /// Synthesis options shared by every point.
    pub synth: SynthOptions,
    /// A replacement ISA catalog, or `None` for the shipped one.
    pub isa: Option<Arc<SpecCatalog>>,
    canonical: String,
}

impl SweepRequest {
    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// A structured [`ApiError`] naming the offending field.
    pub fn from_body(body: &str) -> Result<SweepRequest, ApiError> {
        let v = parse_body(body)?;
        reject_unknown(
            &v,
            "",
            &[
                "kernels",
                "scale",
                "scenario",
                "icache_bytes",
                "tech",
                "synth",
                "isa",
            ],
        )?;
        let scale = scale_field(&v, "")?;

        let kernels = match v.get("kernels") {
            None => Kernel::ALL.to_vec(),
            Some(Value::Arr(items)) => {
                let mut kernels = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let name = item.as_str().ok_or_else(|| {
                        ApiError::new("bad_type", &format!("/kernels/{i}"), "expected a string")
                    })?;
                    let k = Kernel::from_name(name).ok_or_else(|| {
                        ApiError::new(
                            "bad_value",
                            &format!("/kernels/{i}"),
                            format!("unknown kernel {name:?}"),
                        )
                    })?;
                    if kernels.contains(&k) {
                        return Err(ApiError::new(
                            "bad_value",
                            &format!("/kernels/{i}"),
                            format!("duplicate kernel {name:?}"),
                        ));
                    }
                    kernels.push(k);
                }
                if kernels.is_empty() {
                    return Err(ApiError::new(
                        "bad_value",
                        "/kernels",
                        "kernel list must not be empty",
                    ));
                }
                kernels
            }
            Some(_) => return Err(ApiError::new("bad_type", "/kernels", "expected an array")),
        };

        let preset = opt_str(&v, "", "scenario")?.unwrap_or("sa1100").to_string();
        let base = ScenarioSpec::preset(&preset).ok_or_else(|| {
            ApiError::new(
                "bad_value",
                "/scenario",
                format!(
                    "unknown scenario preset {preset:?} (presets: {})",
                    PRESET_NAMES.join(" ")
                ),
            )
        })?;

        let sizes: Vec<u32> = match v.get("icache_bytes") {
            None => vec![16 * 1024, 8 * 1024],
            Some(Value::Arr(items)) => {
                if items.is_empty() || items.len() > MAX_SWEEP_SIZES {
                    return Err(ApiError::new(
                        "bad_value",
                        "/icache_bytes",
                        format!("expected 1..={MAX_SWEEP_SIZES} sizes"),
                    ));
                }
                let mut sizes = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let n = item.as_f64().ok_or_else(|| {
                        ApiError::new(
                            "bad_type",
                            &format!("/icache_bytes/{i}"),
                            "expected a number",
                        )
                    })?;
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let bytes = n as u32;
                    if n.fract() != 0.0 || !(256.0..=16_777_216.0).contains(&n) {
                        return Err(ApiError::new(
                            "bad_value",
                            &format!("/icache_bytes/{i}"),
                            format!("expected an integer byte count in [256, 2^24], got {n}"),
                        ));
                    }
                    sizes.push(bytes);
                }
                sizes
            }
            Some(_) => {
                return Err(ApiError::new(
                    "bad_type",
                    "/icache_bytes",
                    "expected an array",
                ))
            }
        };

        let tech_names: Vec<String> = match v.get("tech") {
            None => vec![base.tech_name.clone()],
            Some(Value::Arr(items)) => {
                if items.is_empty() {
                    return Err(ApiError::new(
                        "bad_value",
                        "/tech",
                        "tech list must not be empty",
                    ));
                }
                let mut names = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let name = item.as_str().ok_or_else(|| {
                        ApiError::new("bad_type", &format!("/tech/{i}"), "expected a string")
                    })?;
                    if tech_preset(name).is_none() {
                        return Err(ApiError::new(
                            "bad_value",
                            &format!("/tech/{i}"),
                            format!(
                                "unknown tech node {name:?} (nodes: {})",
                                TECH_NAMES.join(" ")
                            ),
                        ));
                    }
                    names.push(name.to_string());
                }
                names
            }
            Some(_) => return Err(ApiError::new("bad_type", "/tech", "expected an array")),
        };

        let synth = synth_field(&v, "", base.synth.clone())?;
        let isa = isa_field(&v, "")?;
        let nodes: Vec<(String, fits_power::TechParams)> = tech_names
            .iter()
            .map(|name| {
                let params = tech_preset(name).unwrap_or_else(|| base.tech.clone());
                (name.clone(), params)
            })
            .collect();
        let matrix = ScenarioMatrix::grid(&base, &sizes, &nodes)
            .map_err(|e| ApiError::new("bad_value", "/icache_bytes", e.to_string()))?;

        let canonical = format!(
            "sweep|kernels={}|n={}|preset={}|sizes={}|tech={}|synth={}{}",
            kernels
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join("+"),
            scale.n,
            preset,
            sizes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
            tech_names.join(","),
            synth_key(&synth),
            isa_suffix(isa.as_ref()),
        );
        Ok(SweepRequest {
            kernels,
            scale,
            matrix,
            synth,
            isa,
            canonical,
        })
    }

    /// The canonical request string (the cache/coalescing key).
    #[must_use]
    pub fn canonical(&self) -> String {
        self.canonical.clone()
    }
}

/// A validated `POST /synthesize-multi` request: one *shared* FITS ISA
/// synthesized from the merged profile of a kernel set, with per-kernel
/// regression bounds, priced at the SA-1100 reference scenario.
///
/// The member list is sorted by kernel name and the weight vector is
/// canonicalized ([`fits_core::canonical_weights`]) before the cache key
/// is built, so `{a, b}` and `{b, a}` share a key, `{1, 1}` and `{2, 2}`
/// share a key, and zero-weight members vanish from both the key and the
/// response (a request with an extra zero-weight kernel *is* the smaller
/// request).
#[derive(Clone, Debug)]
pub struct SynthesizeMultiRequest {
    /// Retained member kernels, sorted by name.
    pub kernels: Vec<Kernel>,
    /// Canonical integer weights, aligned with `kernels`.
    pub weights: Vec<u64>,
    /// Workload scale.
    pub scale: Scale,
    /// Per-kernel regression bound (dynamic expansion vs. the per-app
    /// optimum).
    pub epsilon: f64,
    /// Synthesis options shared by the merged synthesis and the per-app
    /// baselines.
    pub synth: SynthOptions,
    /// A replacement ISA catalog, or `None` for the shipped one.
    pub isa: Option<Arc<SpecCatalog>>,
}

impl SynthesizeMultiRequest {
    /// Parses and validates a request body.
    ///
    /// # Errors
    ///
    /// A structured [`ApiError`] naming the offending field. Degenerate
    /// weight vectors (all-zero, negative, non-finite) are `bad_value`
    /// rejections at `/weights`, never panics.
    pub fn from_body(body: &str) -> Result<SynthesizeMultiRequest, ApiError> {
        let v = parse_body(body)?;
        reject_unknown(
            &v,
            "",
            &["kernels", "weights", "scale", "epsilon", "synth", "isa"],
        )?;
        let raw_kernels = match v.get("kernels") {
            Some(Value::Arr(items)) if !items.is_empty() => {
                let mut kernels = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    let name = item.as_str().ok_or_else(|| {
                        ApiError::new("bad_type", &format!("/kernels/{i}"), "expected a string")
                    })?;
                    let k = Kernel::from_name(name).ok_or_else(|| {
                        ApiError::new(
                            "bad_value",
                            &format!("/kernels/{i}"),
                            format!("unknown kernel {name:?}"),
                        )
                    })?;
                    if kernels.contains(&k) {
                        return Err(ApiError::new(
                            "bad_value",
                            &format!("/kernels/{i}"),
                            format!("duplicate kernel {name:?}"),
                        ));
                    }
                    kernels.push(k);
                }
                kernels
            }
            Some(Value::Arr(_)) => {
                return Err(ApiError::new(
                    "bad_value",
                    "/kernels",
                    "kernel list must not be empty",
                ))
            }
            Some(_) => return Err(ApiError::new("bad_type", "/kernels", "expected an array")),
            None => {
                return Err(ApiError::new(
                    "missing_field",
                    "/kernels",
                    "a kernel list is required",
                ))
            }
        };
        let raw_weights: Vec<f64> = match v.get("weights") {
            None => vec![1.0; raw_kernels.len()],
            Some(Value::Arr(items)) => {
                if items.len() != raw_kernels.len() {
                    return Err(ApiError::new(
                        "bad_value",
                        "/weights",
                        format!("{} weights for {} kernels", items.len(), raw_kernels.len()),
                    ));
                }
                let mut weights = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    weights.push(item.as_f64().ok_or_else(|| {
                        ApiError::new("bad_type", &format!("/weights/{i}"), "expected a number")
                    })?);
                }
                weights
            }
            Some(_) => return Err(ApiError::new("bad_type", "/weights", "expected an array")),
        };

        // Sort members by kernel name, then canonicalize the weights in
        // that order: the cache key must not depend on request spelling.
        let mut paired: Vec<(Kernel, f64)> = raw_kernels.into_iter().zip(raw_weights).collect();
        paired.sort_by_key(|(k, _)| k.name());
        let sorted_weights: Vec<f64> = paired.iter().map(|(_, w)| *w).collect();
        let canon = fits_core::canonical_weights(&sorted_weights)
            .map_err(|e| ApiError::new("bad_value", "/weights", e.to_string()))?;
        let kernels: Vec<Kernel> = paired
            .iter()
            .enumerate()
            .filter(|(i, _)| !canon.dropped.contains(i))
            .map(|(_, (k, _))| *k)
            .collect();
        // `canonical_weights` keeps dropped positions as zeros so callers
        // can line warnings up with inputs; the cache key must not.
        let weights: Vec<u64> = canon
            .weights
            .iter()
            .enumerate()
            .filter(|(i, _)| !canon.dropped.contains(i))
            .map(|(_, &w)| w)
            .collect();

        let epsilon = opt_f64(&v, "", "epsilon")?.unwrap_or(1.0);
        if !epsilon.is_finite() || !(-1.0..=100.0).contains(&epsilon) {
            return Err(ApiError::new(
                "bad_value",
                "/epsilon",
                format!("expected a number in [-1, 100], got {epsilon}"),
            ));
        }

        Ok(SynthesizeMultiRequest {
            kernels,
            weights,
            scale: scale_field(&v, "")?,
            epsilon,
            synth: synth_field(&v, "", SynthOptions::default())?,
            isa: isa_field(&v, "")?,
        })
    }

    /// The canonical request string (the cache/coalescing key): sorted
    /// member names plus the *canonical* weight vector, so proportional
    /// weight spellings coalesce onto one execution.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "synthesize-multi|kernels={}|w={}|n={}|eps={:.6}|synth={}{}",
            self.kernels
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join("+"),
            self.weights
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
            self.scale.n,
            self.epsilon,
            synth_key(&self.synth),
            isa_suffix(self.isa.as_ref()),
        )
    }
}

// ---------------------------------------------------------------- responses

fn saving(ours: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        1.0 - ours / base
    }
}

fn synth_json(options: &SynthOptions) -> String {
    format!(
        "{{\"toggle_aware\": {}, \"reg_bits\": {}, \"space_budget\": {:.6}, \"max_dict_bits\": {}}}",
        options.toggle_aware, options.reg_bits, options.space_budget, options.max_dict_bits,
    )
}

/// Computes the `/synthesize` response body — a pure function of the
/// request given a deterministic pipeline, shared by the daemon and the
/// differential tests.
///
/// # Errors
///
/// Propagates pipeline failures ([`ExperimentError`]), reported as 500s.
pub fn synthesize_body(
    artifacts: &Artifacts,
    req: &SynthesizeRequest,
) -> Result<String, ExperimentError> {
    let program = artifacts.program(req.kernel, req.scale)?;
    let flow = artifacts.flow(req.kernel, req.scale)?;
    let thumb = artifacts.thumb(req.kernel, req.scale)?;
    Ok(format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"synthesize\",\n  \
         \"kernel\": \"{kernel}\",\n  \"scale_n\": {n},\n  \"synth\": {synth},\n  \
         \"arm_code_bytes\": {arm},\n  \"thumb_code_bytes\": {thumb},\n  \
         \"fits_code_bytes\": {fits},\n  \"code_ratio\": {ratio:.6},\n  \
         \"mapping_static\": {ms:.6},\n  \"mapping_dynamic\": {md:.6},\n  \
         \"config_bits\": {bits},\n  \"iterations\": {iters}\n}}\n",
        kernel = escape(req.kernel.name()),
        n = req.scale.n,
        synth = synth_json(&req.synth),
        arm = program.code_bytes(),
        thumb = thumb.code_bytes(),
        fits = flow.fits.code_bytes(),
        ratio = flow.code_ratio(program.code_bytes()),
        ms = flow.mapping.static_one_to_one_rate(),
        md = flow.dynamic_rate(),
        bits = flow.fits.config.config_bits(),
        iters = flow.iterations,
    ))
}

/// Computes the `/simulate` response body (both ISAs at one machine
/// point, per-ISA numbers in the sweep schema's shape).
///
/// # Errors
///
/// Propagates pipeline failures ([`ExperimentError`]), reported as 500s.
pub fn simulate_body(
    artifacts: &Artifacts,
    req: &SimulateRequest,
) -> Result<String, ExperimentError> {
    let matrix = ScenarioMatrix {
        scenarios: vec![req.scenario.clone()],
    };
    let mut runs = run_kernel_scenarios(artifacts, req.kernel, req.scale, &matrix)?;
    let run = runs.remove(0);
    let arm = fits_bench::IsaAggregate::from_run(&run.arm);
    let fits = fits_bench::IsaAggregate::from_run(&run.fits);
    Ok(format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"simulate\",\n  \
         \"kernel\": \"{kernel}\",\n  \"scale_n\": {n},\n  \"scenario\": \"{id}\",\n  \
         \"icache_bytes\": {bytes},\n  \"tech\": \"{tech}\",\n  \"arm\": {arm},\n  \
         \"fits\": {fits},\n  \"icache_saving\": {isave:.6},\n  \"chip_saving\": {csave:.6}\n}}\n",
        kernel = escape(req.kernel.name()),
        n = req.scale.n,
        id = escape(run.scenario.id()),
        bytes = run.scenario.icache.size_bytes,
        tech = escape(&run.scenario.tech_name),
        arm = isa_json(&arm),
        fits = isa_json(&fits),
        isave = saving(fits.icache_j(), arm.icache_j()),
        csave = saving(fits.chip_j, arm.chip_j),
    ))
}

/// Computes the `/analyze` response body: the `CA` abstract-interpretation
/// cache analysis for one kernel, embedding the full
/// `powerfits-cache-bounds-v1` report. The traced differential run is
/// deterministic, so the body is a pure function of the request and safe
/// to cache.
///
/// # Errors
///
/// Propagates pipeline failures ([`ExperimentError`]), reported as 500s.
pub fn analyze_body(
    artifacts: &Artifacts,
    req: &AnalyzeRequest,
) -> Result<String, ExperimentError> {
    let report = cache_bounds_report_with(
        artifacts,
        &[req.kernel],
        &req.scenario,
        req.scale,
        !req.static_only,
    )?;
    Ok(format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"analyze\",\n  \
         \"kernel\": \"{kernel}\",\n  \"scale_n\": {n},\n  \"scenario\": \"{id}\",\n  \
         \"traced\": {traced},\n  \"sound\": {sound},\n  \"report\": {report}\n}}\n",
        kernel = escape(req.kernel.name()),
        n = req.scale.n,
        id = escape(req.scenario.id()),
        traced = !req.static_only,
        sound = report.is_sound(),
        report = report.render_json(),
    ))
}

/// Computes the `/sweep` response body. Unlike the `fitssweep` archive
/// this carries no provenance stamp — responses must stay pure functions
/// of the request for the cache to be sound.
///
/// # Errors
///
/// Propagates pipeline failures ([`ExperimentError`]), reported as 500s.
pub fn sweep_body(artifacts: &Artifacts, req: &SweepRequest) -> Result<String, ExperimentError> {
    let results = fits_bench::run_sweep_with(artifacts, &req.kernels, req.scale, &req.matrix)?;
    let kernels: Vec<String> = results
        .kernels
        .iter()
        .map(|k| format!("\"{}\"", escape(k.name())))
        .collect();
    let sizes: Vec<String> = results
        .icache_sizes
        .iter()
        .map(ToString::to_string)
        .collect();
    let tech: Vec<String> = results
        .tech_names
        .iter()
        .map(|t| format!("\"{}\"", escape(t)))
        .collect();
    let scenarios: Vec<String> = results
        .points
        .iter()
        .map(|p| {
            format!(
                "    {{\"id\": \"{id}\", \"icache_bytes\": {bytes}, \"tech\": \"{tech}\", \
                 \"arm\": {arm}, \"fits\": {fits}, \"icache_saving\": {isave:.6}, \
                 \"chip_saving\": {csave:.6}}}",
                id = escape(&p.id),
                bytes = p.icache_bytes,
                tech = escape(&p.tech_name),
                arm = isa_json(&p.arm),
                fits = isa_json(&p.fits),
                isave = p.icache_saving(),
                csave = p.chip_saving(),
            )
        })
        .collect();
    Ok(format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"sweep\",\n  \"scale_n\": {n},\n  \
         \"executions_per_kernel\": {execs},\n  \"kernels\": [{kernels}],\n  \
         \"grid\": {{\"icache_bytes\": [{sizes}], \"tech\": [{tech}]}},\n  \
         \"scenarios\": [\n{scenarios}\n  ]\n}}\n",
        n = results.scale.n,
        execs = results.executions_per_kernel,
        kernels = kernels.join(", "),
        sizes = sizes.join(", "),
        tech = tech.join(", "),
        scenarios = scenarios.join(",\n"),
    ))
}

/// Computes the `/synthesize-multi` response body: one shared ISA over
/// the member set, each member priced at the SA-1100 reference scenario
/// through [`price_shared_member`] — the *same* compiled-replay path the
/// `fitspareto` library report takes, so service and library numbers are
/// bit-identical for equal inputs.
///
/// A candidate rejected by the per-kernel regression bound is **not** an
/// internal error: the rejection is a deterministic function of the
/// request, so it renders as a 200 body with `"accepted": false` (and is
/// cached and coalesced like any other result).
///
/// # Errors
///
/// Propagates pipeline failures ([`ExperimentError`]), reported as 500s.
pub fn synthesize_multi_body(
    artifacts: &Artifacts,
    req: &SynthesizeMultiRequest,
) -> Result<String, ExperimentError> {
    let scenario = ScenarioSpec::sa1100();
    let head = format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"synthesize-multi\",\n  \
         \"kernels\": [{kernels}],\n  \"weights\": [{weights}],\n  \"scale_n\": {n},\n  \
         \"epsilon\": {eps:.6},\n  \"synth\": {synth}",
        kernels = req
            .kernels
            .iter()
            .map(|k| format!("\"{}\"", escape(k.name())))
            .collect::<Vec<_>>()
            .join(", "),
        weights = req
            .weights
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        n = req.scale.n,
        eps = req.epsilon,
        synth = synth_json(&req.synth),
    );

    let programs: Vec<_> = req
        .kernels
        .iter()
        .map(|&k| artifacts.program(k, req.scale))
        .collect::<Result<_, _>>()?;
    let profiles: Vec<_> = req
        .kernels
        .iter()
        .map(|&k| artifacts.profile(k, req.scale))
        .collect::<Result<_, _>>()?;
    let members: Vec<MultiMember<'_>> = req
        .kernels
        .iter()
        .zip(&programs)
        .zip(&profiles)
        .map(|((kernel, program), profile)| MultiMember {
            name: kernel.name(),
            program,
            profile,
        })
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let weights: Vec<f64> = req.weights.iter().map(|&w| w as f64).collect();
    let options = MultiOptions {
        synth: req.synth.clone(),
        epsilon: req.epsilon,
        ..MultiOptions::default()
    };

    let outcome = match synthesize_multi(&members, &weights, &options) {
        Ok(outcome) => outcome,
        Err(MultiError::RegressionBound {
            member,
            solo,
            shared,
            epsilon,
        }) => {
            return Ok(format!(
                "{head},\n  \"accepted\": false,\n  \"rejected\": {{\"member\": \"{m}\", \
                 \"solo_expansion\": {solo:.6}, \"shared_expansion\": {shared:.6}, \
                 \"epsilon\": {epsilon:.6}}}\n}}\n",
                m = escape(&member),
            ))
        }
        Err(e) => return Err(ExperimentError::Multi(e)),
    };

    // Per-member pricing: the shared binary through the same replay path
    // as the library report, the solo baseline from the shared artifact
    // cache.
    let matrix = ScenarioMatrix {
        scenarios: vec![scenario.clone()],
    };
    let mut member_bodies = Vec::with_capacity(outcome.members.len());
    for (kernel, m) in req.kernels.iter().zip(&outcome.members) {
        let shared_run = price_shared_member(&m.translation.fits, &scenario)?;
        let mut solo_runs = run_kernel_scenarios(artifacts, *kernel, req.scale, &matrix)?;
        let solo_run = solo_runs.remove(0).fits;
        let shared = fits_bench::IsaAggregate::from_run(&shared_run);
        let solo = fits_bench::IsaAggregate::from_run(&solo_run);
        member_bodies.push(format!(
            "    {{\"kernel\": \"{kernel}\", \"solo_code_bytes\": {scb}, \
             \"shared_code_bytes\": {hcb}, \"regression\": {reg:.6}, \
             \"solo\": {solo}, \"shared\": {shared}}}",
            kernel = escape(&m.name),
            scb = m.solo_code_bytes,
            hcb = m.translation.fits.code_bytes(),
            reg = m.regression,
            solo = isa_json(&solo),
            shared = isa_json(&shared),
        ));
    }

    Ok(format!(
        "{head},\n  \"accepted\": true,\n  \"merged_profile\": \"{hash}\",\n  \
         \"shared\": {{\"code_bytes\": {code}, \"config_bits\": {bits}, \
         \"decoder_slots\": {slots}, \"iterations\": {iters}}},\n  \
         \"members\": [\n{members}\n  ]\n}}\n",
        hash = escape(&outcome.merged_hash),
        code = outcome.shared_code_bytes(),
        bits = outcome.synthesis.config.config_bits(),
        slots = outcome.synthesis.config.ops.len(),
        iters = outcome.iterations,
        members = member_bodies.join(",\n"),
    ))
}

/// Version of the `powerfits-serve-v1` response contract reported by
/// `/healthz` (bumped when response shapes change within the same schema
/// string; `fitsctl wait` asserts it).
pub const SCHEMA_VERSION: u64 = 3;

/// The `GET /healthz` body. `uptime_s` is seconds since the daemon
/// started; `commit` is the build's git revision (or `"unknown"`).
#[must_use]
pub fn healthz_body(uptime_s: u64, commit: &str) -> String {
    let presets: Vec<String> = PRESET_NAMES
        .iter()
        .map(|p| format!("\"{}\"", escape(p)))
        .collect();
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"healthz\",\n  \
         \"status\": \"ok\",\n  \"schema_version\": {SCHEMA_VERSION},\n  \
         \"uptime_s\": {uptime_s},\n  \"commit\": \"{}\",\n  \
         \"kernels\": {},\n  \"presets\": [{}]\n}}\n",
        escape(commit),
        Kernel::ALL.len(),
        presets.join(", "),
    )
}

/// The 500 body for a pipeline failure.
#[must_use]
pub fn internal_error_body(err: &ExperimentError) -> String {
    format!(
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"endpoint\": \"error\",\n  \"error\": {{\
         \"code\": \"internal\", \"pointer\": \"\", \"message\": \"{}\"}}\n}}\n",
        escape(&err.to_string()),
    )
}

// ---------------------------------------------------------------- validation

fn need_str(ctx: &str, v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Str(_)) => Ok(()),
        _ => Err(format!("{ctx}: missing string field \"{key}\"")),
    }
}

fn need_num(ctx: &str, v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Num(_)) => Ok(()),
        _ => Err(format!("{ctx}: missing number field \"{key}\"")),
    }
}

fn need_isa(ctx: &str, v: &Value, key: &str) -> Result<(), String> {
    let side = v
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing object field \"{key}\""))?;
    for field in [
        "cycles",
        "icache_j",
        "icache_switching_j",
        "icache_internal_j",
        "icache_leakage_j",
        "chip_j",
        "peak_w",
    ] {
        need_num(&format!("{ctx} \"{key}\""), side, field)?;
    }
    Ok(())
}

/// Validates any `fitsd` response body against the `powerfits-serve-v1`
/// schema and returns the endpoint it claims to be. `fitsctl` runs this
/// over every response it receives; the loopback tests and the CI smoke
/// job reuse it.
///
/// # Errors
///
/// A description of the first violation.
pub fn validate_serve_json(text: &str) -> Result<String, String> {
    let v = parse(text).map_err(|e| e.to_string())?;
    match v.get("schema").and_then(Value::as_str) {
        Some(SCHEMA) => {}
        other => return Err(format!("schema must be \"{SCHEMA}\", got {other:?}")),
    }
    let endpoint = v
        .get("endpoint")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string field \"endpoint\"".to_string())?
        .to_string();
    match endpoint.as_str() {
        "healthz" => {
            need_str("healthz", &v, "status")?;
            if v.get("status").and_then(Value::as_str) != Some("ok") {
                return Err("healthz status is not \"ok\"".to_string());
            }
            need_num("healthz", &v, "kernels")?;
            need_num("healthz", &v, "schema_version")?;
            need_num("healthz", &v, "uptime_s")?;
            need_str("healthz", &v, "commit")?;
        }
        "metrics" => {
            for key in [
                "requests",
                "ok",
                "client_errors",
                "server_errors",
                "rejected",
                "cache_hits",
                "coalesced_joins",
                "executions",
                "cache_entries",
                "queue_depth",
                "queue_capacity",
                "workers",
            ] {
                need_num("metrics", &v, key)?;
            }
            need_num("metrics", &v, "uptime_s")?;
            let lat = v
                .get("latency_us")
                .ok_or_else(|| "metrics: missing object field \"latency_us\"".to_string())?;
            for key in ["count", "mean", "p50", "p99", "max"] {
                need_num("metrics latency_us", lat, key)?;
            }
            let log = v
                .get("log")
                .ok_or_else(|| "metrics: missing object field \"log\"".to_string())?;
            need_num("metrics log", log, "emitted")?;
            need_num("metrics log", log, "dropped")?;
            match v.get("window") {
                Some(Value::Arr(cells)) => {
                    for (i, cell) in cells.iter().enumerate() {
                        let ctx = format!("metrics window {i}");
                        need_str(&ctx, cell, "endpoint")?;
                        need_str(&ctx, cell, "class")?;
                        for key in ["count", "rate_per_sec", "mean", "p50", "p99", "max"] {
                            need_num(&ctx, cell, key)?;
                        }
                    }
                }
                _ => return Err("metrics: missing array field \"window\"".to_string()),
            }
            let gauges = v
                .get("gauges")
                .ok_or_else(|| "metrics: missing object field \"gauges\"".to_string())?;
            for name in ["queue_depth", "cache_entries"] {
                let g = gauges
                    .get(name)
                    .ok_or_else(|| format!("metrics gauges: missing object \"{name}\""))?;
                for key in ["last", "min", "max", "mean", "samples"] {
                    need_num(&format!("metrics gauge {name}"), g, key)?;
                }
            }
            match v.get("spans") {
                Some(Value::Arr(spans)) => {
                    for (i, span) in spans.iter().enumerate() {
                        let ctx = format!("metrics span {i}");
                        need_str(&ctx, span, "path")?;
                        need_num(&ctx, span, "ms")?;
                        need_num(&ctx, span, "count")?;
                    }
                }
                _ => return Err("metrics: missing array field \"spans\"".to_string()),
            }
        }
        "synthesize" => {
            need_str("synthesize", &v, "kernel")?;
            for key in [
                "scale_n",
                "arm_code_bytes",
                "thumb_code_bytes",
                "fits_code_bytes",
                "code_ratio",
                "mapping_static",
                "mapping_dynamic",
                "config_bits",
                "iterations",
            ] {
                need_num("synthesize", &v, key)?;
            }
        }
        "simulate" => {
            need_str("simulate", &v, "kernel")?;
            need_str("simulate", &v, "scenario")?;
            need_str("simulate", &v, "tech")?;
            for key in ["scale_n", "icache_bytes", "icache_saving", "chip_saving"] {
                need_num("simulate", &v, key)?;
            }
            need_isa("simulate", &v, "arm")?;
            need_isa("simulate", &v, "fits")?;
        }
        "sweep" => {
            need_num("sweep", &v, "scale_n")?;
            need_num("sweep", &v, "executions_per_kernel")?;
            let scenarios = match v.get("scenarios") {
                Some(Value::Arr(items)) if !items.is_empty() => items,
                _ => return Err("sweep: missing non-empty array \"scenarios\"".to_string()),
            };
            for (i, s) in scenarios.iter().enumerate() {
                let ctx = format!("sweep scenario {i}");
                need_str(&ctx, s, "id")?;
                need_isa(&ctx, s, "arm")?;
                need_isa(&ctx, s, "fits")?;
            }
        }
        "synthesize-multi" => {
            for key in ["kernels", "weights"] {
                match v.get(key) {
                    Some(Value::Arr(items)) if !items.is_empty() => {}
                    _ => {
                        return Err(format!(
                            "synthesize-multi: missing non-empty array \"{key}\""
                        ))
                    }
                }
            }
            need_num("synthesize-multi", &v, "scale_n")?;
            if !matches!(v.get("epsilon"), Some(Value::Num(_))) {
                return Err("synthesize-multi: missing number field \"epsilon\"".to_string());
            }
            match v.get("accepted") {
                Some(Value::Bool(true)) => {
                    need_str("synthesize-multi", &v, "merged_profile")?;
                    let shared = v.get("shared").ok_or_else(|| {
                        "synthesize-multi: missing object field \"shared\"".to_string()
                    })?;
                    for key in ["code_bytes", "config_bits", "decoder_slots", "iterations"] {
                        need_num("synthesize-multi shared", shared, key)?;
                    }
                    let members = match v.get("members") {
                        Some(Value::Arr(items)) if !items.is_empty() => items,
                        _ => {
                            return Err(
                                "synthesize-multi: missing non-empty array \"members\"".to_string()
                            )
                        }
                    };
                    for (i, m) in members.iter().enumerate() {
                        let ctx = format!("synthesize-multi member {i}");
                        need_str(&ctx, m, "kernel")?;
                        for key in ["solo_code_bytes", "shared_code_bytes", "regression"] {
                            need_num(&ctx, m, key)?;
                        }
                        need_isa(&ctx, m, "solo")?;
                        need_isa(&ctx, m, "shared")?;
                    }
                }
                Some(Value::Bool(false)) => {
                    let rejected = v.get("rejected").ok_or_else(|| {
                        "synthesize-multi: missing object field \"rejected\"".to_string()
                    })?;
                    need_str("synthesize-multi rejected", rejected, "member")?;
                    for key in ["solo_expansion", "shared_expansion", "epsilon"] {
                        if !matches!(rejected.get(key), Some(Value::Num(_))) {
                            return Err(format!(
                                "synthesize-multi rejected: missing number field \"{key}\""
                            ));
                        }
                    }
                }
                _ => return Err("synthesize-multi: missing boolean field \"accepted\"".to_string()),
            }
        }
        "analyze" => {
            need_str("analyze", &v, "kernel")?;
            need_str("analyze", &v, "scenario")?;
            need_num("analyze", &v, "scale_n")?;
            let sound = match v.get("sound") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("analyze: missing boolean field \"sound\"".to_string()),
            };
            if !matches!(v.get("traced"), Some(Value::Bool(_))) {
                return Err("analyze: missing boolean field \"traced\"".to_string());
            }
            let report = v
                .get("report")
                .ok_or_else(|| "analyze: missing object field \"report\"".to_string())?;
            if report.get("schema").and_then(Value::as_str) != Some("powerfits-cache-bounds-v1") {
                return Err(
                    "analyze: embedded report schema is not \"powerfits-cache-bounds-v1\""
                        .to_string(),
                );
            }
            match report.get("kernels") {
                Some(Value::Arr(items)) if !items.is_empty() => {
                    for (i, k) in items.iter().enumerate() {
                        let ctx = format!("analyze report kernel {i}");
                        need_str(&ctx, k, "kernel")?;
                        for side in ["arm", "fits"] {
                            let stream = k
                                .get(side)
                                .ok_or_else(|| format!("{ctx}: missing object field \"{side}\""))?;
                            need_num(&format!("{ctx} \"{side}\""), stream, "audit_findings")?;
                        }
                    }
                }
                _ => return Err("analyze: embedded report has no kernels".to_string()),
            }
            match report.get("sound") {
                Some(Value::Bool(b)) if *b == sound => {}
                _ => {
                    return Err("analyze: \"sound\" disagrees with the embedded report".to_string())
                }
            }
        }
        "error" => {
            let err = v
                .get("error")
                .ok_or_else(|| "error: missing object field \"error\"".to_string())?;
            need_str("error", err, "code")?;
            need_str("error", err, "pointer")?;
            need_str("error", err, "message")?;
        }
        other => return Err(format!("unknown endpoint \"{other}\"")),
    }
    Ok(endpoint)
}

/// Validates a `GET /debug/flight` dump against `powerfits-flight-v1` and
/// returns the number of slowest-request exemplars it carries. Span trees
/// are checked recursively (`name`/`us`/`count`/`children` at every node).
///
/// # Errors
///
/// A description of the first violation.
pub fn validate_flight_json(text: &str) -> Result<usize, String> {
    fn check_span(ctx: &str, span: &Value) -> Result<(), String> {
        need_str(ctx, span, "name")?;
        need_num(ctx, span, "us")?;
        need_num(ctx, span, "count")?;
        match span.get("children") {
            Some(Value::Arr(children)) => {
                for child in children {
                    check_span(ctx, child)?;
                }
                Ok(())
            }
            _ => Err(format!("{ctx}: missing array field \"children\"")),
        }
    }
    fn check_summary(ctx: &str, s: &Value) -> Result<(), String> {
        for key in ["seq", "status", "us"] {
            need_num(ctx, s, key)?;
        }
        for key in ["trace", "method", "endpoint", "cache"] {
            need_str(ctx, s, key)?;
        }
        Ok(())
    }
    let v = parse(text).map_err(|e| e.to_string())?;
    match v.get("schema").and_then(Value::as_str) {
        Some("powerfits-flight-v1") => {}
        other => {
            return Err(format!(
                "flight schema must be \"powerfits-flight-v1\", got {other:?}"
            ))
        }
    }
    need_num("flight", &v, "total")?;
    match v.get("recent") {
        Some(Value::Arr(items)) => {
            for (i, s) in items.iter().enumerate() {
                check_summary(&format!("flight recent {i}"), s)?;
            }
        }
        _ => return Err("flight: missing array field \"recent\"".to_string()),
    }
    let slowest = match v.get("slowest") {
        Some(Value::Arr(items)) => items,
        _ => return Err("flight: missing array field \"slowest\"".to_string()),
    };
    for (i, s) in slowest.iter().enumerate() {
        let ctx = format!("flight slowest {i}");
        check_summary(&ctx, s)?;
        match s.get("spans") {
            Some(Value::Arr(spans)) => {
                for span in spans {
                    check_span(&ctx, span)?;
                }
            }
            _ => return Err(format!("{ctx}: missing array field \"spans\"")),
        }
    }
    Ok(slowest.len())
}

/// Dispatches a parsed POST request: canonical key plus the computation to
/// run on miss. The server's cache/coalesce layer wraps this.
pub enum PostRequest {
    /// `POST /synthesize`.
    Synthesize(SynthesizeRequest),
    /// `POST /simulate`.
    Simulate(Box<SimulateRequest>),
    /// `POST /analyze`.
    Analyze(Box<AnalyzeRequest>),
    /// `POST /sweep`.
    Sweep(SweepRequest),
    /// `POST /synthesize-multi`.
    SynthesizeMulti(SynthesizeMultiRequest),
}

impl PostRequest {
    /// Parses the body for `target` (`"/synthesize"` etc.).
    ///
    /// # Errors
    ///
    /// A structured [`ApiError`]; `None` canonical target returns
    /// `Err(None)`-free: unknown targets are handled by the router before
    /// this is called.
    pub fn from_target(target: &str, body: &str) -> Result<Option<PostRequest>, ApiError> {
        match target {
            "/synthesize" => Ok(Some(PostRequest::Synthesize(SynthesizeRequest::from_body(
                body,
            )?))),
            "/simulate" => Ok(Some(PostRequest::Simulate(Box::new(
                SimulateRequest::from_body(body)?,
            )))),
            "/analyze" => Ok(Some(PostRequest::Analyze(Box::new(
                AnalyzeRequest::from_body(body)?,
            )))),
            "/sweep" => Ok(Some(PostRequest::Sweep(SweepRequest::from_body(body)?))),
            "/synthesize-multi" => Ok(Some(PostRequest::SynthesizeMulti(
                SynthesizeMultiRequest::from_body(body)?,
            ))),
            _ => Ok(None),
        }
    }

    /// The canonical request string.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            PostRequest::Synthesize(r) => r.canonical(),
            PostRequest::Simulate(r) => r.canonical(),
            PostRequest::Analyze(r) => r.canonical(),
            PostRequest::Sweep(r) => r.canonical(),
            PostRequest::SynthesizeMulti(r) => r.canonical(),
        }
    }

    /// The synthesis options of the request (selects the [`Artifacts`]
    /// cache in the pool).
    #[must_use]
    pub fn synth(&self) -> &SynthOptions {
        match self {
            PostRequest::Synthesize(r) => &r.synth,
            PostRequest::Simulate(r) => &r.synth,
            PostRequest::Analyze(r) => &r.synth,
            PostRequest::Sweep(r) => &r.synth,
            PostRequest::SynthesizeMulti(r) => &r.synth,
        }
    }

    /// The replacement ISA catalog of the request, if any (selects the
    /// [`Artifacts`] cache in the pool together with
    /// [`PostRequest::synth`]).
    #[must_use]
    pub fn isa(&self) -> Option<&Arc<SpecCatalog>> {
        match self {
            PostRequest::Synthesize(r) => r.isa.as_ref(),
            PostRequest::Simulate(r) => r.isa.as_ref(),
            PostRequest::Analyze(r) => r.isa.as_ref(),
            PostRequest::Sweep(r) => r.isa.as_ref(),
            PostRequest::SynthesizeMulti(r) => r.isa.as_ref(),
        }
    }

    /// Runs the computation against an artifact cache configured for
    /// [`PostRequest::synth`].
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures ([`ExperimentError`]).
    pub fn compute(&self, artifacts: &Artifacts) -> Result<String, ExperimentError> {
        match self {
            PostRequest::Synthesize(r) => synthesize_body(artifacts, r),
            PostRequest::Simulate(r) => simulate_body(artifacts, r),
            PostRequest::Analyze(r) => analyze_body(artifacts, r),
            PostRequest::Sweep(r) => sweep_body(artifacts, r),
            PostRequest::SynthesizeMulti(r) => synthesize_multi_body(artifacts, r),
        }
    }
}

/// Shared artifact-pool handle the server threads use.
pub type SharedArtifacts = Arc<fits_bench::ArtifactsPool>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_parse_from_an_empty_body() {
        let req = SynthesizeRequest::from_body("{\"kernel\": \"crc32\"}").unwrap();
        assert_eq!(req.kernel, Kernel::Crc32);
        assert_eq!(req.scale.n, Scale::test().n);
        assert_eq!(
            req.canonical(),
            "synthesize|kernel=crc32|n=64|synth=toggle:1,reg:4,space:1.000000,dict:6"
        );
        let sim = SimulateRequest::from_body("{\"kernel\": \"sha\"}").unwrap();
        assert_eq!(sim.scenario.id(), "sa1100-i16k");
        let sweep = SweepRequest::from_body("").unwrap();
        assert_eq!(sweep.kernels.len(), Kernel::ALL.len());
        assert_eq!(sweep.matrix.len(), 2, "default grid: two sizes, one node");
    }

    #[test]
    fn structured_errors_point_at_the_offending_field() {
        let err = SynthesizeRequest::from_body("{\"kernel\": \"nope\"}").unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/kernel"));
        let err = SynthesizeRequest::from_body("{}").unwrap_err();
        assert_eq!(
            (err.code, err.pointer.as_str()),
            ("missing_field", "/kernel")
        );
        let err = SynthesizeRequest::from_body("not json").unwrap_err();
        assert_eq!(err.code, "parse");
        let err = SynthesizeRequest::from_body("{\"kernel\": \"crc32\", \"scal\": 2}").unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("unknown_field", "/scal"));
        let err = SynthesizeRequest::from_body("{\"kernel\": \"crc32\", \"scale\": 9999999}")
            .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/scale"));
        let err =
            SynthesizeRequest::from_body("{\"kernel\": \"crc32\", \"synth\": {\"reg_bits\": 7}}")
                .unwrap_err();
        assert_eq!(
            (err.code, err.pointer.as_str()),
            ("bad_value", "/synth/reg_bits")
        );
        let err =
            SimulateRequest::from_body("{\"kernel\": \"crc32\", \"tech\": \"3nm\"}").unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/tech"));
        let err = SimulateRequest::from_body("{\"kernel\": \"crc32\", \"icache_bytes\": 1000}")
            .unwrap_err();
        assert_eq!(err.pointer, "/icache_bytes");
        // Every rejection renders as a schema-valid error body.
        assert_eq!(validate_serve_json(&err.body()).unwrap(), "error");
    }

    #[test]
    fn canonical_keys_separate_distinct_requests() {
        let a = SimulateRequest::from_body("{\"kernel\": \"crc32\"}").unwrap();
        let b = SimulateRequest::from_body(
            "{\"kernel\": \"crc32\", \"scenario\": \"small-embedded\", \"icache_bytes\": 8192}",
        )
        .unwrap();
        let c =
            SimulateRequest::from_body("{\"kernel\": \"crc32\", \"icache_bytes\": 8192}").unwrap();
        assert_ne!(a.canonical(), b.canonical());
        // Same derived id family would collide; the canonical key must not.
        assert_ne!(b.canonical(), c.canonical());
        // Identical requests written with different whitespace/field order
        // share a key.
        let d = SimulateRequest::from_body("{  \"icache_bytes\": 8192, \"kernel\": \"crc32\" }")
            .unwrap();
        assert_eq!(c.canonical(), d.canonical());
    }

    #[test]
    fn isa_field_selects_and_keys_the_catalog() {
        use fits_isa::spec::AR32_SPEC_TEXT;
        // "builtin", an omitted field, and text hash-identical to the
        // shipped spec all share the default canonical key.
        let default = SynthesizeRequest::from_body("{\"kernel\": \"crc32\"}").unwrap();
        let named =
            SynthesizeRequest::from_body("{\"kernel\": \"crc32\", \"isa\": \"builtin\"}").unwrap();
        assert!(named.isa.is_none());
        assert_eq!(default.canonical(), named.canonical());
        let verbatim = SynthesizeRequest::from_body(&format!(
            "{{\"kernel\": \"crc32\", \"isa\": \"{}\"}}",
            escape(AR32_SPEC_TEXT)
        ))
        .unwrap();
        assert!(verbatim.isa.is_none());
        assert_eq!(verbatim.canonical(), default.canonical());
        // A respelled document is a different machine description: it gets
        // its own catalog and a content-hashed canonical key.
        let respelled = AR32_SPEC_TEXT.replace(
            "# --- branches and traps ---",
            "# --- branches and traps (respelled) ---",
        );
        assert_ne!(respelled, AR32_SPEC_TEXT, "mutation needle went stale");
        let custom = SynthesizeRequest::from_body(&format!(
            "{{\"kernel\": \"crc32\", \"isa\": \"{}\"}}",
            escape(&respelled)
        ))
        .unwrap();
        let catalog = custom.isa.clone().expect("a custom catalog");
        assert!(custom
            .canonical()
            .contains(&format!("|isa={}", catalog.hash_hex())));
        assert_ne!(custom.canonical(), default.canonical());
        // The other three endpoints key on it the same way.
        let sim = SimulateRequest::from_body(&format!(
            "{{\"kernel\": \"crc32\", \"isa\": \"{}\"}}",
            escape(&respelled)
        ))
        .unwrap();
        assert!(sim.canonical().contains("|isa="));
        let sweep = SweepRequest::from_body(&format!(
            "{{\"kernels\": [\"crc32\"], \"isa\": \"{}\"}}",
            escape(&respelled)
        ))
        .unwrap();
        assert!(sweep.canonical().contains("|isa="));
    }

    #[test]
    fn bad_isa_specs_are_rejected_before_any_work() {
        use fits_isa::spec::{AR32_SPEC_TEXT, T16_SPEC_TEXT};
        // Unparseable text is a structured 400 at /isa.
        let err =
            SynthesizeRequest::from_body("{\"kernel\": \"crc32\", \"isa\": \"isa broken {\"}")
                .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/isa"));
        // A 16-bit spec cannot replace the 32-bit execution ISA.
        let err = SynthesizeRequest::from_body(&format!(
            "{{\"kernel\": \"crc32\", \"isa\": \"{}\"}}",
            escape(T16_SPEC_TEXT)
        ))
        .unwrap_err();
        assert!(err.message.contains("word-width"), "{}", err.message);
        // A spec the ISA lint family rejects never reaches the pipeline.
        let unbound = AR32_SPEC_TEXT.replace("form swi", "form swj");
        let err = SynthesizeRequest::from_body(&format!(
            "{{\"kernel\": \"crc32\", \"isa\": \"{}\"}}",
            escape(&unbound)
        ))
        .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/isa"));
        assert!(err.message.contains("ISA004"), "{}", err.message);
        assert_eq!(validate_serve_json(&err.body()).unwrap(), "error");
    }

    #[test]
    fn sweep_request_builds_the_grid() {
        let req = SweepRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"scale\": 64, \
             \"icache_bytes\": [16384, 8192], \"tech\": [\"sa1100\", \"65nm\"]}",
        )
        .unwrap();
        assert_eq!(req.kernels, vec![Kernel::Crc32, Kernel::Sha]);
        assert_eq!(req.matrix.len(), 4);
        assert!(req.canonical().contains("kernels=crc32+sha"));
        let err = SweepRequest::from_body("{\"kernels\": [\"crc32\", \"crc32\"]}").unwrap_err();
        assert_eq!(err.pointer, "/kernels/1");
    }

    #[test]
    fn healthz_and_errors_validate() {
        let body = healthz_body(42, "deadbeef");
        assert_eq!(validate_serve_json(&body).unwrap(), "healthz");
        assert!(body.contains("\"uptime_s\": 42"));
        assert!(body.contains("\"commit\": \"deadbeef\""));
        assert!(body.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(validate_serve_json("{\"schema\": \"other\"}").is_err());
        assert!(validate_serve_json("{}").is_err());
    }

    #[test]
    fn flight_dumps_validate() {
        let fr = fits_obs::FlightRecorder::new(4, 2);
        fr.record(
            fits_obs::RequestSummary {
                trace: "t1".to_string(),
                method: "POST".to_string(),
                endpoint: "synthesize".to_string(),
                status: 200,
                cache: "miss".to_string(),
                us: 1500,
                ..fits_obs::RequestSummary::default()
            },
            vec![fits_obs::Span {
                name: "execute".to_string(),
                nanos: 1_400_000,
                count: 1,
                children: Vec::new(),
            }],
        );
        assert_eq!(validate_flight_json(&fr.render_json()).unwrap(), 1);
        assert!(validate_flight_json("{}").is_err());
        assert!(validate_flight_json("{\"schema\": \"powerfits-flight-v1\"}").is_err());
    }

    #[test]
    fn analyze_request_parses_and_keys_on_the_trace_mode() {
        let traced = AnalyzeRequest::from_body("{\"kernel\": \"crc32\"}").unwrap();
        assert!(!traced.static_only);
        assert_eq!(traced.scenario.id(), "sa1100-i16k");
        let fast =
            AnalyzeRequest::from_body("{\"kernel\": \"crc32\", \"static_only\": true}").unwrap();
        // Same machine point, different computation — distinct cache keys.
        assert_ne!(traced.canonical(), fast.canonical());
        let err =
            AnalyzeRequest::from_body("{\"kernel\": \"crc32\", \"static_only\": 1}").unwrap_err();
        assert_eq!(
            (err.code, err.pointer.as_str()),
            ("bad_type", "/static_only")
        );
        let err =
            AnalyzeRequest::from_body("{\"kernel\": \"crc32\", \"traced\": true}").unwrap_err();
        assert_eq!(err.code, "unknown_field");
    }

    #[test]
    fn multi_request_canonicalizes_members_and_weights() {
        // Member order and proportional weight spellings must not split
        // the cache: all four of these are the same computation.
        let a = SynthesizeMultiRequest::from_body("{\"kernels\": [\"crc32\", \"sha\"]}").unwrap();
        let b = SynthesizeMultiRequest::from_body("{\"kernels\": [\"sha\", \"crc32\"]}").unwrap();
        let c = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [2, 2]}",
        )
        .unwrap();
        let d = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [0.5, 0.5]}",
        )
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), c.canonical());
        assert_eq!(a.canonical(), d.canonical());
        assert!(a
            .canonical()
            .starts_with("synthesize-multi|kernels=crc32+sha|w=1,1|"));
        // A zero-weight member vanishes: the padded request IS the
        // two-member request, key and all.
        let padded = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"fft\", \"sha\"], \"weights\": [3, 0, 3]}",
        )
        .unwrap();
        assert_eq!(padded.kernels, vec![Kernel::Crc32, Kernel::Sha]);
        assert_eq!(padded.canonical(), a.canonical());
        // Unequal weights are a genuinely different merged profile.
        let skewed = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [1, 3]}",
        )
        .unwrap();
        assert_ne!(skewed.canonical(), a.canonical());
        // ...and so is a different epsilon.
        let tight = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"epsilon\": 0.25}",
        )
        .unwrap();
        assert_ne!(tight.canonical(), a.canonical());
    }

    #[test]
    fn multi_request_rejects_degenerate_inputs() {
        let err = SynthesizeMultiRequest::from_body("{}").unwrap_err();
        assert_eq!(
            (err.code, err.pointer.as_str()),
            ("missing_field", "/kernels")
        );
        let err = SynthesizeMultiRequest::from_body("{\"kernels\": []}").unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/kernels"));
        let err =
            SynthesizeMultiRequest::from_body("{\"kernels\": [\"crc32\", \"crc32\"]}").unwrap_err();
        assert_eq!(
            (err.code, err.pointer.as_str()),
            ("bad_value", "/kernels/1")
        );
        // Weight vector shape and content errors all point at /weights.
        let err = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [1]}",
        )
        .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/weights"));
        let err = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [0, 0]}",
        )
        .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/weights"));
        let err = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"crc32\", \"sha\"], \"weights\": [1, -1]}",
        )
        .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/weights"));
        let err = SynthesizeMultiRequest::from_body("{\"kernels\": [\"crc32\"], \"epsilon\": 200}")
            .unwrap_err();
        assert_eq!((err.code, err.pointer.as_str()), ("bad_value", "/epsilon"));
        // Every rejection renders as a schema-valid error body.
        assert_eq!(validate_serve_json(&err.body()).unwrap(), "error");
    }

    #[test]
    fn multi_body_matches_the_library_pricing_bit_for_bit() {
        let req =
            SynthesizeMultiRequest::from_body("{\"kernels\": [\"bitcount\", \"crc32\"]}").unwrap();
        let artifacts = Artifacts::new().with_synth(req.synth.clone());
        let body = synthesize_multi_body(&artifacts, &req).unwrap();
        assert_eq!(validate_serve_json(&body).unwrap(), "synthesize-multi");
        assert!(body.contains("\"accepted\": true"));

        // Re-run the same synthesis through the library entry points and
        // demand the service body embeds the identical rendered numbers.
        let programs: Vec<_> = req
            .kernels
            .iter()
            .map(|&k| artifacts.program(k, req.scale).unwrap())
            .collect();
        let profiles: Vec<_> = req
            .kernels
            .iter()
            .map(|&k| artifacts.profile(k, req.scale).unwrap())
            .collect();
        let members: Vec<MultiMember<'_>> = req
            .kernels
            .iter()
            .zip(&programs)
            .zip(&profiles)
            .map(|((k, program), profile)| MultiMember {
                name: k.name(),
                program,
                profile,
            })
            .collect();
        let options = MultiOptions {
            synth: req.synth.clone(),
            epsilon: req.epsilon,
            ..MultiOptions::default()
        };
        let outcome = synthesize_multi(&members, &[1.0, 1.0], &options).unwrap();
        assert!(body.contains(&format!("\"merged_profile\": \"{}\"", outcome.merged_hash)));
        let scenario = ScenarioSpec::sa1100();
        for m in &outcome.members {
            let run = price_shared_member(&m.translation.fits, &scenario).unwrap();
            let shared = fits_bench::IsaAggregate::from_run(&run);
            assert!(
                body.contains(&format!("\"shared\": {}", isa_json(&shared))),
                "service body drifted from library pricing for {}",
                m.name
            );
        }
        // Identical requests produce identical bytes on recomputation.
        assert_eq!(body, synthesize_multi_body(&artifacts, &req).unwrap());
    }

    #[test]
    fn multi_body_renders_a_regression_rejection_as_a_200() {
        let req = SynthesizeMultiRequest::from_body(
            "{\"kernels\": [\"bitcount\", \"crc32\"], \"epsilon\": -0.99}",
        )
        .unwrap();
        let artifacts = Artifacts::new().with_synth(req.synth.clone());
        let body = synthesize_multi_body(&artifacts, &req).unwrap();
        assert_eq!(validate_serve_json(&body).unwrap(), "synthesize-multi");
        assert!(body.contains("\"accepted\": false"));
        assert!(body.contains("\"rejected\": {\"member\": "));
    }

    #[test]
    fn analyze_body_validates_and_embeds_a_sound_report() {
        let req =
            AnalyzeRequest::from_body("{\"kernel\": \"crc32\", \"static_only\": true}").unwrap();
        let artifacts = Artifacts::new().with_synth(req.synth.clone());
        let body = analyze_body(&artifacts, &req).unwrap();
        assert_eq!(validate_serve_json(&body).unwrap(), "analyze");
        assert!(body.contains("\"sound\": true"));
        // A lying top-level soundness flag is caught by the validator.
        let lying = body.replace("\"sound\": true,", "\"sound\": false,");
        assert!(validate_serve_json(&lying)
            .unwrap_err()
            .contains("disagrees"));
    }
}
