//! `fits-serve` — the PowerFITS measurement service.
//!
//! Turns the library pipeline into a long-lived daemon (`fitsd`) that
//! answers JSON requests over HTTP/1.1 on `std::net` alone — the
//! workspace stays dependency-free all the way to the wire:
//!
//! - [`http`] — a minimal, bounded HTTP/1.1 reader/writer;
//! - [`api`] — request schemas, structured 400s, canonical keys, and
//!   deterministic response bodies;
//! - [`queue`] — the bounded job queue whose `Full` error becomes
//!   `503 + Retry-After` backpressure;
//! - [`coalesce`] — leader/follower sharing of in-flight identical
//!   requests;
//! - [`cache`] — the content-addressed LRU over finished responses;
//! - [`metrics`] — service counters, lifetime + sliding-window latency
//!   histograms, gauges, and `fits-obs` spans behind `GET /metrics`
//!   (JSON or Prometheus text via `?format=text`);
//! - [`server`] — the accept loop and worker pool tying it together,
//!   plus the telemetry plane: per-request trace ids (`X-Fits-Trace`),
//!   phase span trees, the JSONL access log, and the flight recorder
//!   behind `GET /debug/flight`;
//! - [`client`] — the small HTTP client `fitsctl` and the tests drive
//!   the daemon with.
//!
//! The load-bearing invariant: every POST response is a pure function of
//! its canonical request string. Caching, coalescing, and the
//! byte-identical differential tests all lean on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod api;
pub mod cache;
pub mod client;
pub mod coalesce;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use api::{
    validate_flight_json, validate_serve_json, ApiError, PostRequest, SCHEMA, SCHEMA_VERSION,
};
pub use cache::{content_address, fnv64, ResultCache};
pub use coalesce::{Claim, Coalescer};
pub use metrics::{status_class, validate_prometheus, MetricsContext, ServeMetrics};
pub use queue::{JobQueue, PushError};
pub use server::{spawn, ServerConfig, ServerHandle, ServerState};
