//! A minimal HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! `fitsd` speaks exactly the subset its clients need — one
//! `Content-Length`-framed request per connection, JSON bodies, a handful
//! of response headers — so the whole wire layer stays dependency-free and
//! small enough to audit. Limits are enforced while *reading* (header and
//! body caps), so a misbehaving client costs a bounded amount of memory
//! before it is rejected.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request head (request line + headers), in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Why a request could not be read off the wire.
#[derive(Debug)]
pub enum HttpError {
    /// Socket failure (includes timeouts).
    Io(std::io::Error),
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed(&'static str),
    /// The head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// The declared body exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BodyTooLarge => write!(f, "request body exceeds {MAX_BODY_BYTES} bytes"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request: method, target path, and the (possibly empty) body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The request target as received, query string included, e.g.
    /// `/metrics?format=text`. Routing uses [`Request::path`].
    pub target: String,
    /// Decoded body (UTF-8; non-UTF-8 bodies are rejected).
    pub body: String,
}

impl Request {
    /// The target without its query string (`/metrics?format=text` →
    /// `/metrics`).
    #[must_use]
    pub fn path(&self) -> &str {
        split_target(&self.target).0
    }

    /// The raw query string, without the `?` (empty when absent).
    #[must_use]
    pub fn query(&self) -> &str {
        split_target(&self.target).1
    }

    /// The value of query parameter `key`, if present
    /// (`format=text&x=1` → `query_param("format") == Some("text")`).
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query().split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// Splits a request target into `(path, query)` at the first `?`.
#[must_use]
pub fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

fn read_head(stream: &mut TcpStream) -> Result<(Vec<u8>, Vec<u8>), HttpError> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 1024];
    loop {
        if let Some(pos) = find_crlfcrlf(&head) {
            let rest = head.split_off(pos + 4);
            head.truncate(pos);
            return Ok((head, rest));
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed before head"));
        }
        head.extend_from_slice(&buf[..n]);
    }
}

fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads one request from the stream, enforcing the head/body caps and the
/// socket timeout.
///
/// # Errors
///
/// [`HttpError`] on socket failure, malformed framing, or an oversized
/// head/body.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let (head, mut body) = read_head(stream)?;
    let head = String::from_utf8(head).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpError::Malformed("missing HTTP version")),
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("bad content-length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::BodyTooLarge);
    }
    if body.len() > content_length {
        return Err(HttpError::Malformed("body longer than content-length"));
    }
    let mut remaining = content_length - body.len();
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        let take = remaining.min(buf.len());
        let n = stream.read(&mut buf[..take])?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&buf[..n]);
        remaining -= n;
    }
    let body = String::from_utf8(body).map_err(|_| HttpError::Malformed("non-utf8 body"))?;
    Ok(Request {
        method,
        target,
        body,
    })
}

/// One response to write back: status, body, and optional extra headers.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value); `Content-Type`, `Content-Length` and
    /// `Connection: close` are always emitted.
    pub headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A JSON response with no extra headers.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// A plain-text response (the Prometheus exposition).
    #[must_use]
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
        }
    }

    /// Adds a header, builder-style.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

/// The standard reason phrase for the statuses `fitsd` emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a response (always `Connection: close`).
///
/// # Errors
///
/// Socket write failures.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> Result<(), std::io::Error> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let out = read_request(&mut stream);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = round_trip(
            b"POST /synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/synthesize");
        assert_eq!(req.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_malformed_framing() {
        assert!(matches!(
            round_trip(b"NOT-HTTP\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            round_trip(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        let oversized = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            round_trip(oversized.as_bytes()),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn target_splits_into_path_and_query() {
        let req = round_trip(b"GET /metrics?format=text&x=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.target, "/metrics?format=text&x=1");
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.query(), "format=text&x=1");
        assert_eq!(req.query_param("format"), Some("text"));
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("nope"), None);
        let bare = round_trip(b"GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(bare.path(), "/metrics");
        assert_eq!(bare.query(), "");
        assert_eq!(bare.query_param("format"), None);
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        });
        let (mut stream, _) = listener.accept().unwrap();
        let resp = Response::json(503, "{}".to_string()).with_header("Retry-After", "1".into());
        write_response(&mut stream, &resp).unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
