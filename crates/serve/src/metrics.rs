//! The daemon's `/metrics` surface: service counters, lifetime and
//! windowed latency, sampled gauges and per-endpoint `fits-obs` spans in
//! one JSON snapshot — plus a Prometheus-style text exposition behind
//! `GET /metrics?format=text`.
//!
//! Lifetime aggregates converge and hide regressions; the windowed
//! histograms ([`fits_obs::WindowedHistogram`], ~60 s per endpoint ×
//! status class) answer "what is happening *now*". Both views come from
//! the same [`ServeMetrics::finish`] call, so they can never disagree
//! about what was counted.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fits_obs::json::Writer;
use fits_obs::{Counter, GaugeSeries, LatencyHistogram, SpanRegistry, WindowedHistogram};

/// The `2xx`/`4xx`/`5xx` label a status code falls into (sheds never get
/// here; 1xx/3xx are not emitted by the API).
#[must_use]
pub fn status_class(status: u16) -> &'static str {
    match status {
        200..=299 => "2xx",
        400..=499 => "4xx",
        _ => "5xx",
    }
}

/// Server-owned values a metrics render needs: gauges read at render time
/// and the event-log counters (the log lives in the server, not here).
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricsContext {
    /// Current job-queue depth.
    pub queue_depth: usize,
    /// Configured job-queue capacity.
    pub queue_capacity: usize,
    /// Worker-thread count.
    pub workers: usize,
    /// Result-cache entries.
    pub cache_entries: usize,
    /// Seconds since the daemon started.
    pub uptime_s: u64,
    /// Access-log lines accepted into the writer channel.
    pub log_emitted: u64,
    /// Access-log lines dropped (channel full or closed).
    pub log_dropped: u64,
}

/// Everything `fitsd` counts. All counters are lock-free
/// ([`fits_obs::metrics`]); the span registry and the windowed histograms
/// take short locks per request, off the cache-hit fast path.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests that reached routing (everything but 503 sheds).
    pub requests: Counter,
    /// Responses with status 200.
    pub ok: Counter,
    /// Responses with status 4xx.
    pub client_errors: Counter,
    /// Responses with status 5xx (excluding sheds).
    pub server_errors: Counter,
    /// Connections shed with 503 at the queue door.
    pub rejected: Counter,
    /// POST responses served from the result cache.
    pub cache_hits: Counter,
    /// POST requests that joined an in-flight identical computation.
    pub coalesced_joins: Counter,
    /// Pipeline computations actually executed (cache/coalesce misses).
    pub executions: Counter,
    /// End-to-end request latency (read → response written), lifetime.
    pub latency: LatencyHistogram,
    /// Per-endpoint timing spans (`request/<endpoint>`), plus the flat
    /// engine-stage timings the pool's observer tees in.
    pub spans: SpanRegistry,
    /// Queue depth sampled by the server's gauge ticker.
    pub queue_gauge: GaugeSeries,
    /// Result-cache entries sampled by the server's gauge ticker.
    pub cache_gauge: GaugeSeries,
    /// Sliding-window latency per `(endpoint, status class)`.
    windows: Mutex<BTreeMap<(String, &'static str), Arc<WindowedHistogram>>>,
}

impl ServeMetrics {
    /// A zeroed metrics set.
    #[must_use]
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Records one finished request: status class, lifetime and windowed
    /// latency, and the endpoint span.
    pub fn finish(&self, endpoint: &str, status: u16, wall: Duration) {
        self.requests.inc();
        match status {
            200..=299 => self.ok.inc(),
            400..=499 => self.client_errors.inc(),
            _ => self.server_errors.inc(),
        }
        self.latency.record(wall);
        self.spans.add(&format!("request/{endpoint}"), wall);
        self.window_for(endpoint, status_class(status)).record(wall);
    }

    /// The windowed histogram for one `(endpoint, class)` cell, created on
    /// first use.
    fn window_for(&self, endpoint: &str, class: &'static str) -> Arc<WindowedHistogram> {
        let mut map = match self.windows.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(
            map.entry((endpoint.to_string(), class))
                .or_insert_with(|| Arc::new(WindowedHistogram::new())),
        )
    }

    /// A stable-ordered snapshot of every windowed cell.
    fn window_cells(&self) -> Vec<(String, &'static str, fits_obs::WindowSnapshot)> {
        let map = match self.windows.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        map.iter()
            .map(|((endpoint, class), h)| (endpoint.clone(), *class, h.snapshot()))
            .collect()
    }

    /// The `/metrics` JSON body.
    #[must_use]
    pub fn render_json(&self, ctx: &MetricsContext) -> String {
        let mut w = Writer::new();
        w.begin_obj();
        w.field_str("schema", "powerfits-serve-v1");
        w.field_str("endpoint", "metrics");
        w.field_u64("uptime_s", ctx.uptime_s);
        w.field_u64("requests", self.requests.get());
        w.field_u64("ok", self.ok.get());
        w.field_u64("client_errors", self.client_errors.get());
        w.field_u64("server_errors", self.server_errors.get());
        w.field_u64("rejected", self.rejected.get());
        w.field_u64("cache_hits", self.cache_hits.get());
        w.field_u64("coalesced_joins", self.coalesced_joins.get());
        w.field_u64("executions", self.executions.get());
        w.field_u64("cache_entries", ctx.cache_entries as u64);
        w.field_u64("queue_depth", ctx.queue_depth as u64);
        w.field_u64("queue_capacity", ctx.queue_capacity as u64);
        w.field_u64("workers", ctx.workers as u64);
        w.key("latency_us");
        w.begin_obj();
        w.field_u64("count", self.latency.count());
        w.field_f64_prec("mean", self.latency.mean_us(), 1);
        w.field_u64("p50", self.latency.quantile_us(0.50));
        w.field_u64("p99", self.latency.quantile_us(0.99));
        w.field_u64("max", self.latency.max_us());
        w.end_obj();
        w.key("log");
        w.begin_obj();
        w.field_u64("emitted", ctx.log_emitted);
        w.field_u64("dropped", ctx.log_dropped);
        w.end_obj();
        w.key("window");
        w.begin_arr();
        for (endpoint, class, snap) in self.window_cells() {
            w.begin_obj();
            w.field_str("endpoint", &endpoint);
            w.field_str("class", class);
            w.field_u64("count", snap.count);
            w.field_f64_prec("rate_per_sec", snap.rate_per_sec(), 3);
            w.field_f64_prec("mean", snap.mean_us(), 1);
            w.field_u64("p50", snap.quantile_us(0.50));
            w.field_u64("p99", snap.quantile_us(0.99));
            w.field_u64("max", snap.max_us);
            w.end_obj();
        }
        w.end_arr();
        w.key("gauges");
        w.begin_obj();
        for (name, gauge) in [
            ("queue_depth", &self.queue_gauge),
            ("cache_entries", &self.cache_gauge),
        ] {
            let snap = gauge.snapshot();
            w.key(name);
            w.begin_obj();
            w.field_u64("last", snap.last);
            w.field_u64("min", snap.min);
            w.field_u64("max", snap.max);
            w.field_f64_prec("mean", snap.mean, 1);
            w.field_u64("samples", snap.samples);
            w.end_obj();
        }
        w.end_obj();
        w.key("spans");
        w.begin_arr();
        self.spans.visit(|path, span| {
            w.begin_obj();
            w.field_str("path", path);
            w.field_f64_prec("ms", span.nanos as f64 / 1.0e6, 3);
            w.field_u64("count", span.count);
            w.end_obj();
        });
        w.end_arr();
        w.end_obj();
        let mut body = w.finish();
        body.push('\n');
        body
    }

    /// The `/metrics?format=text` body: a Prometheus text exposition
    /// (version 0.0.4) of the same numbers the JSON snapshot carries.
    #[must_use]
    pub fn render_prometheus(&self, ctx: &MetricsContext) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}\n"
            ));
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        counter(
            &mut out,
            "fitsd_requests_total",
            "Requests that reached routing.",
            self.requests.get(),
        );
        counter(
            &mut out,
            "fitsd_responses_total_ok",
            "Responses with status 2xx.",
            self.ok.get(),
        );
        counter(
            &mut out,
            "fitsd_responses_total_client_error",
            "Responses with status 4xx.",
            self.client_errors.get(),
        );
        counter(
            &mut out,
            "fitsd_responses_total_server_error",
            "Responses with status 5xx.",
            self.server_errors.get(),
        );
        counter(
            &mut out,
            "fitsd_rejected_total",
            "Connections shed with 503 at the queue door.",
            self.rejected.get(),
        );
        counter(
            &mut out,
            "fitsd_cache_hits_total",
            "POST responses served from the result cache.",
            self.cache_hits.get(),
        );
        counter(
            &mut out,
            "fitsd_coalesced_joins_total",
            "POST requests that joined an in-flight computation.",
            self.coalesced_joins.get(),
        );
        counter(
            &mut out,
            "fitsd_executions_total",
            "Pipeline computations actually executed.",
            self.executions.get(),
        );
        counter(
            &mut out,
            "fitsd_access_log_emitted_total",
            "Access-log lines accepted into the writer channel.",
            ctx.log_emitted,
        );
        counter(
            &mut out,
            "fitsd_access_log_dropped_total",
            "Access-log lines dropped (channel full or closed).",
            ctx.log_dropped,
        );
        gauge(
            &mut out,
            "fitsd_uptime_seconds",
            "Seconds since the daemon started.",
            ctx.uptime_s,
        );
        gauge(
            &mut out,
            "fitsd_queue_depth",
            "Current job-queue depth.",
            ctx.queue_depth as u64,
        );
        gauge(
            &mut out,
            "fitsd_queue_capacity",
            "Configured job-queue capacity.",
            ctx.queue_capacity as u64,
        );
        gauge(
            &mut out,
            "fitsd_workers",
            "Worker-thread count.",
            ctx.workers as u64,
        );
        gauge(
            &mut out,
            "fitsd_cache_entries",
            "Result-cache entries.",
            ctx.cache_entries as u64,
        );

        // Lifetime latency as a classic cumulative-bucket histogram.
        let name = "fitsd_request_latency_microseconds";
        out.push_str(&format!(
            "# HELP {name} End-to-end request latency, lifetime.\n# TYPE {name} histogram\n"
        ));
        let counts = self.latency.bucket_counts();
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cumulative += c;
            let upper = LatencyHistogram::bucket_upper_us(i);
            if upper == u64::MAX {
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            } else {
                out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!("{name}_sum {}\n", self.latency.sum_us()));
        out.push_str(&format!("{name}_count {}\n", self.latency.count()));

        // Windowed per-endpoint × class latency quantiles and rates.
        out.push_str(
            "# HELP fitsd_window_requests Requests in the sliding window.\n\
             # TYPE fitsd_window_requests gauge\n",
        );
        let cells = self.window_cells();
        for (endpoint, class, snap) in &cells {
            out.push_str(&format!(
                "fitsd_window_requests{{endpoint=\"{endpoint}\",class=\"{class}\"}} {}\n",
                snap.count
            ));
        }
        out.push_str(
            "# HELP fitsd_window_latency_microseconds Windowed latency quantiles.\n\
             # TYPE fitsd_window_latency_microseconds gauge\n",
        );
        for (endpoint, class, snap) in &cells {
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "fitsd_window_latency_microseconds{{endpoint=\"{endpoint}\",\
                     class=\"{class}\",quantile=\"{label}\"}} {}\n",
                    snap.quantile_us(q)
                ));
            }
        }
        out
    }
}

/// Validates a Prometheus text exposition (version 0.0.4): every sample
/// line is `name{labels} value` with a legal metric name and a numeric
/// value, and every sample's family has a preceding `# TYPE` declaration.
/// Returns the number of samples.
///
/// # Errors
///
/// A description of the first violation.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn name_ok(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    let mut typed: Vec<String> = Vec::new();
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_ascii_whitespace();
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !name_ok(name) {
                return Err(format!("line {line_no}: bad metric name in TYPE"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary") {
                return Err(format!("line {line_no}: bad metric type '{kind}'"));
            }
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {line_no}: sample has no value"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {line_no}: unparseable value '{value}'"));
        }
        let name = match name_labels.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {line_no}: unterminated label set"));
                }
                for pair in labels[..labels.len() - 1].split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("line {line_no}: label without '='"))?;
                    if !name_ok(k) {
                        return Err(format!("line {line_no}: bad label name '{k}'"));
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(format!("line {line_no}: unquoted label value {v}"));
                    }
                }
                name
            }
            None => name_labels,
        };
        if !name_ok(name) {
            return Err(format!("line {line_no}: bad metric name '{name}'"));
        }
        // A histogram's _bucket/_sum/_count samples belong to the base
        // family name; everything else must match a TYPE exactly.
        let family_declared = typed.iter().any(|t| {
            t == name
                || [
                    format!("{t}_bucket"),
                    format!("{t}_sum"),
                    format!("{t}_count"),
                ]
                .iter()
                .any(|suffixed| suffixed == name)
        });
        if !family_declared {
            return Err(format!("line {line_no}: sample '{name}' has no # TYPE"));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_obs::json::{parse, Value};

    fn ctx() -> MetricsContext {
        MetricsContext {
            queue_depth: 3,
            queue_capacity: 64,
            workers: 8,
            cache_entries: 5,
            uptime_s: 12,
            log_emitted: 7,
            log_dropped: 1,
        }
    }

    #[test]
    fn snapshot_is_valid_json_with_all_counters() {
        let m = ServeMetrics::new();
        m.finish("synthesize", 200, Duration::from_millis(3));
        m.finish("synthesize", 400, Duration::from_millis(1));
        m.finish("sweep", 500, Duration::from_millis(9));
        m.cache_hits.inc();
        m.coalesced_joins.add(2);
        m.rejected.inc();
        m.queue_gauge.sample(3);
        m.cache_gauge.sample(5);
        let json = m.render_json(&ctx());
        let v = parse(&json).expect("metrics snapshot parses");
        let num = |key: &str| v.get(key).and_then(Value::as_f64).expect(key);
        assert_eq!(num("requests"), 3.0);
        assert_eq!(num("ok"), 1.0);
        assert_eq!(num("client_errors"), 1.0);
        assert_eq!(num("server_errors"), 1.0);
        assert_eq!(num("rejected"), 1.0);
        assert_eq!(num("cache_hits"), 1.0);
        assert_eq!(num("coalesced_joins"), 2.0);
        assert_eq!(num("queue_depth"), 3.0);
        assert_eq!(num("queue_capacity"), 64.0);
        assert_eq!(num("workers"), 8.0);
        assert_eq!(num("cache_entries"), 5.0);
        assert_eq!(num("uptime_s"), 12.0);
        let lat = v.get("latency_us").expect("latency object");
        assert_eq!(lat.get("count").and_then(Value::as_f64), Some(3.0));
        assert!(lat.get("p99").and_then(Value::as_f64).unwrap() >= 1000.0);
        let log = v.get("log").expect("log object");
        assert_eq!(log.get("emitted").and_then(Value::as_f64), Some(7.0));
        assert_eq!(log.get("dropped").and_then(Value::as_f64), Some(1.0));
        match v.get("window") {
            Some(Value::Arr(cells)) => {
                assert_eq!(cells.len(), 3, "one cell per endpoint × class");
                assert!(cells.iter().any(|c| {
                    c.get("endpoint").and_then(Value::as_str) == Some("synthesize")
                        && c.get("class").and_then(Value::as_str) == Some("4xx")
                }));
                for c in cells {
                    assert!(c.get("p99").and_then(Value::as_f64).is_some());
                }
            }
            other => panic!("window not an array: {other:?}"),
        }
        let gauges = v.get("gauges").expect("gauges object");
        let q = gauges.get("queue_depth").expect("queue gauge");
        assert_eq!(q.get("last").and_then(Value::as_f64), Some(3.0));
        match v.get("spans") {
            Some(Value::Arr(items)) => {
                assert_eq!(items.len(), 2, "same-endpoint spans merge by name");
                assert!(items
                    .iter()
                    .any(|s| s.get("path").and_then(Value::as_str) == Some("request/synthesize")));
            }
            other => panic!("spans not an array: {other:?}"),
        }
    }

    #[test]
    fn prometheus_exposition_validates_and_carries_the_counters() {
        let m = ServeMetrics::new();
        m.finish("synthesize", 200, Duration::from_micros(700));
        m.finish("simulate", 200, Duration::from_millis(40));
        let text = m.render_prometheus(&ctx());
        let samples = validate_prometheus(&text).expect("valid exposition");
        assert!(samples > 20, "got only {samples} samples");
        assert!(text.contains("fitsd_requests_total 2"));
        assert!(text.contains("fitsd_request_latency_microseconds_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        assert!(text.contains("fitsd_window_requests{endpoint=\"synthesize\",class=\"2xx\"} 1"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("fitsd_access_log_dropped_total 1"));
    }

    #[test]
    fn prometheus_validator_rejects_garbage() {
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("just words\n").is_err());
        // A sample without a TYPE declaration.
        assert!(validate_prometheus("fitsd_x 1\n").is_err());
        // Bad value.
        assert!(validate_prometheus("# TYPE fitsd_x counter\nfitsd_x pumpkin\n").is_err());
        // Unquoted label value.
        assert!(validate_prometheus("# TYPE fitsd_x gauge\nfitsd_x{endpoint=bare} 1\n").is_err());
        // Minimal valid exposition.
        assert_eq!(validate_prometheus("# TYPE up gauge\nup 1\n").unwrap(), 1);
    }

    #[test]
    fn windowed_cells_track_status_classes_separately() {
        let m = ServeMetrics::new();
        for _ in 0..10 {
            m.finish("simulate", 200, Duration::from_micros(100));
        }
        m.finish("simulate", 500, Duration::from_millis(50));
        let cells = m.window_cells();
        assert_eq!(cells.len(), 2);
        let ok = cells.iter().find(|(_, c, _)| *c == "2xx").unwrap();
        let err = cells.iter().find(|(_, c, _)| *c == "5xx").unwrap();
        assert_eq!(ok.2.count, 10);
        assert_eq!(err.2.count, 1);
        assert!(err.2.quantile_us(0.5) > ok.2.quantile_us(0.99));
    }
}
