//! The daemon's `/metrics` surface: service counters, request latency and
//! per-endpoint `fits-obs` spans in one JSON snapshot.

use std::time::Duration;

use fits_obs::json::escape;
use fits_obs::{Counter, LatencyHistogram, SpanRegistry};

/// Everything `fitsd` counts. All fields are lock-free
/// ([`fits_obs::metrics`]); the span registry takes a short lock per
/// request, off the cache-hit fast path.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests that reached routing (everything but 503 sheds).
    pub requests: Counter,
    /// Responses with status 200.
    pub ok: Counter,
    /// Responses with status 4xx.
    pub client_errors: Counter,
    /// Responses with status 5xx (excluding sheds).
    pub server_errors: Counter,
    /// Connections shed with 503 at the queue door.
    pub rejected: Counter,
    /// POST responses served from the result cache.
    pub cache_hits: Counter,
    /// POST requests that joined an in-flight identical computation.
    pub coalesced_joins: Counter,
    /// Pipeline computations actually executed (cache/coalesce misses).
    pub executions: Counter,
    /// End-to-end request latency (read → response written).
    pub latency: LatencyHistogram,
    /// Per-endpoint timing spans (`request/<endpoint>`).
    pub spans: SpanRegistry,
}

impl ServeMetrics {
    /// A zeroed metrics set.
    #[must_use]
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Records one finished request: status class, latency, and the
    /// endpoint span.
    pub fn finish(&self, endpoint: &str, status: u16, wall: Duration) {
        self.requests.inc();
        match status {
            200..=299 => self.ok.inc(),
            400..=499 => self.client_errors.inc(),
            _ => self.server_errors.inc(),
        }
        self.latency.record(wall);
        self.spans.add(&format!("request/{endpoint}"), wall);
    }

    /// The `/metrics` JSON body. `queue_depth`/`queue_capacity`/`workers`
    /// and the cache gauge come from the server, which owns those
    /// structures.
    #[must_use]
    pub fn render_json(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        workers: usize,
        cache_entries: usize,
    ) -> String {
        let mut spans = Vec::new();
        self.spans.visit(|path, span| {
            spans.push(format!(
                "{{\"path\": \"{}\", \"ms\": {:.3}, \"count\": {}}}",
                escape(path),
                span.nanos as f64 / 1.0e6,
                span.count,
            ));
        });
        format!(
            "{{\n  \"schema\": \"powerfits-serve-v1\",\n  \"endpoint\": \"metrics\",\n  \
             \"requests\": {requests},\n  \"ok\": {ok},\n  \"client_errors\": {ce},\n  \
             \"server_errors\": {se},\n  \"rejected\": {rejected},\n  \
             \"cache_hits\": {hits},\n  \"coalesced_joins\": {joins},\n  \
             \"executions\": {execs},\n  \"cache_entries\": {cache_entries},\n  \
             \"queue_depth\": {queue_depth},\n  \"queue_capacity\": {queue_capacity},\n  \
             \"workers\": {workers},\n  \"latency_us\": {{\"count\": {lc}, \"mean\": {mean:.1}, \
             \"p50\": {p50}, \"p99\": {p99}, \"max\": {max}}},\n  \"spans\": [{spans}]\n}}\n",
            requests = self.requests.get(),
            ok = self.ok.get(),
            ce = self.client_errors.get(),
            se = self.server_errors.get(),
            rejected = self.rejected.get(),
            hits = self.cache_hits.get(),
            joins = self.coalesced_joins.get(),
            execs = self.executions.get(),
            lc = self.latency.count(),
            mean = self.latency.mean_us(),
            p50 = self.latency.quantile_us(0.50),
            p99 = self.latency.quantile_us(0.99),
            max = self.latency.max_us(),
            spans = spans.join(", "),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fits_obs::json::{parse, Value};

    #[test]
    fn snapshot_is_valid_json_with_all_counters() {
        let m = ServeMetrics::new();
        m.finish("synthesize", 200, Duration::from_millis(3));
        m.finish("synthesize", 400, Duration::from_millis(1));
        m.finish("sweep", 500, Duration::from_millis(9));
        m.cache_hits.inc();
        m.coalesced_joins.add(2);
        m.rejected.inc();
        let json = m.render_json(3, 64, 8, 5);
        let v = parse(&json).expect("metrics snapshot parses");
        let num = |key: &str| v.get(key).and_then(Value::as_f64).expect(key);
        assert_eq!(num("requests"), 3.0);
        assert_eq!(num("ok"), 1.0);
        assert_eq!(num("client_errors"), 1.0);
        assert_eq!(num("server_errors"), 1.0);
        assert_eq!(num("rejected"), 1.0);
        assert_eq!(num("cache_hits"), 1.0);
        assert_eq!(num("coalesced_joins"), 2.0);
        assert_eq!(num("queue_depth"), 3.0);
        assert_eq!(num("queue_capacity"), 64.0);
        assert_eq!(num("workers"), 8.0);
        assert_eq!(num("cache_entries"), 5.0);
        let lat = v.get("latency_us").expect("latency object");
        assert_eq!(lat.get("count").and_then(Value::as_f64), Some(3.0));
        assert!(lat.get("p99").and_then(Value::as_f64).unwrap() >= 1000.0);
        match v.get("spans") {
            Some(Value::Arr(items)) => {
                assert_eq!(items.len(), 2, "same-endpoint spans merge by name");
                assert!(items
                    .iter()
                    .any(|s| s.get("path").and_then(Value::as_str) == Some("request/synthesize")));
            }
            other => panic!("spans not an array: {other:?}"),
        }
    }
}
