//! Seeded property tests over the scenario plane's geometry handling:
//! validated constructors accept exactly the geometries whose dimensions
//! multiply out, reject the rest with typed errors (never a panic), and
//! the cache model conserves accesses on arbitrary address streams.

use fits_rng::StdRng;
use fits_scenario::{ScenarioSpec, TimingSpec};
use fits_sim::{validate_geometry, Cache, CacheConfig, Replacement};

/// Draws a geometry whose dimensions multiply out by construction:
/// power-of-two sets × ways × line bytes.
fn random_valid_geometry(rng: &mut StdRng, name: &str) -> CacheConfig {
    let ways = 1u32 << rng.gen_range(0u32..7); // 1..=64
    let line_bytes = 1u32 << rng.gen_range(2u32..7); // 4..=64
    let sets = 1u32 << rng.gen_range(0u32..8); // 1..=128
    CacheConfig {
        name: name.to_string(),
        size_bytes: sets * ways * line_bytes,
        ways,
        line_bytes,
        replacement: if rng.gen_range(0u32..2) == 0 {
            Replacement::Lru
        } else {
            Replacement::PseudoRandom
        },
    }
}

#[test]
fn valid_geometries_multiply_out_and_build_scenarios() {
    let mut rng = StdRng::seed_from_u64(0x5ce1a210);
    for _ in 0..200 {
        let icache = random_valid_geometry(&mut rng, "icache");
        let dcache = random_valid_geometry(&mut rng, "dcache");

        validate_geometry(&icache).expect("generated geometry is valid");
        assert_eq!(
            icache.sets() * icache.ways * icache.line_bytes,
            icache.size_bytes,
            "sets x ways x line must reconstruct the capacity: {icache:?}"
        );

        let spec = ScenarioSpec::new(
            "prop-test",
            icache,
            dcache,
            TimingSpec::default(),
            fits_power::TechParams::sa1100(),
            "prop",
            fits_core::SynthOptions::default(),
        )
        .expect("valid geometries must construct a scenario");
        assert_eq!(spec.id(), "prop-test");
    }
}

#[test]
fn invalid_geometries_error_instead_of_panicking() {
    let mut rng = StdRng::seed_from_u64(0xbad6e0);
    for _ in 0..200 {
        let good = random_valid_geometry(&mut rng, "icache");

        // Capacity off by one byte: no longer divisible by ways x line.
        let mut off_by_one = good.clone();
        off_by_one.size_bytes = good.size_bytes + 1;
        assert!(
            validate_geometry(&off_by_one).is_err(),
            "{off_by_one:?} must be rejected"
        );

        // Tripled capacity: divisible, but 3 x 2^k sets is never a power
        // of two.
        let mut tripled = good.clone();
        tripled.size_bytes = good.size_bytes * 3;
        assert!(
            validate_geometry(&tripled).is_err(),
            "{tripled:?} must be rejected"
        );

        // The same rejections must surface as typed ScenarioErrors.
        assert!(ScenarioSpec::new(
            "prop-bad",
            off_by_one,
            good.clone(),
            TimingSpec::default(),
            fits_power::TechParams::sa1100(),
            "prop",
            fits_core::SynthOptions::default(),
        )
        .is_err());
        assert!(good.resized(good.size_bytes * 3).is_err());
    }
}

#[test]
fn cache_conserves_accesses_on_random_streams() {
    let mut rng = StdRng::seed_from_u64(0xacce55);
    for round in 0..50 {
        let cfg = random_valid_geometry(&mut rng, "dcache");
        let mut cache = Cache::new(cfg);
        let accesses = rng.gen_range(100u64..1000);
        for cycle in 0..accesses {
            let addr = rng.gen_range(0u32..(1 << 16)) & !3;
            let write = rng.gen_range(0u32..4) == 0;
            cache.access(addr, write, rng.gen::<u32>(), cycle);
        }
        cache.finish();
        let s = cache.stats();
        assert_eq!(s.accesses, accesses, "round {round}");
        assert_eq!(
            s.hits + s.misses,
            s.accesses,
            "round {round}: every access is exactly a hit or a miss: {s:?}"
        );
        assert!(s.writes <= s.accesses, "round {round}: {s:?}");
    }
}
