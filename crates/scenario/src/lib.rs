//! # fits-scenario — the machine-description plane
//!
//! The paper reports every number against one machine point: the SA-1100's
//! 16 KB / 32-way / 32-byte-line I-cache at a 0.35 µm node. That point used
//! to be baked into the codebase as constants; this crate lifts it into
//! data. A [`ScenarioSpec`] bundles everything that defines one simulated
//! machine — I-cache and D-cache geometry, timing-model latencies, the
//! technology node's energy/leakage calibration, and the synthesis options
//! the FITS flow should use — behind validated constructors: user-supplied
//! geometry produces typed [`ScenarioError`]s, never panics.
//!
//! A [`ScenarioMatrix`] is the sweep product of a base scenario with a
//! cache-size axis and a tech-node axis. The bench harness replays one
//! functional execution per ISA into every geometry of the matrix (the
//! execute-once/replay-many engine), then prices each point under its own
//! tech node — so asking "does the 16-bit ISA still win at 4 KB
//! direct-mapped, at 65 nm leakage ratios?" costs no extra executions.
//!
//! Named presets:
//!
//! * [`ScenarioSpec::sa1100`] — the paper's machine, bit-identical to the
//!   pre-scenario hard-coded path (proved by `fits-bench`'s differential
//!   test);
//! * [`ScenarioSpec::small_embedded`] — a 4 KB direct-mapped I-cache with
//!   16-byte lines, the cost-down microcontroller end of the spectrum;
//! * [`ScenarioSpec::modern_node`] — SA-1100 geometry priced at a 65 nm,
//!   leakage-dominated node.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::fmt;

use fits_core::SynthOptions;
use fits_power::TechParams;
use fits_sim::{validate_geometry, CacheConfig, GeometryError, Replacement, Sa1100Config};

/// Why a scenario could not be constructed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// A cache geometry is invalid.
    Geometry {
        /// Which cache (`"icache"` / `"dcache"`).
        cache: &'static str,
        /// The typed geometry failure.
        error: GeometryError,
    },
    /// The scenario id is empty or contains characters outside
    /// `[a-z0-9.-]` (ids key trace files and JSON rows, so they stay
    /// filesystem- and JSON-safe by construction).
    BadId {
        /// The offending id.
        id: String,
    },
    /// A sweep axis was empty.
    EmptyAxis {
        /// Which axis (`"icache sizes"` / `"tech nodes"`).
        axis: &'static str,
    },
    /// One point of a [`ScenarioMatrix::grid`] has an invalid I-cache
    /// geometry — carries the grid coordinates so a bad sweep axis fails
    /// fast at matrix construction, naming the offending point instead of
    /// surfacing a bare geometry error deep inside a sweep.
    GridPoint {
        /// The tech-node name of the failing point.
        tech: String,
        /// The requested I-cache capacity in bytes.
        icache_bytes: u32,
        /// The typed geometry failure.
        error: GeometryError,
    },
    /// A preset name was not one of [`PRESET_NAMES`].
    UnknownPreset {
        /// The offending name.
        name: String,
    },
    /// A tech-node name was not one of [`TECH_NAMES`].
    UnknownTech {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Geometry { cache, error } => write!(f, "{cache}: {error}"),
            ScenarioError::BadId { id } => {
                write!(f, "bad scenario id {id:?} (need non-empty [a-z0-9.-])")
            }
            ScenarioError::EmptyAxis { axis } => write!(f, "sweep axis {axis} is empty"),
            ScenarioError::GridPoint {
                tech,
                icache_bytes,
                error,
            } => write!(
                f,
                "grid point (tech {tech}, icache {icache_bytes} B): {error}"
            ),
            ScenarioError::UnknownPreset { name } => write!(
                f,
                "unknown scenario preset {name:?} (presets: {})",
                PRESET_NAMES.join(" ")
            ),
            ScenarioError::UnknownTech { name } => write!(
                f,
                "unknown tech node {name:?} (nodes: {})",
                TECH_NAMES.join(" ")
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<GeometryError> for ScenarioError {
    fn from(error: GeometryError) -> Self {
        ScenarioError::Geometry {
            cache: "icache",
            error,
        }
    }
}

/// Core-latency and clock parameters of the simulated machine — everything
/// in [`Sa1100Config`] except the cache geometries.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingSpec {
    /// Cycles stalled on an I-cache miss.
    pub icache_miss_penalty: u64,
    /// Cycles stalled on a D-cache miss.
    pub dcache_miss_penalty: u64,
    /// Extra cycles occupied by a multiply.
    pub mul_extra_cycles: u64,
    /// Redirect bubble for a correctly-predicted taken branch.
    pub taken_branch_penalty: u64,
    /// Flush penalty for a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Core clock in Hz.
    pub freq_hz: f64,
}

impl Default for TimingSpec {
    /// The SA-1100 latencies at 200 MHz (the paper's §5 machine).
    fn default() -> Self {
        TimingSpec {
            icache_miss_penalty: 24,
            dcache_miss_penalty: 24,
            mul_extra_cycles: 2,
            taken_branch_penalty: 1,
            mispredict_penalty: 3,
            freq_hz: 200.0e6,
        }
    }
}

/// One fully-described machine point: cache geometries, core latencies,
/// technology calibration and synthesis options, under a stable id.
///
/// Construction is validating: both geometries pass
/// [`fits_sim::validate_geometry`] and the id is checked, so any
/// `ScenarioSpec` value can be fed to the simulator without a panic path.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    id: String,
    /// Instruction-cache geometry (the sweeps' primary variable).
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Core latencies and clock.
    pub timing: TimingSpec,
    /// Technology-node calibration used to price this scenario's activity.
    pub tech: TechParams,
    /// The tech node's short name (`"sa1100"`, `"65nm"`), part of derived
    /// sweep ids.
    pub tech_name: String,
    /// Synthesis options the FITS flow uses under this scenario.
    pub synth: SynthOptions,
}

fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '.')
}

/// A human-friendly size label: `"16k"` for multiples of 1024, raw bytes
/// otherwise.
fn size_label(bytes: u32) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}k", bytes / 1024)
    } else {
        format!("{bytes}b")
    }
}

impl ScenarioSpec {
    /// Builds a validated scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Geometry`] when either cache geometry is invalid,
    /// [`ScenarioError::BadId`] when the id is empty or uses characters
    /// outside `[a-z0-9.-]`.
    pub fn new(
        id: &str,
        icache: CacheConfig,
        dcache: CacheConfig,
        timing: TimingSpec,
        tech: TechParams,
        tech_name: &str,
        synth: SynthOptions,
    ) -> Result<ScenarioSpec, ScenarioError> {
        if !valid_id(id) {
            return Err(ScenarioError::BadId { id: id.to_string() });
        }
        validate_geometry(&icache).map_err(|error| ScenarioError::Geometry {
            cache: "icache",
            error,
        })?;
        validate_geometry(&dcache).map_err(|error| ScenarioError::Geometry {
            cache: "dcache",
            error,
        })?;
        Ok(ScenarioSpec {
            id: id.to_string(),
            icache,
            dcache,
            timing,
            tech,
            tech_name: tech_name.to_string(),
            synth,
        })
    }

    /// The paper's machine: SA-1100 caches, latencies and 0.35 µm
    /// calibration. The repro's four configurations (ARM16/ARM8/FITS16/
    /// FITS8) are this scenario and its 8 KB resize.
    #[must_use]
    pub fn sa1100() -> ScenarioSpec {
        ScenarioSpec {
            id: "sa1100-i16k".to_string(),
            icache: CacheConfig::sa1100_icache(),
            dcache: CacheConfig::sa1100_dcache(),
            timing: TimingSpec::default(),
            tech: TechParams::sa1100(),
            tech_name: "sa1100".to_string(),
            synth: SynthOptions::default(),
        }
    }

    /// A cost-down embedded point: 4 KB direct-mapped I-cache and 4 KB
    /// 2-way D-cache with 16-byte lines, SA-1100 latencies and node. The
    /// "does the 16-bit ISA still win at 4 KB direct-mapped?" question.
    #[must_use]
    pub fn small_embedded() -> ScenarioSpec {
        let mut spec = ScenarioSpec::sa1100();
        spec.id = "small-embedded".to_string();
        spec.icache = CacheConfig {
            name: "icache".to_string(),
            size_bytes: 4 * 1024,
            ways: 1,
            line_bytes: 16,
            replacement: Replacement::Lru,
        };
        spec.dcache = CacheConfig {
            name: "dcache".to_string(),
            size_bytes: 4 * 1024,
            ways: 2,
            line_bytes: 16,
            replacement: Replacement::Lru,
        };
        spec
    }

    /// The SA-1100 geometry priced at a 65 nm, leakage-dominated node
    /// ([`TechParams::modern_65nm`]), clocked at that node's 600 MHz.
    #[must_use]
    pub fn modern_node() -> ScenarioSpec {
        let mut spec = ScenarioSpec::sa1100();
        let tech = TechParams::modern_65nm();
        spec.id = "modern-node".to_string();
        spec.timing.freq_hz = tech.freq_hz;
        spec.tech = tech;
        spec.tech_name = "65nm".to_string();
        spec
    }

    /// Looks a preset up by name (see [`PRESET_NAMES`]).
    #[must_use]
    pub fn preset(name: &str) -> Option<ScenarioSpec> {
        match name {
            "sa1100" => Some(ScenarioSpec::sa1100()),
            "small-embedded" => Some(ScenarioSpec::small_embedded()),
            "modern-node" => Some(ScenarioSpec::modern_node()),
            _ => None,
        }
    }

    /// The scenario's stable id.
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// A copy with the I-cache resized and the id re-derived as
    /// `{tech_name}-i{size}`.
    ///
    /// # Errors
    ///
    /// The [`GeometryError`] of the invalid resize.
    pub fn with_icache_bytes(&self, bytes: u32) -> Result<ScenarioSpec, GeometryError> {
        let mut spec = self.clone();
        spec.icache = self.icache.resized(bytes)?;
        spec.id = format!("{}-i{}", spec.tech_name, size_label(bytes));
        Ok(spec)
    }

    /// A copy re-priced under another tech node, with the id re-derived.
    /// The core clock follows the node (`tech.freq_hz`).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::BadId`] when `tech_name` is not id-safe.
    pub fn with_tech(
        &self,
        tech_name: &str,
        tech: TechParams,
    ) -> Result<ScenarioSpec, ScenarioError> {
        if !valid_id(tech_name) {
            return Err(ScenarioError::BadId {
                id: tech_name.to_string(),
            });
        }
        let mut spec = self.clone();
        spec.id = format!("{}-i{}", tech_name, size_label(spec.icache.size_bytes));
        spec.timing.freq_hz = tech.freq_hz;
        spec.tech = tech;
        spec.tech_name = tech_name.to_string();
        Ok(spec)
    }

    /// The simulator configuration this scenario describes. Two scenarios
    /// with equal machine configs (same geometries and timing) can share
    /// one timing replay; only the power pricing differs.
    #[must_use]
    pub fn machine_config(&self) -> Sa1100Config {
        Sa1100Config {
            icache: self.icache.clone(),
            dcache: self.dcache.clone(),
            icache_miss_penalty: self.timing.icache_miss_penalty,
            dcache_miss_penalty: self.timing.dcache_miss_penalty,
            mul_extra_cycles: self.timing.mul_extra_cycles,
            taken_branch_penalty: self.timing.taken_branch_penalty,
            mispredict_penalty: self.timing.mispredict_penalty,
            freq_hz: self.timing.freq_hz,
        }
    }

    /// Whether `other` simulates on the same machine (equal geometries and
    /// timing) — the sharing test behind execute-once/replay-many sweeps.
    #[must_use]
    pub fn same_machine(&self, other: &ScenarioSpec) -> bool {
        self.icache == other.icache && self.dcache == other.dcache && self.timing == other.timing
    }

    /// The I-cache geometry as abstract-interpretation parameters. A
    /// scenario's geometry is validated at construction, so this cannot
    /// fail.
    #[must_use]
    pub fn icache_abstract(&self) -> AbstractCacheParams {
        AbstractCacheParams {
            sets: self.icache.sets(),
            ways: self.icache.ways,
            line_bytes: self.icache.line_bytes,
            policy: self.icache.replacement,
        }
    }

    /// Resolves a *request* — a preset name plus optional I-cache resize
    /// and tech-node override — into a validated scenario. This is how a
    /// serialized request (a `fitsd` body, a CLI flag pair) names a point
    /// on the plane without carrying raw geometry: every reachable spec
    /// went through the same validation as the presets.
    ///
    /// Overrides apply tech-first, then the resize, matching
    /// [`ScenarioMatrix::grid`] ordering.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownPreset`] / [`ScenarioError::UnknownTech`]
    /// for names off the plane, or the underlying geometry error for an
    /// impossible resize.
    pub fn resolve(
        preset: &str,
        tech: Option<&str>,
        icache_bytes: Option<u32>,
    ) -> Result<ScenarioSpec, ScenarioError> {
        let mut spec =
            ScenarioSpec::preset(preset).ok_or_else(|| ScenarioError::UnknownPreset {
                name: preset.to_string(),
            })?;
        if let Some(name) = tech {
            let params = tech_preset(name).ok_or_else(|| ScenarioError::UnknownTech {
                name: name.to_string(),
            })?;
            spec = spec.with_tech(name, params)?;
        }
        if let Some(bytes) = icache_bytes {
            spec = spec.with_icache_bytes(bytes)?;
        }
        Ok(spec)
    }
}

/// Cache geometry in the shape a static cache analysis consumes: set
/// count, associativity, line size and the replacement policy that picks
/// the abstract transfer function. Extracted from a validated
/// [`CacheConfig`] so the analysis never re-derives (or mis-derives)
/// geometry arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbstractCacheParams {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity (lines per set).
    pub ways: u32,
    /// Line size in bytes (power of two, word-multiple).
    pub line_bytes: u32,
    /// Replacement policy — decides which must-domain transfer is sound.
    pub policy: Replacement,
}

impl AbstractCacheParams {
    /// Extracts analysis parameters from a cache configuration, validating
    /// the geometry first.
    ///
    /// # Errors
    ///
    /// The [`GeometryError`] of an invalid configuration.
    pub fn from_config(cfg: &CacheConfig) -> Result<AbstractCacheParams, GeometryError> {
        validate_geometry(cfg)?;
        Ok(AbstractCacheParams {
            sets: cfg.sets(),
            ways: cfg.ways,
            line_bytes: cfg.line_bytes,
            policy: cfg.replacement,
        })
    }

    /// Whether these parameters describe the same machine as `cfg` — the
    /// guard a sound analysis must pass before its classifications can be
    /// compared against that machine's traces.
    #[must_use]
    pub fn matches(&self, cfg: &CacheConfig) -> bool {
        self.sets == cfg.sets()
            && self.ways == cfg.ways
            && self.line_bytes == cfg.line_bytes
            && self.policy == cfg.replacement
    }

    /// The set index of a byte address under this geometry (the same
    /// mapping the simulator and the observability histograms use).
    #[must_use]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr / self.line_bytes) % self.sets
    }

    /// The line (block) address of a byte address: the address with the
    /// line offset stripped.
    #[must_use]
    pub fn line_of(&self, addr: u32) -> u32 {
        addr / self.line_bytes
    }

    /// Total lines in the cache.
    #[must_use]
    pub fn lines(&self) -> u32 {
        self.sets * self.ways
    }
}

/// All tech-node names accepted by [`tech_preset`].
pub const TECH_NAMES: [&str; 2] = ["sa1100", "65nm"];

/// Looks a named technology node up (see [`TECH_NAMES`]).
#[must_use]
pub fn tech_preset(name: &str) -> Option<TechParams> {
    match name {
        "sa1100" => Some(TechParams::sa1100()),
        "65nm" => Some(TechParams::modern_65nm()),
        _ => None,
    }
}

/// All preset names accepted by [`ScenarioSpec::preset`].
pub const PRESET_NAMES: [&str; 3] = ["sa1100", "small-embedded", "modern-node"];

/// A validated list of scenarios — usually the product of a cache-size
/// axis and a tech-node axis over one base scenario.
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    /// The scenarios, tech-major (all sizes of the first node, then the
    /// next node).
    pub scenarios: Vec<ScenarioSpec>,
}

impl ScenarioMatrix {
    /// Builds the `tech × size` grid over `base`. Every point keeps the
    /// base D-cache, latencies and synthesis options; the I-cache capacity
    /// and the tech node vary. Ids follow `{tech}-i{size}`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::EmptyAxis`] for an empty axis,
    /// [`ScenarioError::GridPoint`] naming the grid coordinates of the
    /// first invalid I-cache resize, or any id/tech failure of the base.
    pub fn grid(
        base: &ScenarioSpec,
        icache_sizes: &[u32],
        tech_nodes: &[(String, TechParams)],
    ) -> Result<ScenarioMatrix, ScenarioError> {
        if icache_sizes.is_empty() {
            return Err(ScenarioError::EmptyAxis {
                axis: "icache sizes",
            });
        }
        if tech_nodes.is_empty() {
            return Err(ScenarioError::EmptyAxis { axis: "tech nodes" });
        }
        let mut scenarios = Vec::with_capacity(icache_sizes.len() * tech_nodes.len());
        for (name, tech) in tech_nodes {
            let node_base = base.with_tech(name, tech.clone())?;
            for &bytes in icache_sizes {
                let spec = node_base.with_icache_bytes(bytes).map_err(|error| {
                    ScenarioError::GridPoint {
                        tech: name.clone(),
                        icache_bytes: bytes,
                        error,
                    }
                })?;
                scenarios.push(spec);
            }
        }
        Ok(ScenarioMatrix { scenarios })
    }

    /// The distinct machine configurations of the matrix, with a map from
    /// scenario index to machine index — tech nodes share timing replays.
    #[must_use]
    pub fn machines(&self) -> (Vec<Sa1100Config>, Vec<usize>) {
        let mut reps: Vec<&ScenarioSpec> = Vec::new();
        let mut machines = Vec::new();
        let mut index = Vec::with_capacity(self.scenarios.len());
        for spec in &self.scenarios {
            match reps.iter().position(|r| r.same_machine(spec)) {
                Some(i) => index.push(i),
                None => {
                    index.push(reps.len());
                    reps.push(spec);
                    machines.push(spec.machine_config());
                }
            }
        }
        (machines, index)
    }

    /// Number of scenarios.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the matrix is empty (never true for [`ScenarioMatrix::grid`]
    /// results).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_have_stable_ids() {
        for name in PRESET_NAMES {
            let spec = ScenarioSpec::preset(name).unwrap();
            assert!(valid_id(spec.id()), "{name}: id {:?}", spec.id());
            validate_geometry(&spec.icache).unwrap();
            validate_geometry(&spec.dcache).unwrap();
        }
        assert!(ScenarioSpec::preset("sa1101").is_none());
        assert_eq!(ScenarioSpec::sa1100().id(), "sa1100-i16k");
    }

    #[test]
    fn abstract_params_mirror_the_geometry() {
        for name in PRESET_NAMES {
            let spec = ScenarioSpec::preset(name).unwrap();
            let params = spec.icache_abstract();
            assert!(params.matches(&spec.icache), "{name}");
            assert_eq!(
                params,
                AbstractCacheParams::from_config(&spec.icache).unwrap()
            );
            assert_eq!(params.lines(), params.sets * params.ways);
            // Set mapping agrees with the simulator's (addr / line) % sets.
            let addr = 0x8000_0040;
            assert_eq!(
                params.set_of(addr),
                (addr / spec.icache.line_bytes) % spec.icache.sets()
            );
            assert_eq!(params.line_of(addr), addr / spec.icache.line_bytes);
        }
        let mut bad = CacheConfig::sa1100_icache();
        bad.ways = 0;
        assert!(matches!(
            AbstractCacheParams::from_config(&bad),
            Err(GeometryError::ZeroWays)
        ));
        let params = ScenarioSpec::sa1100().icache_abstract();
        assert!(!params.matches(&ScenarioSpec::small_embedded().icache));
    }

    #[test]
    fn sa1100_preset_matches_the_hardcoded_machine() {
        let spec = ScenarioSpec::sa1100();
        let m = spec.machine_config();
        let hard = Sa1100Config::icache_16k();
        assert_eq!(m.icache, hard.icache);
        assert_eq!(m.dcache, hard.dcache);
        assert_eq!(m.icache_miss_penalty, hard.icache_miss_penalty);
        assert_eq!(m.dcache_miss_penalty, hard.dcache_miss_penalty);
        assert_eq!(m.mul_extra_cycles, hard.mul_extra_cycles);
        assert_eq!(m.taken_branch_penalty, hard.taken_branch_penalty);
        assert_eq!(m.mispredict_penalty, hard.mispredict_penalty);
        assert!((m.freq_hz - hard.freq_hz).abs() < f64::EPSILON);
    }

    #[test]
    fn bad_inputs_are_typed_errors_not_panics() {
        let base = ScenarioSpec::sa1100();
        // 1000 bytes does not divide into 32 ways of 32-byte lines.
        assert!(matches!(
            base.with_icache_bytes(1000),
            Err(GeometryError::NotDivisible { .. })
        ));
        // 3 KB gives 3 sets.
        assert!(matches!(
            base.with_icache_bytes(3 * 1024),
            Err(GeometryError::SetsNotPowerOfTwo { sets: 3 })
        ));
        let mut bad = CacheConfig::sa1100_icache();
        bad.line_bytes = 24;
        assert!(matches!(
            ScenarioSpec::new(
                "x",
                bad,
                CacheConfig::sa1100_dcache(),
                TimingSpec::default(),
                TechParams::sa1100(),
                "sa1100",
                SynthOptions::default(),
            ),
            Err(ScenarioError::Geometry {
                cache: "icache",
                error: GeometryError::BadLineSize { line_bytes: 24 }
            })
        ));
        assert!(matches!(
            base.with_tech("Bad Name", TechParams::sa1100()),
            Err(ScenarioError::BadId { .. })
        ));
    }

    #[test]
    fn grid_names_the_failing_point() {
        let base = ScenarioSpec::sa1100();
        let nodes = vec![
            ("sa1100".to_string(), TechParams::sa1100()),
            ("65nm".to_string(), TechParams::modern_65nm()),
        ];
        // The bad size sits on the *second* tech node so the error must
        // carry the right coordinates, not just the first axis entry.
        let err = ScenarioMatrix::grid(&base, &[16 * 1024, 3 * 1024], &nodes)
            .expect_err("3 KB gives 3 sets");
        assert_eq!(
            err,
            ScenarioError::GridPoint {
                tech: "sa1100".to_string(),
                icache_bytes: 3 * 1024,
                error: GeometryError::SetsNotPowerOfTwo { sets: 3 },
            }
        );
        let msg = err.to_string();
        assert!(
            msg.contains("sa1100") && msg.contains("3072"),
            "coordinates must be printable: {msg}"
        );
    }

    #[test]
    fn grid_builds_the_cross_product_and_shares_machines_per_size() {
        let base = ScenarioSpec::sa1100();
        let sizes = [16 * 1024, 8 * 1024, 4 * 1024];
        let nodes = [
            ("sa1100".to_string(), TechParams::sa1100()),
            ("65nm".to_string(), TechParams::modern_65nm()),
        ];
        let matrix = ScenarioMatrix::grid(&base, &sizes, &nodes).unwrap();
        assert_eq!(matrix.len(), 6);
        let ids: Vec<&str> = matrix.scenarios.iter().map(ScenarioSpec::id).collect();
        assert_eq!(
            ids,
            [
                "sa1100-i16k",
                "sa1100-i8k",
                "sa1100-i4k",
                "65nm-i16k",
                "65nm-i8k",
                "65nm-i4k"
            ]
        );
        // The two nodes run at different clocks here, so machines are not
        // shared across nodes — but a same-clock re-pricing would share.
        let (machines, index) = matrix.machines();
        assert_eq!(machines.len(), 6);
        assert_eq!(index, [0, 1, 2, 3, 4, 5]);

        let same_clock = [
            ("a".to_string(), TechParams::sa1100()),
            ("b".to_string(), {
                let mut t = TechParams::modern_65nm();
                t.freq_hz = TechParams::sa1100().freq_hz;
                t
            }),
        ];
        let matrix = ScenarioMatrix::grid(&base, &sizes, &same_clock).unwrap();
        let (machines, index) = matrix.machines();
        assert_eq!(machines.len(), 3, "same machine, different pricing");
        assert_eq!(index, [0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn empty_axes_are_rejected() {
        let base = ScenarioSpec::sa1100();
        assert!(matches!(
            ScenarioMatrix::grid(&base, &[], &[("sa1100".to_string(), TechParams::sa1100())]),
            Err(ScenarioError::EmptyAxis { .. })
        ));
        assert!(matches!(
            ScenarioMatrix::grid(&base, &[16 * 1024], &[]),
            Err(ScenarioError::EmptyAxis { .. })
        ));
    }

    #[test]
    fn resolve_composes_preset_tech_and_resize() {
        let plain = ScenarioSpec::resolve("sa1100", None, None).unwrap();
        assert_eq!(plain.id(), "sa1100-i16k");
        let repriced = ScenarioSpec::resolve("sa1100", Some("65nm"), Some(8 * 1024)).unwrap();
        assert_eq!(repriced.id(), "65nm-i8k");
        assert_eq!(repriced.icache.size_bytes, 8 * 1024);
        assert!((repriced.timing.freq_hz - TechParams::modern_65nm().freq_hz).abs() < 1.0);
        // small-embedded keeps its distinct D-cache through a resize.
        let small = ScenarioSpec::resolve("small-embedded", None, Some(8 * 1024)).unwrap();
        assert_eq!(small.dcache.line_bytes, 16);

        assert!(matches!(
            ScenarioSpec::resolve("sa1101", None, None),
            Err(ScenarioError::UnknownPreset { .. })
        ));
        assert!(matches!(
            ScenarioSpec::resolve("sa1100", Some("7nm"), None),
            Err(ScenarioError::UnknownTech { .. })
        ));
        assert!(matches!(
            ScenarioSpec::resolve("sa1100", None, Some(1000)),
            Err(ScenarioError::Geometry { .. })
        ));
        for name in TECH_NAMES {
            assert!(tech_preset(name).is_some());
        }
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(16 * 1024), "16k");
        assert_eq!(size_label(512), "512b");
        assert_eq!(size_label(1536), "1536b");
    }
}
