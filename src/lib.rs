//! # powerfits — umbrella crate
//!
//! Reproduction of *PowerFITS: Reduce Dynamic and Static I-Cache Power Using
//! Application Specific Instruction Set Synthesis* (Cheng, Tyson, Mudge —
//! ISPASS 2005).
//!
//! This crate re-exports the whole workspace so applications can depend on a
//! single package:
//!
//! * [`isa`] — the AR32 (ARM-like) and T16 (Thumb-like) instruction sets.
//! * [`kernels`] — the embedded-benchmark IR, compiler and 21 MiBench-like
//!   kernels.
//! * [`sim`] — functional and SA-1100-style timing simulation with cache and
//!   activity models.
//! * [`power`] — the analytical CMOS power model (switching / internal /
//!   leakage / peak, cache and chip level).
//! * [`core`] — the FITS contribution: profiling, 16-bit instruction-set
//!   synthesis, programmable decoders and ARM→FITS translation.
//! * [`verify`] — static analyses over synthesized instruction sets and
//!   translated binaries (`fitslint`): encoding soundness, control-flow
//!   integrity, dataflow checks and per-rule translation validation.
//! * [`obs`] — observability: hierarchical phase timing, traced simulation
//!   histograms and per-basic-block power attribution (`fitstrace`).
//! * [`scenario`] — the data-driven scenario plane: named machine presets,
//!   tech nodes and validated sweep matrices.
//! * [`bench`] — experiment runners that regenerate every figure of the
//!   paper.
//!
//! ## Quick start
//!
//! ```
//! use powerfits::kernels::kernels::{Kernel, Scale};
//! use powerfits::core::FitsFlow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Kernel::Crc32.compile(Scale::test())?;
//! let outcome = FitsFlow::new().run(&program)?;
//! assert!(outcome.mapping.static_one_to_one_rate() > 0.8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use fits_bench as bench;
pub use fits_core as core;
pub use fits_isa as isa;
pub use fits_kernels as kernels;
pub use fits_obs as obs;
pub use fits_power as power;
pub use fits_scenario as scenario;
pub use fits_sim as sim;
pub use fits_verify as verify;
